#!/usr/bin/env python3
"""Quickstart: load a program, query it, compare strategies.

Run with::

    python examples/quickstart.py
"""

from repro import Engine, check_correspondence
from repro.datalog import parse_query

SOURCE = """
% A small family tree.
par(alice, bob).   par(alice, carol).
par(bob, dave).    par(carol, erin).
par(dave, frank).  par(erin, gina).

% Ancestor: the transitive closure of par.
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
"""


def main() -> None:
    engine = Engine.from_source(SOURCE)

    # 1. Ask a question (the Alexander strategy is the default).
    print("== Who are alice's descendants?")
    result = engine.query("anc(alice, X)?")
    for atom in result.answers:
        print("  ", atom)
    print("   stats:", result.stats)

    # 2. The same question under every strategy: identical answers,
    #    different amounts of work.
    print("\n== Strategy comparison (inference counts)")
    for name, res in engine.explain("anc(alice, X)?").items():
        print(f"   {name:14s} answers={len(res.answers)} "
              f"inferences={res.stats.inferences:4d} "
              f"attempts={res.stats.attempts:4d}")

    # 3. Seki's theorem, live: bottom-up evaluation of the
    #    Alexander-transformed program generates exactly the calls and
    #    answers that OLDT (tabled top-down) generates.
    print("\n== Alexander vs OLDT correspondence")
    correspondence = check_correspondence(
        engine.program, parse_query("anc(alice, X)?"), engine.database
    )
    print(correspondence.summary())

    # 4. Facts can be added incrementally.
    engine.add_fact("par(gina, hugo)")
    print("\n== After adding par(gina, hugo):")
    print("   anc(alice, hugo)?", engine.ask("anc(alice, hugo)?"))


if __name__ == "__main__":
    main()
