#!/usr/bin/env python3
"""Bill of materials with an exclusion list — stratified negation in use.

A parts tree (``subpart``), its transitive closure (``needs``), a banned
list, and two derived views:

* ``tainted(X)`` — assembly X transitively contains a banned part;
* ``clean(X, Y)`` — X needs Y and X is not tainted.

The program has three strata (needs < tainted < clean).  The
transformation strategies materialise the lower strata and rewrite the
query's stratum — run this script to watch every strategy agree while
doing different amounts of work.

Run with::

    python examples/bill_of_materials.py
"""

from repro import Engine
from repro.bench import Measurement, measure, render_table
from repro.workloads import bill_of_materials


def main() -> None:
    scenario = bill_of_materials(depth=4, branching=2, banned_every=9)
    print(f"scenario: {scenario.description}")
    print(f"parts:    {len(scenario.database.rows('part'))}, "
          f"banned: {sorted(p for (p,) in scenario.database.rows('banned'))}")
    print()

    engine = Engine(scenario.program, scenario.database)

    print("tainted assemblies:")
    for atom in engine.query("tainted(X)?").answers:
        print("  ", atom)

    # Assembly 4's subtree avoids every banned part; assembly 2's does not.
    clean4 = engine.query("clean(4, X)?")
    clean2 = engine.query("clean(2, X)?")
    print(f"\nclean(4, X): {len(clean4.answers)} parts (untainted assembly)")
    print(f"clean(2, X): {len(clean2.answers)} parts "
          f"(assembly 2 contains banned part 26)")

    print()
    rows = []
    for strategy in ("seminaive", "magic", "alexander", "oldt", "qsqr"):
        rows.append(measure(scenario, strategy, query_index=1).row())
    print(render_table(Measurement.headers(), rows,
                       title="tainted(X)? under each strategy"))


if __name__ == "__main__":
    main()
