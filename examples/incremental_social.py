#!/usr/bin/env python3
"""Incremental maintenance: a live follower graph.

A social network keeps ``influences`` — the transitive closure of
``follows`` — materialised while edges stream in.  Each insertion
continues the semi-naive fixpoint from the new edge instead of
recomputing, so the per-update work is proportional to the *new*
derivations (watch the counter in the output).

Run with::

    python examples/incremental_social.py
"""

from repro import IncrementalEngine, parse_program

PROGRAM = parse_program(
    """
    influences(X, Y) :- follows(X, Y).
    influences(X, Y) :- follows(X, Z), influences(Z, Y).
    """
)

STREAM = [
    ("ada", "grace"),
    ("grace", "alan"),
    ("alan", "kurt"),
    ("edsger", "ada"),
    ("kurt", "alonzo"),
    # The bridging edge: connects edsger's chain into alonzo's cone.
    ("barbara", "edsger"),
]


def main() -> None:
    engine = IncrementalEngine(PROGRAM)
    print("streaming follows-edges; influences is kept materialised\n")
    for source, target in STREAM:
        before = engine.stats.inferences
        new_facts = engine.add(f"follows({source}, {target})")
        new_influences = sorted(
            f"{a} -> {b}"
            for predicate, (a, b) in new_facts
            if predicate == "influences"
        )
        cost = engine.stats.inferences - before
        print(f"+ follows({source}, {target})   [{cost} inferences]")
        for entry in new_influences:
            print(f"    new: {entry}")
    print("\nwho does barbara influence?")
    for atom in engine.query("influences(barbara, X)?"):
        print("  ", atom)
    print("\nremove follows(grace, alan) (recompute fallback):")
    engine.remove("follows(grace, alan)")
    remaining = engine.query("influences(barbara, X)?")
    print(f"   barbara now influences {len(remaining)} people "
          f"({', '.join(str(a.args[1]) for a in remaining)})")


if __name__ == "__main__":
    main()
