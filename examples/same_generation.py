#!/usr/bin/env python3
"""Same-generation: the classical non-linear-information-flow workload.

``sg(X, Y)`` holds when X and Y sit at the same depth of a hierarchy and
are related through a common ancestor.  The query ``sg(leaf, X)`` is
highly selective — exactly the situation where the Alexander / magic
transformations shine over full bottom-up evaluation, because only the
cone above the bound leaf is explored.

Run with::

    python examples/same_generation.py [depth] [branching]
"""

import sys

from repro import run_strategy
from repro.bench import Measurement, measure, render_table
from repro.workloads import same_generation


def main() -> None:
    depth = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    branching = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    scenario = same_generation(depth=depth, branching=branching)
    print(f"scenario: {scenario.description}")
    print(f"query:    {scenario.query(0)}  (bound leaf)")
    print()

    rows = []
    for strategy in ("seminaive", "magic", "supplementary", "alexander", "oldt", "qsqr"):
        rows.append(measure(scenario, strategy).row())
    print(render_table(Measurement.headers(), rows,
                       title="bound query: transformation beats full bottom-up"))

    # The open query reverses the picture: when everything is asked for,
    # the call/answer bookkeeping is pure overhead.
    print()
    rows = []
    for strategy in ("seminaive", "magic", "supplementary", "alexander"):
        rows.append(measure(scenario, strategy, query_index=1).row())
    print(render_table(Measurement.headers(), rows,
                       title="open query: plain semi-naive wins"))

    # Show a few answers.
    result = run_strategy(
        "alexander", scenario.program, scenario.query(0), scenario.database
    )
    print(f"\nfirst answers ({len(result.answers)} total):")
    for atom in result.answers[:6]:
        print("  ", atom)


if __name__ == "__main__":
    main()
