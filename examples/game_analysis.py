#!/usr/bin/env python3
"""Game analysis under the well-founded semantics.

The win/lose game — ``win(X) :- move(X,Y), not win(Y)`` — is the textbook
non-stratifiable program: the stratified engines reject it, but the
well-founded semantics (Van Gelder's alternating fixpoint, presented in
the same PODS 1989 session as the reproduced paper) assigns every
position one of three values:

* **won**   — some move leads to a lost position,
* **lost**  — every move leads to a won position (dead ends are lost),
* **drawn** — positions trapped in cycles (well-founded ``undefined``).

Run with::

    python examples/game_analysis.py
"""

from repro import Engine, StratificationError
from repro.datalog import parse_program, parse_query
from repro.engine.wellfounded import alternating_fixpoint
from repro.facts import Database

# A board with a decided region (the chain into x3) and a drawn region
# (the a/b/c cycle with no escape).
MOVES = [
    ("x0", "x1"), ("x1", "x2"), ("x2", "x3"),          # chain, x3 dead
    ("a", "b"), ("b", "c"), ("c", "a"),                # pure 3-cycle
    ("p", "q"), ("q", "p"), ("q", "r"),                # cycle with escape
]

PROGRAM = parse_program("win(X) :- move(X,Y), not win(Y).")


def main() -> None:
    database = Database()
    for move in MOVES:
        database.add("move", move)

    # 1. Stratified evaluation must refuse.
    print("== Stratified engines reject the game")
    try:
        Engine(PROGRAM, database).query("win(x0)?", strategy="seminaive")
        print("   accepted (unexpected!)")
    except StratificationError as error:
        print(f"   {error}")

    # 2. The alternating fixpoint classifies every position.
    print("\n== Well-founded analysis")
    model = alternating_fixpoint(PROGRAM, database)
    positions = sorted({u for u, _ in MOVES} | {v for _, v in MOVES})
    labels = {"true": "won", "false": "lost", "undefined": "drawn"}
    for position in positions:
        value = model.value_of(parse_query(f"win({position})"))
        print(f"   {position:3s} {labels[value]}")

    print(f"\n   total model: {model.is_total()}  "
          f"(drawn positions: {len(model.undefined_atoms())})")
    print(f"   stats: {model.stats}")

    # 3. Sanity commentary.
    print("\n== Why")
    print("   x3 has no moves -> lost; x2 -> won; alternation decides the chain.")
    print("   a/b/c chase each other forever -> drawn.")
    print("   q can escape to the dead end r -> q won; p's only move hits a")
    print("   won position -> p lost; the p/q cycle is decided by the escape.")


if __name__ == "__main__":
    main()
