#!/usr/bin/env python3
"""Org-chart analytics: recursion + comparison built-ins.

``reports_to`` is the management chain's transitive closure; comparison
built-ins (``>``, ``!=``, ``>=``) then express the classic HR queries —
who out-earns their (transitive) boss, who are same-band peers — and the
whole thing still runs under every strategy, including the Alexander
transformation.

Run with::

    python examples/org_chart.py
"""

from repro import Engine

SOURCE = """
% manager(Boss, Report).         salary(Person, Amount).
manager(meg, sam).   manager(meg, ana).
manager(sam, raj).   manager(sam, ivy).
manager(ana, leo).   manager(leo, kim).

salary(meg, 220). salary(sam, 150). salary(ana, 160).
salary(raj, 155). salary(ivy, 120). salary(leo, 140). salary(kim, 160).

% The transitive management chain.
reports_to(X, Y) :- manager(Y, X).
reports_to(X, Y) :- manager(Z, X), reports_to(Z, Y).

% Anomaly: someone earning more than a (transitive) boss.
outearns_boss(X, Y) :- reports_to(X, Y), salary(X, SX), salary(Y, SY), SX > SY.

% Same salary band (within the chain irrelevant), distinct people.
band_peer(X, Y) :- salary(X, S), salary(Y, S), X != Y.

% Well paid: at or above 150.
well_paid(X) :- salary(X, S), S >= 150.
"""


def main() -> None:
    engine = Engine.from_source(SOURCE)

    print("== Who transitively reports to meg?")
    for atom in engine.query("reports_to(X, meg)?").answers:
        print("  ", atom.args[0])

    print("\n== Salary anomalies (report out-earning a transitive boss)")
    for atom in engine.query("outearns_boss(X, Y)?").answers:
        print(f"   {atom.args[0]} > {atom.args[1]}")

    print("\n== Same-band peers")
    seen = set()
    for atom in engine.query("band_peer(X, Y)?").answers:
        pair = frozenset((atom.args[0].value, atom.args[1].value))
        if pair not in seen:
            seen.add(pair)
            left, right = sorted(pair)
            print(f"   {left} == {right}")

    print("\n== Strategy agreement on the anomaly query")
    for name, result in engine.explain("outearns_boss(X, Y)?").items():
        print(f"   {name:14s} answers={len(result.answers)} "
              f"inferences={result.stats.inferences}")


if __name__ == "__main__":
    main()
