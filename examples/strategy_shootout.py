#!/usr/bin/env python3
"""Strategy shoot-out: the paper's comparison, on one screen.

Sweeps chain sizes and prints the inference-count series of every
strategy side by side, then verifies the Alexander/OLDT correspondence at
each size — a miniature of benchmarks/bench_f1_scaling_chain.py and
bench_t1_correspondence.py.

Run with::

    python examples/strategy_shootout.py [max_n]
"""

import sys

from repro import check_correspondence
from repro.bench import render_series, scaling_series
from repro.workloads import ancestor

STRATEGIES = ("seminaive", "magic", "supplementary", "alexander", "oldt", "qsqr")


def main() -> None:
    max_n = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    sizes = [n for n in (8, 16, 32, 64, 128, 256) if n <= max_n]

    series = scaling_series(
        lambda n: ancestor(graph="chain", n=n), sizes, list(STRATEGIES)
    )
    print(render_series(
        "inferences for anc(0, X) on chain(n)", "n", series
    ))

    print("\ncorrespondence (Alexander calls/answers == OLDT tables):")
    for n in sizes:
        scenario = ancestor(graph="chain", n=n)
        corr = check_correspondence(
            scenario.program, scenario.query(0), scenario.database
        )
        status = "exact" if corr.exact else "MISMATCH"
        print(f"  n={n:4d}  {status}  calls={len(corr.calls_matched):4d} "
              f"answers={len(corr.answers_matched):5d} "
              f"ratio={corr.inference_ratio:.2f}")


if __name__ == "__main__":
    main()
