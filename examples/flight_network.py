#!/usr/bin/env python3
"""Flight connections: a cyclic reachability workload with a twist.

The route graph is cyclic (hub airports), so plain SLD resolution
diverges on it — while OLDT and the Alexander strategy both terminate.
This script demonstrates the divergence and then answers routing
questions with the terminating strategies.

Run with::

    python examples/flight_network.py
"""

from repro import Engine, BudgetExceededError
from repro.topdown.sld import sld_query
from repro.datalog import parse_query

SOURCE = """
% Hub-and-spoke with cycles between hubs.
flight(sfo, jfk). flight(jfk, lhr). flight(lhr, fra).
flight(fra, jfk). flight(fra, nrt). flight(nrt, sfo).
flight(jfk, sfo). flight(lhr, jfk).
flight(sea, sfo). flight(nrt, syd).

route(X, Y) :- flight(X, Y).
route(X, Y) :- flight(X, Z), route(Z, Y).
"""


def main() -> None:
    engine = Engine.from_source(SOURCE)

    # 1. Plain SLD diverges on the hub cycle.
    print("== Plain SLD on a cyclic route graph")
    try:
        sld_query(engine.program, parse_query("route(sea, X)?"),
                  engine.database, max_steps=20_000)
        print("   finished (unexpected!)")
    except BudgetExceededError as error:
        print(f"   diverged as expected: {error}")

    # 2. Tabling and the Alexander strategy terminate.
    print("\n== Where can you fly from Seattle?")
    result = engine.query("route(sea, X)?", strategy="alexander")
    destinations = sorted(str(atom.args[1]) for atom in result.answers)
    print("  ", ", ".join(destinations))
    print("   alexander:", result.stats)

    oldt = engine.query("route(sea, X)?", strategy="oldt")
    print("   oldt:     ", oldt.stats)
    assert {str(a) for a in result.answers} == {str(a) for a in oldt.answers}

    # 3. A fully bound question.
    print("\n== Can you get from Sydney to London?")
    print("  ", "yes" if engine.ask("route(syd, lhr)?") else "no")

    # 4. Which airports can reach every other airport?
    airports = sorted(
        {row[0] for row in engine.database.rows("flight")}
        | {row[1] for row in engine.database.rows("flight")}
    )
    reach_all = []
    for airport in airports:
        reachable = {
            atom.args[1].value
            for atom in engine.query(f"route({airport}, X)?").answers
        }
        if reachable >= set(airports) - {airport}:
            reach_all.append(airport)
    print("\n== Airports connected to the whole network:")
    print("  ", ", ".join(reach_all) if reach_all else "(none)")


if __name__ == "__main__":
    main()
