"""repro — a reproduction of "On the Power of Alexander Templates"
(Hirohisa Seki, PODS 1989).

The library implements, from scratch, the full experimental apparatus the
paper's theorems speak about:

* a function-free Datalog kernel (parsing, unification, programs),
* bottom-up engines (naive, semi-naive, stratified negation),
* top-down engines (plain SLD, OLDT with tabulation, QSQR),
* the transformation family: adornment + SIPS, generalized magic sets,
  supplementary magic sets, and the Alexander templates,
* a correspondence checker turning Seki's Alexander/OLDT theorem into an
  executable property, and
* workload generators + a benchmark harness regenerating every experiment
  in EXPERIMENTS.md.

Quick start::

    from repro import Engine

    engine = Engine.from_source('''
        par(a,b). par(b,c).
        anc(X,Y) :- par(X,Y).
        anc(X,Y) :- par(X,Z), anc(Z,Y).
    ''')
    result = engine.query("anc(a, X)?")           # Alexander strategy
    for atom in result.answers:
        print(atom)
    print(result.stats)
"""

from .core.compare import Correspondence, check_correspondence
from .core.engine import Engine
from .core.strategy import QueryResult, available_strategies, run_strategy
from .datalog import (
    Atom,
    Constant,
    Literal,
    Program,
    Rule,
    Variable,
    parse_atom,
    parse_program,
    parse_query,
    parse_rule,
    pred,
    variables,
)
from .engine.budget import EvaluationBudget
from .engine.counters import EvaluationStats
from .engine.incremental import IncrementalEngine
from .engine.provenance import format_proof, traced_fixpoint
from .engine.wellfounded import WellFoundedModel, alternating_fixpoint
from .repl import Repl
from .errors import (
    BudgetExceededError,
    EvaluationError,
    ParseError,
    ProgramError,
    ReproError,
    SafetyError,
    StratificationError,
    TransformError,
)
from .facts import Database, Relation

__version__ = "1.0.0"

__all__ = [
    "Engine",
    "QueryResult",
    "available_strategies",
    "run_strategy",
    "Correspondence",
    "check_correspondence",
    "Atom",
    "Literal",
    "Rule",
    "Program",
    "Variable",
    "Constant",
    "parse_program",
    "parse_rule",
    "parse_atom",
    "parse_query",
    "pred",
    "variables",
    "Database",
    "Relation",
    "EvaluationStats",
    "EvaluationBudget",
    "IncrementalEngine",
    "traced_fixpoint",
    "format_proof",
    "alternating_fixpoint",
    "WellFoundedModel",
    "Repl",
    "ReproError",
    "ParseError",
    "ProgramError",
    "SafetyError",
    "StratificationError",
    "EvaluationError",
    "BudgetExceededError",
    "TransformError",
    "__version__",
]
