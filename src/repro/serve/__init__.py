"""The long-lived query service: load once, serve prepared queries.

Everything here is standard library only (``http.server`` + ``json``) —
the service must run wherever the engine runs, with no web framework in
the dependency set.  Four layers:

* :mod:`repro.serve.cache` — :class:`PreparedQueryCache`, a locked LRU
  of :class:`repro.core.prepare.PreparedQuery` objects keyed by dataset
  version and :func:`repro.core.prepare.prepared_cache_key`.  A hit
  skips parse/adorn/transform/plan/compile entirely (``serve.prepared.hits``
  vs flat ``transform.*`` / ``planner.*`` counters — the serve smoke CI
  job asserts exactly this).
* :mod:`repro.serve.service` — :class:`QueryService`, the HTTP-free
  core: named, versioned datasets, per-request budgets with
  sound-partial degradation, direct-execution fallback for the
  unpreparable strategies.
* :mod:`repro.serve.server` — the :class:`~http.server.ThreadingHTTPServer`
  wiring (``/health``, ``/metrics``, ``/load``, ``/prepare``,
  ``/query``), exposed to the CLI as ``repro serve``.
* :mod:`repro.serve.client` — :class:`ServeClient`, a thin
  ``urllib``-based client the tests, benchmarks, and smoke job share,
  with bounded retry across worker-restart windows.
* :mod:`repro.serve.registry` — :class:`ShapeRegistry`, the on-disk
  store of serialized prepared shapes shared across processes and
  server restarts.
* :mod:`repro.serve.pool` — :class:`WorkerPool` / :class:`PooledService`,
  the multiprocess backend (``repro serve --processes N``): pre-forked
  workers, shared-memory dataset snapshots, crash-restart, merged
  ``/metrics``.

See ``docs/SERVING.md`` for the endpoint reference and operational notes.
"""

from .cache import CacheEntry, PreparedQueryCache
from .client import ServeClient
from .pool import PooledService, WorkerPool, WorkerPoolError
from .registry import ShapeRegistry
from .server import ReproServer, create_server, run_server
from .service import Dataset, QueryService

__all__ = [
    "CacheEntry",
    "PreparedQueryCache",
    "ServeClient",
    "ShapeRegistry",
    "PooledService",
    "WorkerPool",
    "WorkerPoolError",
    "ReproServer",
    "create_server",
    "run_server",
    "Dataset",
    "QueryService",
]
