"""The HTTP-free core of the query service.

:class:`QueryService` owns named, versioned datasets (a parsed program
plus its extensional database) and answers queries against them, going
through the :class:`~repro.serve.cache.PreparedQueryCache` whenever the
strategy has a preparable form:

* preparable strategies (the transform family and the bottom-up
  engines) are served through :func:`repro.core.prepare.prepare_query`;
  a cache hit executes a precompiled shape and does **zero** parse /
  adorn / transform / plan / compile work;
* the tuple-at-a-time strategies (``sld``, ``oldt``, ``qsqr``) raise
  :class:`~repro.errors.UnpreparableStrategyError` from the prepare
  pipeline and fall back to direct
  :func:`repro.core.strategy.run_strategy` execution, counted under
  ``serve.direct``.

Every request gets its own :class:`~repro.engine.budget.EvaluationBudget`
(decoded from the request payload).  A budget trip is **not** an error
at this layer: bottom-up evaluation is inflationary, so the partial
database carried by :class:`~repro.errors.BudgetExceededError` is a
sound prefix of the full model, and the response reports the answers
found so far flagged ``partial: true, sound: true`` with the tripped
limit — the graceful-degradation contract clients can rely on.

Dataset versioning is what makes caching sound: prepared queries
snapshot their base database, so any mutation goes through
:meth:`QueryService.load` — which bumps the dataset version (changing
every cache key) and eagerly drops the stale version's entries — or
through :meth:`QueryService.update`, the incremental path: maintained
shapes (prepared with ``maintain=``) have the delta applied to their
live materialisation, frozen shapes outside the update's affected cone
are migrated to the new version untouched, and only shapes the update
could actually change are dropped.  Sustained update traffic therefore
keeps the cache warm instead of cold-starting every shape after every
mutation.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from ..core.prepare import (
    UNPREPARABLE_STRATEGIES,
    PreparedQuery,
    prepare_query,
    prepared_cache_key,
    program_fingerprint,
)
from ..core.snapshot import database_fingerprint
from ..core.strategy import QueryResult, available_strategies, run_strategy
from ..datalog.atoms import Atom
from ..datalog.parser import parse_program, parse_query
from ..datalog.rules import Program
from ..datalog.unify import match_atom
from ..engine.budget import EvaluationBudget
from ..engine.columnar import DEFAULT_STORAGE
from ..engine.kernel import DEFAULT_EXECUTOR
from ..engine.scheduler import DEFAULT_SCHEDULER
from ..errors import BudgetExceededError, ReproError, UnpreparableStrategyError
from ..facts.database import Database
from ..obs import get_metrics
from .cache import DEFAULT_MAX_ENTRIES, PreparedQueryCache

__all__ = ["Dataset", "QueryService", "budget_from_payload"]

DEFAULT_STRATEGY = "alexander"

_BUDGET_FIELDS = (
    "wall_clock_seconds",
    "max_iterations",
    "max_facts",
    "max_attempts",
)


def budget_from_payload(payload) -> "EvaluationBudget | None":
    """Decode a request's ``budget`` object into an
    :class:`EvaluationBudget` (``None`` / empty → no budget).

    Every present limit must be a positive number: zero, negative, and
    non-numeric limits are rejected here with a client-error
    :class:`ReproError` (the HTTP layer renders it as a 400) instead of
    being smuggled into a budget that trips before any work happens —
    turning every such request into a confusing empty "partial" result
    rather than the validation error it really is (and non-numeric
    values into a mid-evaluation ``TypeError``, a 500).  Booleans are
    explicitly excluded even though ``bool`` subclasses ``int`` —
    ``"max_facts": true`` is a client bug, not a budget of one fact.
    """
    if payload is None:
        return None
    if not isinstance(payload, dict):
        raise ReproError(f"budget must be an object, got {type(payload).__name__}")
    unknown = set(payload) - set(_BUDGET_FIELDS)
    if unknown:
        raise ReproError(
            f"unknown budget field(s) {sorted(unknown)}; "
            f"expected {list(_BUDGET_FIELDS)}"
        )
    kwargs = {name: payload.get(name) for name in _BUDGET_FIELDS}
    for name, value in kwargs.items():
        if value is None:
            continue
        if (
            isinstance(value, bool)
            or not isinstance(value, (int, float))
            or value <= 0
        ):
            raise ReproError(
                f"budget field {name!r} must be a positive number, "
                f"got {value!r}"
            )
    if all(value is None for value in kwargs.values()):
        return None
    return EvaluationBudget(**kwargs)


def _match_answers(database, goal: Atom) -> tuple[Atom, ...]:
    """The goal's answers present in *database* (``None`` → none).

    Used on budget trips where no :class:`PreparedQuery` exists yet; the
    database is a sound prefix, so anything found is a true answer.
    """
    from ..core.strategy import _sorted_answers

    if database is None or goal.predicate not in database:
        return ()
    matching = (
        atom
        for atom in database.atoms(goal.predicate)
        if match_atom(goal, atom) is not None
    )
    return _sorted_answers(goal, matching)


def _affected_predicates(
    program: Program, updated: "set[str]"
) -> frozenset[str]:
    """The affected cone of an update: the updated predicates plus every
    predicate transitively derivable from them (body → head closure).

    A prepared shape whose goal lies outside this cone answers every
    query identically before and after the update, so the cache can
    migrate it to the new dataset version instead of dropping it.
    """
    dependents: dict[str, set[str]] = {}
    for rule in program.proper_rules:
        for literal in rule.body:
            dependents.setdefault(literal.predicate, set()).add(
                rule.head.predicate
            )
    affected = set(updated)
    frontier = set(updated)
    while frontier:
        next_frontier: set[str] = set()
        for predicate in frontier:
            for head in dependents.get(predicate, ()):
                if head not in affected:
                    affected.add(head)
                    next_frontier.add(head)
        frontier = next_frontier
    return frozenset(affected)


@dataclass
class Dataset:
    """One loaded program + database, versioned across reloads.

    Attributes:
        name: the handle requests address it by.
        program: the rules (facts live in *database*).
        database: the extensional facts; treated as immutable — reloads
            install a fresh object and bump *version*.
        version: bumped on every :meth:`QueryService.load` touching this
            name; part of every prepared-cache key.
        fingerprint: the program's rule fingerprint, reported by
            ``/health`` and ``/metrics`` for cache-debugging.
        data_fingerprint: order-independent digest of the fact set
            (:func:`~repro.core.snapshot.database_fingerprint`); keys
            the cross-process shape registry, where the in-memory
            version counter means nothing to other processes.
    """

    name: str
    program: Program
    database: Database
    version: int
    fingerprint: str
    data_fingerprint: str = ""

    def info(self) -> dict:
        return {
            "name": self.name,
            "version": self.version,
            "rules": len(self.program.proper_rules),
            "predicates": sorted(self.database.predicates()),
            "facts": sum(
                len(self.database.rows(p)) for p in self.database.predicates()
            ),
            "fingerprint": self.fingerprint[:16],
        }


class QueryService:
    """Datasets + prepared-query cache + request execution.

    Thread-safe: dataset registration runs under a lock, queries run
    lock-free against immutable snapshots (a reload replaces the
    :class:`Dataset` object; in-flight requests finish against the
    version they started with).
    """

    def __init__(
        self,
        max_cached: int = DEFAULT_MAX_ENTRIES,
        registry=None,
    ):
        """Args:
            max_cached: prepared-query cache capacity.
            registry: optional cross-process shape registry — a
                :class:`~repro.serve.registry.ShapeRegistry` or a
                directory path to open one at.  With a registry, cache
                misses first try to *load* a serialized shape (saved by
                any process, any lifetime) before preparing from
                scratch, and freshly prepared non-maintained shapes are
                saved back.
        """
        self._lock = threading.Lock()
        self._datasets: dict[str, Dataset] = {}
        self.cache = PreparedQueryCache(max_cached)
        if registry is not None and not hasattr(registry, "load"):
            from .registry import ShapeRegistry

            registry = ShapeRegistry(registry)
        self.registry = registry

    # --- datasets -------------------------------------------------------------
    def load(
        self,
        name: str,
        program_text: "str | None" = None,
        facts_text: "str | None" = None,
        extend: bool = False,
    ) -> dict:
        """Load or reload dataset *name* from Datalog source text.

        Args:
            name: dataset handle.
            program_text: rules and/or facts; required unless *extend*.
            facts_text: additional source parsed the same way, kept as a
                separate argument so callers can ship rules and bulk EDB
                in different strings.
            extend: start from the existing dataset's program + facts
                instead of empty (still bumps the version — extending is
                a mutation like any other).
        """
        with self._lock:
            current = self._datasets.get(name)
            if extend and current is None:
                raise ReproError(f"cannot extend unknown dataset {name!r}")
            # A load must actually carry source: empty or whitespace-only
            # text would otherwise install an empty dataset (or, with
            # extend, bump the version and flush the prepared cache while
            # changing nothing) — both are client bugs, not mutations.
            if not any(
                text is not None and text.strip()
                for text in (program_text, facts_text)
            ):
                raise ReproError(
                    "load requires non-empty program or facts text"
                )
            if extend:
                rules = list(current.program.rules)
                database = current.database.copy()
                version = current.version + 1
            else:
                rules = []
                database = Database()
                version = current.version + 1 if current is not None else 1
            for text in (program_text, facts_text):
                if not text:
                    continue
                parsed = parse_program(text)
                database.add_atoms(parsed.facts)
                rules.extend(parsed.without_facts().rules)
            program = Program(tuple(rules))
            dataset = Dataset(
                name=name,
                program=program,
                database=database,
                version=version,
                fingerprint=program_fingerprint(program),
                data_fingerprint=database_fingerprint(database),
            )
            self._datasets[name] = dataset
        dropped = self.cache.drop_dataset(name)
        obs = get_metrics()
        if obs.enabled:
            obs.incr("serve.loads")
        info = dataset.info()
        info["cache_entries_dropped"] = dropped
        return info

    def update(
        self,
        name: str,
        add: "list[str] | tuple[str, ...]" = (),
        remove: "list[str] | tuple[str, ...]" = (),
    ) -> dict:
        """Apply a batched fact update to dataset *name*; the ``/update``
        endpoint.

        Unlike :meth:`load` — which installs a fresh dataset and drops
        every prepared shape — an update patches in place and keeps the
        cache warm:

        1. **maintained** shapes at the current version have the delta
           applied to their live materialisation (removals first, then
           insertions, each as one batched maintenance pass);
        2. the dataset's own database is patched and re-published under
           ``version + 1`` (so future preparations see the new facts);
        3. cache entries are *migrated* instead of flushed: maintained
           shapes patched in step 1 and shapes whose answers cannot
           depend on the updated predicates (outside the affected cone —
           the updated predicates plus their transitive dependents) are
           re-keyed to the new version; entries inside the cone are
           dropped, as is any maintained shape that raced into the cache
           after step 1's snapshot (it was prepared against the
           pre-update database).

        *add*/*remove* are fact texts (``"edge(a, b)"``).  Removals must
        target base (non-IDB) predicates; insertions may assert derived
        facts (they gain external support in maintained shapes).
        Returns a summary payload with the new dataset info and the
        cache-migration counts.
        """
        obs = get_metrics()
        started = time.perf_counter()
        add_atoms = [parse_query(text) for text in add]
        remove_atoms = [parse_query(text) for text in remove]
        if not add_atoms and not remove_atoms:
            raise ReproError("update requires at least one add or remove")
        for atom in (*add_atoms, *remove_atoms):
            if not atom.is_ground():
                raise ReproError(f"update facts must be ground, got {atom}")
        with self._lock:
            dataset = self._datasets.get(name)
            if dataset is None:
                raise ReproError(
                    f"unknown dataset {name!r}; loaded: "
                    f"{sorted(self._datasets)}"
                )
            idb = dataset.program.idb_predicates
            for atom in remove_atoms:
                if atom.predicate in idb:
                    raise ReproError(
                        f"cannot remove derived fact {atom}; remove base "
                        "facts only"
                    )
            # 1. Patch maintained shapes in place (their per-shape lock
            # serialises against in-flight executions).  A failure
            # mid-loop leaves the already-patched shapes one delta ahead
            # of a dataset whose version will never be bumped, so every
            # maintained shape is dropped before re-raising — nothing may
            # keep serving a half-applied state.
            patched_keys: set[tuple] = set()
            try:
                for key, prepared in self.cache.entries_for(name):
                    if (
                        key[1] == dataset.version
                        and prepared.mode == "maintained"
                    ):
                        prepared.apply_update(
                            add=add_atoms, remove=remove_atoms
                        )
                        patched_keys.add(key)
            except BaseException:
                for key, prepared in self.cache.entries_for(name):
                    if prepared.mode == "maintained":
                        self.cache.drop_entry(key)
                raise
            patched = len(patched_keys)
            # 2. Publish the patched dataset under a new version.
            database = dataset.database.copy()
            removed = added = 0
            for atom in remove_atoms:
                if atom.predicate not in database:
                    continue
                relation = database.relation(atom.predicate)
                if relation.discard(database.encode_row(atom.ground_key())):
                    removed += 1
            for atom in add_atoms:
                if database.add_atom(atom):
                    added += 1
            version = dataset.version + 1
            self._datasets[name] = Dataset(
                name=name,
                program=dataset.program,
                database=database,
                version=version,
                fingerprint=dataset.fingerprint,
                data_fingerprint=database_fingerprint(database),
            )
            # 3. Migrate the cache: maintained shapes that were actually
            # patched, and frozen shapes outside the affected cone,
            # answer identically against the new version; everything
            # else is stale.  A maintained shape *not* in the patched
            # set raced in between the patch snapshot and here — it was
            # prepared against the pre-update database and must be
            # dropped, not migrated.
            affected = _affected_predicates(
                dataset.program,
                {atom.predicate for atom in (*add_atoms, *remove_atoms)},
            )

            def keep(key: tuple, prepared: PreparedQuery) -> bool:
                if prepared.mode == "maintained":
                    return key in patched_keys
                if prepared.mode == "transform":
                    return prepared.query.predicate not in affected
                # Frozen full-model shapes depend on everything.
                return not affected

            kept, dropped = self.cache.rekey_dataset(
                name, dataset.version, version, keep
            )
        if obs.enabled:
            obs.incr("serve.updates")
            obs.incr("maintain.update_adds", len(add_atoms))
            obs.incr("maintain.update_removes", len(remove_atoms))
        info = self._datasets[name].info()
        info.update(
            {
                "added": added,
                "removed": removed,
                "affected_predicates": sorted(affected),
                "cache_entries_patched": patched,
                "cache_entries_kept": kept,
                "cache_entries_dropped": dropped,
                "elapsed_ms": (time.perf_counter() - started) * 1000.0,
            }
        )
        return info

    def install(
        self,
        name: str,
        program: Program,
        database: Database,
        version: int,
        data_fingerprint: "str | None" = None,
    ) -> Dataset:
        """Install an already-built dataset under an explicit *version*.

        The worker-process path: the dispatcher freezes the
        authoritative dataset into shared memory, and each worker
        decodes and installs it here when a request's spec names a
        version the worker has not seen — pull-based propagation of
        ``/load`` and ``/update`` version bumps.  Every cache entry for
        *name* is dropped (they were prepared against a version this
        process no longer serves).  *database* is adopted, not copied;
        the caller hands over ownership.
        """
        dataset = Dataset(
            name=name,
            program=program,
            database=database,
            version=version,
            fingerprint=program_fingerprint(program),
            data_fingerprint=(
                data_fingerprint
                if data_fingerprint is not None
                else database_fingerprint(database)
            ),
        )
        with self._lock:
            self._datasets[name] = dataset
        self.cache.drop_dataset(name)
        obs = get_metrics()
        if obs.enabled:
            obs.incr("serve.installs")
        return dataset

    def dataset(self, name: str) -> Dataset:
        with self._lock:
            dataset = self._datasets.get(name)
            if dataset is None:
                names = sorted(self._datasets)
        if dataset is None:
            raise ReproError(
                f"unknown dataset {name!r}; loaded: {names}"
            )
        return dataset

    def datasets(self) -> list[dict]:
        with self._lock:
            snapshot = list(self._datasets.values())
        return [dataset.info() for dataset in snapshot]

    # --- preparation ----------------------------------------------------------
    def _cache_key(
        self, dataset: Dataset, goal: Atom, strategy: str, sips, planner,
        executor: str, scheduler: str, storage: str,
        maintain: "str | None" = None,
    ) -> tuple:
        return (dataset.name, dataset.version) + prepared_cache_key(
            dataset.program, goal, strategy, sips, planner, executor,
            scheduler, storage, maintain,
        )

    def _build_prepared(
        self, dataset: Dataset, goal: Atom, key: tuple, strategy: str,
        sips, planner, executor: str, scheduler: str, storage: str,
        budget=None, workers=None, maintain: "str | None" = None,
    ):
        """The cache-miss factory: registry consult, then a real prepare.

        When a :class:`~repro.serve.registry.ShapeRegistry` is attached
        and the shape is serializable (anything but maintained), a
        registry hit deserializes the shape another process already
        built — no transform, no planning, no fixpoint compilation.  A
        miss prepares from scratch and saves the result back, so the
        *next* process (or a restarted server) hits.  The registry key
        is the library-level part of *key* (``key[2:]``, dropping the
        dataset name/version) widened with the dataset's data
        fingerprint, because the serialized shape embeds its execution
        base.
        """
        registry = self.registry
        shareable = registry is not None and maintain is None
        if shareable:
            prepared = registry.load(key[2:], dataset.data_fingerprint)
            if prepared is not None:
                return prepared
        prepared = prepare_query(
            dataset.program,
            goal,
            dataset.database,
            strategy=strategy,
            sips=sips,
            planner=planner,
            executor=executor,
            scheduler=scheduler,
            storage=storage,
            budget=budget,
            workers=workers,
            maintain=maintain,
        )
        if shareable:
            registry.save(key[2:], dataset.data_fingerprint, prepared)
        return prepared

    def prepare(
        self,
        dataset_name: str,
        goal: "Atom | str",
        strategy: str = DEFAULT_STRATEGY,
        sips: "str | None" = None,
        planner: "str | None" = None,
        executor: str = DEFAULT_EXECUTOR,
        scheduler: str = DEFAULT_SCHEDULER,
        storage: str = DEFAULT_STORAGE,
        workers: "int | None" = None,
        maintain: "str | None" = None,
    ) -> dict:
        """Prepare (or re-use) a query shape; the ``/prepare`` endpoint.

        *workers* sizes the worker pool of ``scheduler="parallel"``
        preparation work; it is deliberately not part of the cache key
        (any worker count reuses the same compiled shape).  *maintain*
        (``"counting"`` / ``"dred"`` / ``"recompute"``) prepares a
        maintained shape whose materialisation :meth:`update` patches in
        place instead of dropping.

        Raises :class:`UnpreparableStrategyError` for the top-down
        strategies — ``/prepare`` reports that as a client error, while
        ``/query`` silently falls back to direct execution.
        """
        dataset = self.dataset(dataset_name)
        if isinstance(goal, str):
            goal = parse_query(goal)
        key = self._cache_key(
            dataset, goal, strategy, sips, planner, executor, scheduler,
            storage, maintain,
        )
        if strategy in UNPREPARABLE_STRATEGIES:
            # Surface the library error without caching anything.
            prepare_query(dataset.program, goal, dataset.database, strategy)
            raise AssertionError("unreachable")  # pragma: no cover
        started = time.perf_counter()
        prepared, hit = self.cache.get_or_prepare(
            key,
            lambda: self._build_prepared(
                dataset, goal, key, strategy, sips, planner, executor,
                scheduler, storage, workers=workers, maintain=maintain,
            ),
        )
        return {
            "dataset": dataset.name,
            "version": dataset.version,
            "goal": str(goal),
            "strategy": strategy,
            "adornment": prepared.adornment,
            "mode": prepared.mode,
            "cache_hit": hit,
            "rules_compiled": (
                prepared.fixpoint.rule_count if prepared.fixpoint else 0
            ),
            "kernels": (
                prepared.fixpoint.kernel_count if prepared.fixpoint else 0
            ),
            "elapsed_ms": (time.perf_counter() - started) * 1000.0,
        }

    # --- querying -------------------------------------------------------------
    def query(
        self,
        dataset_name: str,
        goal: "Atom | str",
        strategy: str = DEFAULT_STRATEGY,
        sips: "str | None" = None,
        planner: "str | None" = None,
        executor: str = DEFAULT_EXECUTOR,
        scheduler: str = DEFAULT_SCHEDULER,
        storage: str = DEFAULT_STORAGE,
        budget: "EvaluationBudget | None" = None,
        workers: "int | None" = None,
        maintain: "str | None" = None,
    ) -> dict:
        """Answer *goal* against *dataset_name*; the ``/query`` endpoint.

        Returns a JSON-ready payload.  Budget trips degrade to a sound
        partial payload (``partial: true``) instead of raising.
        *workers* sizes the ``scheduler="parallel"`` worker pool
        (``None`` = one per CPU core); serial schedulers ignore it.
        *maintain* routes the request through a maintained shape (see
        :meth:`prepare`); materialised strategies only.
        """
        obs = get_metrics()
        started = time.perf_counter()
        dataset = self.dataset(dataset_name)
        if isinstance(goal, str):
            goal = parse_query(goal)
        if strategy not in available_strategies():
            raise ReproError(
                f"unknown strategy {strategy!r}; choose from "
                f"{available_strategies()}"
            )
        if obs.enabled:
            obs.incr("serve.queries")
            obs.incr(f"serve.strategy.{strategy}")

        payload: dict
        if strategy in UNPREPARABLE_STRATEGIES:
            payload = self._query_direct(
                dataset, goal, strategy, sips, planner, executor, scheduler,
                storage, budget, workers,
            )
        else:
            payload = self._query_prepared(
                dataset, goal, strategy, sips, planner, executor, scheduler,
                storage, budget, workers, maintain,
            )
        elapsed = time.perf_counter() - started
        payload["elapsed_ms"] = elapsed * 1000.0
        if obs.enabled:
            obs.observe("serve.request_seconds", elapsed)
        return payload

    def _query_prepared(
        self, dataset: Dataset, goal: Atom, strategy: str, sips, planner,
        executor: str, scheduler: str, storage: str, budget, workers=None,
        maintain: "str | None" = None,
    ) -> dict:
        key = self._cache_key(
            dataset, goal, strategy, sips, planner, executor, scheduler,
            storage, maintain,
        )
        try:
            # The request budget governs whatever work this request
            # actually does: on a miss that includes preparation (lower
            # strata / full materialisation), on a hit only execution.
            prepared, hit = self.cache.get_or_prepare(
                key,
                lambda: self._build_prepared(
                    dataset, goal, key, strategy, sips, planner, executor,
                    scheduler, storage, budget=budget, workers=workers,
                    maintain=maintain,
                ),
            )
        except BudgetExceededError as exc:
            # Tripped mid-preparation: nothing was cached.  The partial
            # database is still a sound prefix, so report what it holds
            # for the goal (usually nothing for transform shapes, whose
            # goal predicate lives above the materialised strata).
            return self._partial_payload(
                dataset, goal, strategy,
                _match_answers(exc.partial, goal), exc,
                prepared=False, cache_hit=False,
            )
        try:
            result = prepared.execute(goal, budget=budget, workers=workers)
        except BudgetExceededError as exc:
            return self._partial_payload(
                dataset, goal, strategy,
                prepared.partial_answers(exc.partial, goal), exc,
                prepared=True, cache_hit=hit,
            )
        payload = self._result_payload(dataset, goal, result)
        payload["prepared"] = True
        payload["cache_hit"] = hit
        return payload

    def _query_direct(
        self, dataset: Dataset, goal: Atom, strategy: str, sips, planner,
        executor: str, scheduler: str, storage: str, budget, workers=None,
    ) -> dict:
        obs = get_metrics()
        if obs.enabled:
            obs.incr("serve.direct")
        try:
            result = run_strategy(
                strategy,
                dataset.program,
                goal,
                dataset.database,
                sips=sips,
                planner=planner,
                budget=budget,
                executor=executor,
                scheduler=scheduler,
                storage=storage,
                workers=workers,
            )
        except BudgetExceededError as exc:
            return self._partial_payload(
                dataset, goal, strategy, _match_answers(exc.partial, goal),
                exc, prepared=False, cache_hit=False,
            )
        payload = self._result_payload(dataset, goal, result)
        payload["prepared"] = False
        payload["cache_hit"] = False
        return payload

    # --- payload rendering ----------------------------------------------------
    @staticmethod
    def render_answers(answers: tuple[Atom, ...]) -> dict:
        """The canonical answer rendering every payload shares.

        ``rows`` are the ground value tuples in the deterministic sorted
        order of :func:`repro.core.strategy._sorted_answers`; ``atoms``
        the same answers as source text.  The bit-identity tests compare
        these fields against a direct :meth:`repro.core.engine.Engine.query`.
        """
        return {
            "rows": [list(atom.ground_key()) for atom in answers],
            "atoms": [str(atom) for atom in answers],
            "count": len(answers),
        }

    def _result_payload(
        self, dataset: Dataset, goal: Atom, result: QueryResult
    ) -> dict:
        payload = {
            "dataset": dataset.name,
            "version": dataset.version,
            "goal": str(goal),
            "strategy": result.strategy,
            "answers": self.render_answers(result.answers),
            "partial": False,
            "sound": True,
            "complete": True,
            "stats": result.stats.as_dict(),
        }
        return payload

    # --- introspection / lifecycle --------------------------------------------
    def metrics_payload(self) -> dict:
        """The ``/metrics`` body (minus the server's in-flight gauge).

        The HTTP layer delegates here so a pooled service can override
        it with a cross-process merge of every worker's registry.
        """
        payload = {
            "metrics": get_metrics().snapshot(),
            "cache": self.cache.stats(),
        }
        if self.registry is not None and hasattr(self.registry, "stats"):
            payload["registry"] = self.registry.stats()
        return payload

    def health_payload(self) -> dict:
        """The ``/health`` body; pooled services add worker liveness."""
        return {"status": "ok", "datasets": self.datasets()}

    def close(self) -> None:
        """Release external resources.  The single-process service holds
        none; the pooled service overrides this to reap its workers and
        unlink shared memory."""

    def _partial_payload(
        self, dataset: Dataset, goal: Atom, strategy: str,
        answers: tuple[Atom, ...], exc: BudgetExceededError,
        prepared: bool, cache_hit: bool,
    ) -> dict:
        obs = get_metrics()
        if obs.enabled:
            obs.incr("serve.budget_tripped")
        stats = exc.stats.as_dict() if exc.stats is not None else {}
        return {
            "dataset": dataset.name,
            "version": dataset.version,
            "goal": str(goal),
            "strategy": strategy,
            "answers": self.render_answers(answers),
            "partial": True,
            "sound": True,
            "complete": False,
            "budget_limit": exc.limit,
            "stats": stats,
            "prepared": prepared,
            "cache_hit": cache_hit,
        }
