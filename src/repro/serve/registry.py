"""The on-disk shape registry: prepared queries shared across processes.

The in-memory :class:`~repro.serve.cache.PreparedQueryCache` is
per-process; with the multiprocess server every worker would otherwise
pay the full transform/plan/compile pipeline for every shape it sees
first.  A :class:`ShapeRegistry` is a directory of serialized shapes
(:mod:`repro.core.snapshot` format), keyed by the library-level
:func:`~repro.core.prepare.prepared_cache_key` **plus** the dataset's
data fingerprint — the same identity the cache uses, widened with the
facts, because a serialized shape embeds its execution base.

The contract with the cache layer:

* a registry **hit** deserializes a bit-identical shape — zero
  ``prepare.transforms`` / ``prepare.compiles`` (the smoke CI job
  asserts exactly this for a second worker's first request);
* a registry **miss** falls through to a real preparation, whose result
  is saved back (atomically: temp file + ``os.replace``, so concurrent
  workers racing on one shape never observe a torn file);
* anything unreadable — a truncated file, a bumped format version from
  an older/newer build — is counted under ``serve.registry.rejected``
  and treated as a miss.  Stale or corrupt registry state can cost a
  re-preparation, never a wrong answer.

Maintained shapes hold a live incremental engine and are skipped
(:class:`~repro.core.snapshot.SnapshotError` from the dump).  Registry
files survive server restarts, which is the warm-start path: a restarted
server's first request on a known shape loads instead of preparing.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

from ..core.snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    SnapshotError,
    dump_prepared,
    load_prepared,
)
from ..obs import get_metrics

__all__ = ["ShapeRegistry", "shape_digest"]


def shape_digest(key: tuple, data_fingerprint: str) -> str:
    """The registry filename stem for a shape.

    *key* is the library-level cache key (no dataset name/version — the
    same shape is reusable under any handle); *data_fingerprint* is
    :func:`~repro.core.snapshot.database_fingerprint` of the dataset, so
    a fact-level change re-keys every shape even though the program
    fingerprint inside *key* is unchanged.
    """
    payload = json.dumps(
        [SNAPSHOT_FORMAT_VERSION, list(key), data_fingerprint],
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ShapeRegistry:
    """A directory of serialized prepared shapes, safe for concurrent use
    by any number of processes (reads see whole files or nothing; writes
    are atomic renames)."""

    def __init__(self, root: "str | Path"):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path(self, digest: str) -> Path:
        return self.root / f"{digest}.rpqs"

    def load(self, key: tuple, data_fingerprint: str):
        """The shape under this identity, or ``None`` (miss/rejected).

        Never raises on registry content: an unreadable file is
        rejected (counted) and reported as a miss, so the caller always
        has the fall-back of preparing from scratch.
        """
        obs = get_metrics()
        path = self.path(shape_digest(key, data_fingerprint))
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            if obs.enabled:
                obs.incr("serve.registry.misses")
            return None
        except OSError:
            if obs.enabled:
                obs.incr("serve.registry.rejected")
            return None
        try:
            prepared = load_prepared(data)
        except SnapshotError:
            if obs.enabled:
                obs.incr("serve.registry.rejected")
            return None
        if obs.enabled:
            obs.incr("serve.registry.hits")
        return prepared

    def save(self, key: tuple, data_fingerprint: str, prepared) -> bool:
        """Persist *prepared* under this identity; False when the shape
        has no serialized form (maintained) or the write failed."""
        obs = get_metrics()
        try:
            data = dump_prepared(prepared)
        except SnapshotError:
            return False
        path = self.path(shape_digest(key, data_fingerprint))
        try:
            fd, temp = tempfile.mkstemp(
                dir=self.root, prefix=".tmp-", suffix=".rpqs"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(data)
                os.replace(temp, path)
            except BaseException:
                try:
                    os.unlink(temp)
                except OSError:
                    pass
                raise
        except OSError:
            if obs.enabled:
                obs.incr("serve.registry.errors")
            return False
        if obs.enabled:
            obs.incr("serve.registry.saves")
        return True

    def stats(self) -> dict:
        """Entry count + byte total, for ``/health`` and debugging."""
        entries = 0
        total = 0
        try:
            for path in self.root.glob("*.rpqs"):
                entries += 1
                try:
                    total += path.stat().st_size
                except OSError:
                    pass
        except OSError:
            pass
        return {"path": str(self.root), "entries": entries, "bytes": total}

    def __repr__(self) -> str:
        return f"ShapeRegistry({str(self.root)!r})"
