"""The multiprocess serving backend: a pre-forked worker pool.

Threads share one interpreter; on CPython the GIL serialises the join
kernels, so the threaded :class:`~repro.serve.server.ReproServer` never
exceeds one core of evaluation throughput no matter how many clients
connect.  This module scales ``repro.serve`` across cores with
**processes** instead:

* a :class:`WorkerPool` pre-forks (spawn start method — it preserves
  ``sys.path`` and imports cleanly everywhere) ``N`` worker processes,
  each running a full single-process
  :class:`~repro.serve.service.QueryService` of its own;
* :class:`PooledService` is the dispatcher: it keeps the authoritative
  datasets in-process (so ``/load`` and ``/update`` semantics — version
  bumps, maintained-shape patching of its own bookkeeping — are exactly
  the single-process ones), publishes every dataset version as a
  shared-memory snapshot (:func:`~repro.core.snapshot.freeze_database`),
  and routes ``/query`` / ``/prepare`` round-robin to the workers;
* dataset propagation is **pull-based**: every dispatched request
  carries a spec ``{name, version, shm, size}`` resolved at send time;
  a worker seeing an unknown version attaches the named block,
  decodes the database straight out of shared memory (the serialized
  bytes are never copied between processes), and installs it.  A
  fire-and-forget ``sync`` broadcast after each mutation warms workers
  eagerly, but correctness never depends on it;
* workers that die (OOM-killed, crashed, ``kill -9`` in the tests) are
  detected at the pipe, respawned, and the in-flight request is retried
  once on the fresh worker — counted under ``serve.workers.crashed`` /
  ``serve.workers.restarts`` / ``serve.workers.retries``;
* ``/metrics`` broadcasts to every worker and folds the per-process
  registries into one view with
  :func:`~repro.obs.metrics.merge_snapshots` (dispatcher first, then
  workers by slot index, so order-sensitive fields are deterministic).

Workers share prepared shapes through the on-disk
:class:`~repro.serve.registry.ShapeRegistry`: the first worker to
prepare a shape saves its serialized form, and every other worker (and
every restarted server) loads it instead of re-transforming and
re-compiling — the smoke job asserts the second worker's first request
does zero ``prepare.transforms`` / ``prepare.compiles`` work.

Shared-memory lifetime: the dispatcher owns every block.  Publishing a
new dataset version keeps the previous block alive briefly (an in-flight
request dispatched a moment ago may still name it) and unlinks older
ones; :meth:`PooledService.close` — reached from
:func:`~repro.serve.server.run_server`'s shutdown path, so SIGTERM too —
reaps all workers and unlinks every block.  Workers deliberately
unregister attached blocks from their own ``resource_tracker``
(:meth:`~repro.core.snapshot.SharedSnapshot.attach`), so a worker
restart never destroys a block the dispatcher still serves.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import queue
import threading

from ..core.snapshot import SharedSnapshot, freeze_database, load_database
from ..datalog.parser import parse_program
from ..errors import ReproError
from ..obs import ThreadSafeMetrics, get_metrics, merge_snapshots, set_metrics
from .cache import DEFAULT_MAX_ENTRIES
from .service import QueryService, budget_from_payload

__all__ = ["WorkerPool", "PooledService", "WorkerPoolError"]

DEFAULT_PROCESSES = 2

_STOP = object()


class WorkerPoolError(ReproError):
    """A request could not be served by any worker (pool shut down, or
    the worker died and the one retry died too)."""


# --- worker side --------------------------------------------------------------

def _ensure_dataset(service: QueryService, installed: dict, spec) -> None:
    """Install the dataset version named by *spec*, if not already.

    *installed* maps dataset name → installed version for this worker.
    The shared block is read straight through a memoryview; decoded rows
    are copied into the worker's own database, so the block is closed
    again before the request runs (the dispatcher may retire it any
    time after).
    """
    if spec is None:
        return
    name, version = spec["name"], spec["version"]
    if installed.get(name) == version:
        return
    snapshot = SharedSnapshot.attach(spec["shm"], spec["size"])
    try:
        database, header = load_database(snapshot.data)
    finally:
        snapshot.close()
    extra = header.get("extra") or {}
    program = parse_program(extra.get("program", "")).without_facts()
    service.install(
        name, program, database, version,
        data_fingerprint=extra.get("data_fingerprint") or None,
    )
    installed[name] = version


def _worker_main(conn, index: int, config: dict) -> None:
    """One worker process: a request loop over its end of the pipe.

    Messages are ``{"op", "payload", "spec"}`` dicts; every message gets
    exactly one reply (``{"ok": True, "result"}`` or ``{"ok": False,
    "status", "error"}``), which is what keeps the pipe protocol in
    lock-step with the parent's slot thread.
    """
    set_metrics(ThreadSafeMetrics())
    service = QueryService(
        max_cached=config.get("max_cached", DEFAULT_MAX_ENTRIES),
        registry=config.get("registry"),
    )
    installed: dict[str, int] = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        op = message.get("op")
        try:
            if op == "exit":
                conn.send({"ok": True, "result": {"pid": os.getpid()}})
                break
            elif op == "ping":
                reply = {"ok": True, "result": {"pid": os.getpid()}}
            elif op == "metrics":
                reply = {
                    "ok": True,
                    "result": {
                        "pid": os.getpid(),
                        "metrics": get_metrics().snapshot(),
                        "cache": service.cache.stats(),
                    },
                }
            elif op in ("query", "prepare", "sync"):
                _ensure_dataset(service, installed, message.get("spec"))
                payload = message.get("payload") or {}
                if op == "sync":
                    result = {"pid": os.getpid(), "installed": dict(installed)}
                elif op == "prepare":
                    result = service.prepare(
                        message["spec"]["name"],
                        payload["goal"],
                        **(payload.get("config") or {}),
                    )
                else:
                    result = service.query(
                        message["spec"]["name"],
                        payload["goal"],
                        budget=budget_from_payload(payload.get("budget")),
                        **(payload.get("config") or {}),
                    )
                reply = {"ok": True, "result": result}
            else:
                reply = {
                    "ok": False, "status": 400,
                    "error": f"unknown worker op {op!r}",
                }
        except ReproError as exc:
            reply = {"ok": False, "status": 400, "error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - worker must not die on a bad request
            reply = {
                "ok": False, "status": 500,
                "error": f"worker error: {type(exc).__name__}: {exc}",
            }
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()


# --- parent side --------------------------------------------------------------

class _Task:
    """One queued request: resolved by the slot thread, awaited by the
    submitting request thread (``event is None`` → fire-and-forget)."""

    __slots__ = ("op", "payload", "dataset", "event", "reply", "attempts")

    def __init__(self, op, payload=None, dataset=None, wait=True):
        self.op = op
        self.payload = payload
        self.dataset = dataset
        self.event = threading.Event() if wait else None
        self.reply = None
        self.attempts = 0

    def resolve(self, reply) -> None:
        self.reply = reply
        if self.event is not None:
            self.event.set()


class _WorkerDied(Exception):
    """Internal: the slot's worker process died mid-request."""


class _Slot:
    """One worker process + its pipe + its task queue + its feeder thread."""

    __slots__ = ("index", "process", "conn", "queue", "thread", "restarts")

    def __init__(self, index: int):
        self.index = index
        self.process = None
        self.conn = None
        self.queue: "queue.Queue" = queue.Queue()
        self.thread = None
        self.restarts = 0


class WorkerPool:
    """``processes`` worker processes behind per-slot task queues.

    *spec_provider* maps a dataset name to the shared-memory spec sent
    with every dataset-bound request; it is called at **send time** so a
    request retried after a worker death (or sitting in the queue across
    a ``/load``) always names the current snapshot.
    """

    def __init__(
        self,
        processes: int = DEFAULT_PROCESSES,
        config: "dict | None" = None,
        spec_provider=None,
        start_method: str = "spawn",
    ):
        if processes < 1:
            raise ReproError(
                f"worker pool needs at least one process, got {processes}"
            )
        self.processes = processes
        self._config = dict(config or {})
        self._spec_provider = spec_provider
        self._context = multiprocessing.get_context(start_method)
        self._stop = False
        self._lock = threading.Lock()
        self._rr = itertools.count()
        self._slots = [_Slot(i) for i in range(processes)]
        for slot in self._slots:
            self._spawn(slot)
            slot.thread = threading.Thread(
                target=self._slot_loop, args=(slot,),
                name=f"repro-serve-slot-{slot.index}", daemon=True,
            )
            slot.thread.start()

    # --- lifecycle ------------------------------------------------------------
    def _spawn(self, slot: _Slot) -> None:
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_worker_main,
            args=(child_conn, slot.index, self._config),
            name=f"repro-serve-worker-{slot.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        slot.process = process
        slot.conn = parent_conn

    def _respawn(self, slot: _Slot) -> None:
        obs = get_metrics()
        if obs.enabled:
            obs.incr("serve.workers.crashed")
            obs.incr("serve.workers.restarts")
        try:
            slot.conn.close()
        except OSError:
            pass
        if slot.process.is_alive():  # pragma: no cover - pipe died first
            slot.process.terminate()
        slot.process.join(timeout=2.0)
        slot.restarts += 1
        self._spawn(slot)

    def shutdown(self) -> None:
        """Stop feeders, reap every worker, resolve stranded tasks."""
        with self._lock:
            if self._stop:
                return
            self._stop = True
        for slot in self._slots:
            slot.queue.put(_STOP)
        for slot in self._slots:
            if slot.thread is not None:
                slot.thread.join(timeout=5.0)
        for slot in self._slots:
            # Anything still queued behind the stop sentinel (or raced
            # in after it) fails fast rather than hanging its waiter.
            while True:
                try:
                    task = slot.queue.get_nowait()
                except queue.Empty:
                    break
                if task is not _STOP:
                    task.resolve({
                        "ok": False, "status": 503,
                        "error": "server shutting down",
                    })
            try:
                slot.conn.send({"op": "exit"})
                if slot.conn.poll(1.0):
                    slot.conn.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass
            slot.process.join(timeout=2.0)
            if slot.process.is_alive():  # pragma: no cover - stuck worker
                slot.process.terminate()
                slot.process.join(timeout=1.0)
                if slot.process.is_alive():
                    slot.process.kill()
                    slot.process.join(timeout=1.0)
            try:
                slot.conn.close()
            except OSError:
                pass

    # --- dispatch -------------------------------------------------------------
    def _slot_loop(self, slot: _Slot) -> None:
        while True:
            try:
                task = slot.queue.get(timeout=0.1)
            except queue.Empty:
                if self._stop:
                    return
                continue
            if task is _STOP:
                return
            message = {"op": task.op, "payload": task.payload, "spec": None}
            if task.dataset is not None and self._spec_provider is not None:
                try:
                    # Resolved now, not at submit time: a retry or a
                    # queued request must name the snapshot that is
                    # current when the worker actually sees it.
                    message["spec"] = self._spec_provider(task.dataset)
                except ReproError as exc:
                    task.resolve(
                        {"ok": False, "status": 400, "error": str(exc)}
                    )
                    continue
            try:
                try:
                    slot.conn.send(message)
                except (BrokenPipeError, OSError):
                    # The worker died between requests; same failover
                    # path as dying mid-request.
                    raise _WorkerDied()
                task.resolve(self._await_reply(slot))
            except _WorkerDied:
                if self._stop:
                    task.resolve({
                        "ok": False, "status": 503,
                        "error": "server shutting down",
                    })
                    return
                self._respawn(slot)
                if task.attempts < 1:
                    task.attempts += 1
                    obs = get_metrics()
                    if obs.enabled:
                        obs.incr("serve.workers.retries")
                    slot.queue.put(task)
                else:
                    task.resolve({
                        "ok": False, "status": 503,
                        "error": "worker died twice serving this request",
                    })

    def _await_reply(self, slot: _Slot):
        while True:
            try:
                if slot.conn.poll(0.05):
                    return slot.conn.recv()
            except (EOFError, OSError):
                raise _WorkerDied()
            if not slot.process.is_alive():
                # Drain a reply that landed between the poll and the
                # death check before declaring the request lost.
                try:
                    if slot.conn.poll(0):
                        return slot.conn.recv()
                except (EOFError, OSError):
                    pass
                raise _WorkerDied()

    def submit(self, op: str, payload=None, dataset=None, timeout=60.0):
        """Route one request to the next worker (round-robin) and wait.

        Raises the worker-reported error class: :class:`ReproError` for
        client errors (400), :class:`WorkerPoolError` when no worker
        could serve it (503), ``RuntimeError`` for worker-internal
        failures (500).
        """
        if self._stop:
            raise WorkerPoolError("worker pool is shut down")
        obs = get_metrics()
        if obs.enabled:
            obs.incr("serve.workers.dispatched")
        task = _Task(op, payload=payload, dataset=dataset, wait=True)
        slot = self._slots[next(self._rr) % self.processes]
        slot.queue.put(task)
        if not task.event.wait(timeout):
            raise WorkerPoolError(
                f"worker {slot.index} did not answer within {timeout}s"
            )
        reply = task.reply
        if reply.get("ok"):
            return reply["result"]
        status, error = reply.get("status", 500), reply.get("error", "")
        if status == 400:
            raise ReproError(error)
        if status == 503:
            raise WorkerPoolError(error)
        raise RuntimeError(error)

    def broadcast(self, op: str, payload=None, dataset=None, timeout=5.0):
        """Send *op* to every worker; a worker that misses *timeout*
        contributes ``None`` (the pool stays responsive around one stuck
        worker)."""
        tasks = []
        for slot in self._slots:
            task = _Task(op, payload=payload, dataset=dataset, wait=True)
            slot.queue.put(task)
            tasks.append(task)
        replies = []
        for task in tasks:
            if task.event.wait(timeout) and task.reply.get("ok"):
                replies.append(task.reply["result"])
            else:
                replies.append(None)
        return replies

    def notify(self, op: str, dataset=None) -> None:
        """Fire-and-forget *op* to every worker (e.g. eager dataset
        sync); nobody waits on the replies."""
        for slot in self._slots:
            slot.queue.put(_Task(op, dataset=dataset, wait=False))

    # --- introspection --------------------------------------------------------
    def worker_pids(self) -> list:
        return [
            slot.process.pid if slot.process is not None else None
            for slot in self._slots
        ]

    def restarts(self) -> int:
        return sum(slot.restarts for slot in self._slots)


class PooledService:
    """The dispatcher-side service: single-process semantics, multiprocess
    execution.

    Duck-type compatible with :class:`~repro.serve.service.QueryService`
    where the HTTP layer cares (``load`` / ``update`` / ``query`` /
    ``prepare`` / ``datasets`` / ``metrics_payload`` / ``health_payload``
    / ``close``).  Mutations run on the wrapped in-process service (the
    authority for versions and fingerprints), then publish a
    shared-memory snapshot; reads are dispatched to the pool.
    """

    def __init__(
        self,
        processes: int = DEFAULT_PROCESSES,
        max_cached: int = DEFAULT_MAX_ENTRIES,
        registry=None,
        start_method: str = "spawn",
    ):
        self._service = QueryService(max_cached=max_cached, registry=registry)
        registry_path = None
        if self._service.registry is not None:
            registry_path = str(self._service.registry.root)
        self._lock = threading.Lock()
        self._snapshots: dict[str, list] = {}
        self.pool = WorkerPool(
            processes,
            config={"max_cached": max_cached, "registry": registry_path},
            spec_provider=self._spec,
            start_method=start_method,
        )
        self._closed = False

    # --- delegated bookkeeping ------------------------------------------------
    @property
    def cache(self):
        return self._service.cache

    @property
    def registry(self):
        return self._service.registry

    def dataset(self, name: str):
        return self._service.dataset(name)

    def datasets(self) -> list:
        return self._service.datasets()

    def load(
        self,
        name: str,
        program_text: "str | None" = None,
        facts_text: "str | None" = None,
        extend: bool = False,
    ) -> dict:
        info = self._service.load(
            name, program_text=program_text, facts_text=facts_text,
            extend=extend,
        )
        self._publish(name)
        return info

    def update(self, name: str, add=(), remove=()) -> dict:
        info = self._service.update(name, add=add, remove=remove)
        self._publish(name)
        return info

    # --- publication ----------------------------------------------------------
    def _publish(self, name: str) -> None:
        """Freeze the current dataset version into shared memory.

        Keeps the newest two blocks per dataset: a request dispatched
        just before this publish may still carry the previous block's
        name, so it survives one generation before being unlinked.
        """
        dataset = self._service.dataset(name)
        snapshot = freeze_database(
            dataset.database,
            extra={
                "program": "\n".join(
                    str(rule) for rule in dataset.program.rules
                ),
                "dataset": dataset.name,
                "version": dataset.version,
                "data_fingerprint": dataset.data_fingerprint,
            },
        )
        with self._lock:
            history = self._snapshots.setdefault(name, [])
            history.append((dataset.version, snapshot))
            while len(history) > 2:
                _, retired = history.pop(0)
                retired.close()
                retired.unlink()
        self.pool.notify("sync", dataset=name)

    def _spec(self, name: str) -> dict:
        dataset = self._service.dataset(name)
        with self._lock:
            history = self._snapshots.get(name) or []
            for version, snapshot in reversed(history):
                if version == dataset.version:
                    return {
                        "name": name,
                        "version": version,
                        "shm": snapshot.name,
                        "size": snapshot.size,
                    }
        raise ReproError(
            f"dataset {name!r} has no published snapshot"
        )  # pragma: no cover - publish always follows load/update

    # --- dispatched requests --------------------------------------------------
    def query(self, dataset_name: str, goal, budget=None, **config) -> dict:
        self._service.dataset(dataset_name)  # fail fast on unknown names
        payload = {
            "goal": str(goal),
            "config": {k: v for k, v in config.items() if v is not None},
            "budget": _budget_payload(budget),
        }
        return self.pool.submit("query", payload, dataset=dataset_name)

    def prepare(self, dataset_name: str, goal, **config) -> dict:
        self._service.dataset(dataset_name)
        payload = {
            "goal": str(goal),
            "config": {k: v for k, v in config.items() if v is not None},
        }
        return self.pool.submit("prepare", payload, dataset=dataset_name)

    # --- introspection / lifecycle --------------------------------------------
    def metrics_payload(self) -> dict:
        replies = self.pool.broadcast("metrics")
        snapshots = [get_metrics().snapshot()]
        caches = []
        pids = []
        for reply in replies:
            if reply is None:
                continue
            snapshots.append(reply["metrics"])
            caches.append(reply["cache"])
            pids.append(reply["pid"])
        cache_totals: dict = {}
        for stats in caches:
            for key, value in stats.items():
                if isinstance(value, (int, float)):
                    cache_totals[key] = cache_totals.get(key, 0) + value
        payload = {
            "metrics": merge_snapshots(*snapshots),
            "cache": cache_totals,
            "workers": {
                "processes": self.pool.processes,
                "pids": self.pool.worker_pids(),
                "responding": len(caches),
                "restarts": self.pool.restarts(),
            },
        }
        if self.registry is not None and hasattr(self.registry, "stats"):
            payload["registry"] = self.registry.stats()
        return payload

    def health_payload(self) -> dict:
        payload = self._service.health_payload()
        with self._lock:
            shared = [
                snapshot.name
                for history in self._snapshots.values()
                for _, snapshot in history
            ]
        payload["workers"] = {
            "processes": self.pool.processes,
            "pids": self.pool.worker_pids(),
            "restarts": self.pool.restarts(),
        }
        payload["shared_memory"] = sorted(shared)
        return payload

    def close(self) -> None:
        """Reap every worker, then unlink every shared block (idempotent,
        and reached from ``run_server``'s shutdown path — SIGTERM
        included)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self.pool.shutdown()
        with self._lock:
            histories = list(self._snapshots.values())
            self._snapshots.clear()
        for history in histories:
            for _, snapshot in history:
                snapshot.close()
                snapshot.unlink()


def _budget_payload(budget) -> "dict | None":
    """Re-encode an :class:`~repro.engine.budget.EvaluationBudget` into
    the wire form :func:`~repro.serve.service.budget_from_payload`
    decodes (the worker rebuilds it on its side of the pipe)."""
    if budget is None:
        return None
    payload = {}
    for field in (
        "wall_clock_seconds", "max_iterations", "max_facts", "max_attempts",
    ):
        value = getattr(budget, field, None)
        if value is not None:
            payload[field] = value
    return payload or None
