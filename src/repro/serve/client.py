"""A thin ``urllib`` client for the query service.

Shared by the tests, the serving benchmark, and the CI smoke job so they
all speak the endpoint contract through one place.  Strictly standard
library, like the server.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from ..errors import ReproError

__all__ = ["ServeClient", "ServeError"]


class ServeError(ReproError):
    """An HTTP-level failure talking to the service.

    Attributes:
        status: HTTP status code, when a response arrived at all.
        payload: the decoded error payload, when the body was JSON.
        transient: whether retrying could plausibly succeed (connection
            reset/refused, or a 503 from the dispatcher) — what
            :class:`ServeClient`'s bounded retry keys on.
    """

    def __init__(
        self, message: str, status: "int | None" = None, payload=None,
        transient: bool = False,
    ):
        super().__init__(message)
        self.status = status
        self.payload = payload
        self.transient = transient


_TRANSIENT_REASONS = (
    ConnectionResetError,
    ConnectionRefusedError,
    ConnectionAbortedError,
    BrokenPipeError,
)


class ServeClient:
    """Talk JSON to a running :mod:`repro.serve` server.

    Requests that fail *transiently* — the connection was reset or
    refused (a worker restarting, the multiprocess dispatcher failing
    over), or the server answered 503 (no worker could take the
    request) — are retried up to *retries* times with exponential
    backoff.  Anything the server actually answered (400s, budget
    trips, normal payloads) is never retried; ``retries=0`` opts out
    entirely.

    Args:
        base_url: e.g. ``"http://127.0.0.1:8321"`` (no trailing slash
            needed).
        timeout: per-request socket timeout in seconds.
        retries: additional attempts after a transient failure
            (default 2; 0 disables retrying).
        backoff: first retry delay in seconds; doubles per attempt.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retries: int = 2,
        backoff: float = 0.05,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff

    # --- transport ------------------------------------------------------------
    def _request(self, path: str, payload: "dict | None" = None) -> dict:
        attempt = 0
        while True:
            try:
                return self._request_once(path, payload)
            except ServeError as exc:
                if attempt >= self.retries or not exc.transient:
                    raise
            time.sleep(self.backoff * (2 ** attempt))
            attempt += 1

    def _request_once(self, path: str, payload: "dict | None" = None) -> dict:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                body = resp.read()
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                decoded = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                decoded = None
            message = (
                decoded.get("error") if isinstance(decoded, dict) else None
            ) or f"HTTP {exc.code} from {path}"
            raise ServeError(
                message, status=exc.code, payload=decoded,
                transient=exc.code == 503,
            )
        except urllib.error.URLError as exc:
            raise ServeError(
                f"cannot reach {url}: {exc.reason}",
                transient=isinstance(exc.reason, _TRANSIENT_REASONS),
            )
        except _TRANSIENT_REASONS as exc:
            # urllib can also surface a mid-body reset as the raw OS
            # error (the response started, then the worker died).
            raise ServeError(f"connection lost to {url}: {exc}", transient=True)
        try:
            return json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ServeError(f"non-JSON response from {path}: {exc}")

    # --- endpoints ------------------------------------------------------------
    def health(self) -> dict:
        return self._request("/health")

    def metrics(self) -> dict:
        return self._request("/metrics")

    def load(
        self,
        dataset: str,
        program: "str | None" = None,
        facts: "str | None" = None,
        extend: bool = False,
    ) -> dict:
        return self._request(
            "/load",
            {
                "dataset": dataset,
                "program": program,
                "facts": facts,
                "extend": extend,
            },
        )

    def update(
        self,
        dataset: str,
        add: "list[str] | tuple[str, ...]" = (),
        remove: "list[str] | tuple[str, ...]" = (),
    ) -> dict:
        return self._request(
            "/update",
            {"dataset": dataset, "add": list(add), "remove": list(remove)},
        )

    def prepare(self, dataset: str, goal: str, **config) -> dict:
        return self._request(
            "/prepare", {"dataset": dataset, "goal": goal, **config}
        )

    def query(
        self,
        dataset: str,
        goal: str,
        budget: "dict | None" = None,
        **config,
    ) -> dict:
        payload = {"dataset": dataset, "goal": goal, **config}
        if budget is not None:
            payload["budget"] = budget
        return self._request("/query", payload)

    # --- conveniences ---------------------------------------------------------
    def wait_healthy(self, deadline_seconds: float = 10.0) -> dict:
        """Poll ``/health`` until it answers or the deadline passes."""
        deadline = time.monotonic() + deadline_seconds
        last_error: "ServeError | None" = None
        while time.monotonic() < deadline:
            try:
                return self.health()
            except ServeError as exc:
                last_error = exc
                time.sleep(0.05)
        raise ServeError(
            f"server at {self.base_url} not healthy after "
            f"{deadline_seconds}s: {last_error}"
        )

    def counter(self, name: str) -> int:
        """One counter from ``/metrics`` (0 when absent)."""
        return int(
            self.metrics()["metrics"]["counters"].get(name, 0)
        )
