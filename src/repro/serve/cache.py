"""The prepared-query LRU cache behind the serving layer.

One entry is one :class:`repro.core.prepare.PreparedQuery` — a fully
transformed, planned, and compiled query shape.  Entries are keyed by
``(dataset, version) + prepared_cache_key(...)``, so a dataset reload
(which bumps the version) naturally strands the old version's entries;
:meth:`PreparedQueryCache.drop_dataset` evicts them eagerly on reload
rather than waiting for LRU pressure.

The cache is safe for concurrent use from the threading HTTP server.
Lookups and insertions run under one lock; *preparation itself does
not* — a miss releases the lock while the (potentially expensive)
factory runs, so concurrent requests for different shapes prepare in
parallel.  Two threads missing on the same key may both prepare; the
first insertion wins and the loser adopts it, which wastes one
preparation but never blocks unrelated requests behind a slow one.
Prepared queries are read-only after construction, so sharing one entry
across threads is sound (each execution copies its working database).

Accounting classifies each request by what it *got*, not by what it
first saw: a race loser ends up using the cached shape, so it counts as
a hit (and as a ``races`` event recording the wasted preparation), and
miss accounting is deferred until an insertion actually happens.
``hits + misses`` therefore always equals the number of
``get_or_prepare`` calls, and ``misses`` equals the number of shapes
actually inserted — invariants ``/metrics`` consumers rely on.

Hit/miss/race/eviction/drop totals are kept on the cache (exact,
locked) and mirrored into the active metrics registry as
``serve.prepared.hits`` / ``serve.prepared.misses`` /
``serve.prepared.races`` / ``serve.prepared.evictions`` /
``serve.prepared.drops`` — the counters the serve smoke CI job asserts
on.  Every entry enters through exactly one counted miss and leaves
through exactly one counted eviction (LRU pressure) or drop (explicit
invalidation), so ``entries == misses - evictions - drops`` holds at
every instant — the stress test pins this under concurrent
``get_or_prepare`` / ``rekey_dataset`` / ``drop_entry`` traffic.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from ..core.prepare import PreparedQuery
from ..obs import get_metrics

__all__ = ["CacheEntry", "PreparedQueryCache", "DEFAULT_MAX_ENTRIES"]

DEFAULT_MAX_ENTRIES = 64


@dataclass
class CacheEntry:
    """One cached shape plus its usage accounting."""

    key: tuple
    prepared: PreparedQuery
    hits: int = 0


class PreparedQueryCache:
    """A locked LRU of prepared queries.

    Args:
        max_entries: capacity; inserting beyond it evicts the least
            recently used entry.  Must be positive.
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES):
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, CacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.races = 0
        self.evictions = 0
        self.drops = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get_or_prepare(
        self, key: tuple, factory: Callable[[], PreparedQuery]
    ) -> tuple[PreparedQuery, bool]:
        """The entry under *key*, preparing it via *factory* on a miss.

        Returns ``(prepared, hit)`` where *hit* says whether this request
        ended up reusing a cached shape — including losing a prepare race
        and adopting the winner's entry.  *factory* runs outside the
        cache lock.  Miss accounting is deferred until this thread's
        insertion actually lands: counting at first lookup would book a
        race loser as a miss *and* hand it cached results, leaving
        ``misses`` larger than the number of preparations kept and
        ``hits`` smaller than the number of requests served from cache.
        """
        obs = get_metrics()
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                entry.hits += 1
                self.hits += 1
                if obs.enabled:
                    obs.incr("serve.prepared.hits")
                return entry.prepared, True
        prepared = factory()
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                # Lost a prepare race; adopt the first insertion so every
                # thread shares one object per shape.  The request is
                # served from cache, so it is a hit — plus a race event
                # recording the preparation this thread wasted.
                self._entries.move_to_end(key)
                existing.hits += 1
                self.hits += 1
                self.races += 1
                if obs.enabled:
                    obs.incr("serve.prepared.hits")
                    obs.incr("serve.prepared.races")
                return existing.prepared, True
            self.misses += 1
            if obs.enabled:
                obs.incr("serve.prepared.misses")
            self._entries[key] = CacheEntry(key=key, prepared=prepared)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
                if obs.enabled:
                    obs.incr("serve.prepared.evictions")
        return prepared, False

    def peek(self, key: tuple) -> "PreparedQuery | None":
        """The entry under *key* without touching LRU order or counters."""
        with self._lock:
            entry = self._entries.get(key)
            return entry.prepared if entry is not None else None

    def drop_entry(self, key: tuple) -> bool:
        """Evict the entry under *key*, if present; returns whether it
        was.  The update path uses it to discard maintained shapes after
        a failed patch, so nothing keeps serving a half-applied state."""
        with self._lock:
            if self._entries.pop(key, None) is None:
                return False
            self._count_drops(1)
            return True

    def _count_drops(self, count: int) -> None:
        """Book *count* explicit removals (callers hold the lock)."""
        if not count:
            return
        self.drops += count
        obs = get_metrics()
        if obs.enabled:
            obs.incr("serve.prepared.drops", count)

    def entries_for(self, dataset: str) -> list[tuple[tuple, PreparedQuery]]:
        """A snapshot of every ``(key, prepared)`` scoped to *dataset*,
        without touching LRU order or counters — the update path uses it
        to find maintained shapes to patch."""
        with self._lock:
            return [
                (key, entry.prepared)
                for key, entry in self._entries.items()
                if key[0] == dataset
            ]

    def rekey_dataset(
        self,
        dataset: str,
        old_version: int,
        new_version: int,
        keep: Callable[[tuple, PreparedQuery], bool],
    ) -> tuple[int, int]:
        """Migrate *dataset*'s entries from *old_version* to *new_version*.

        An incremental update (:meth:`QueryService.update`) bumps the
        dataset version like a reload, but unlike a reload most prepared
        shapes stay valid — maintained shapes were patched in place and
        shapes untouched by the update answer identically.  For each
        entry scoped to *dataset* at *old_version*, ``keep(key,
        prepared)`` decides: keep → the entry is re-keyed to
        *new_version* preserving its LRU position and hit counts; drop →
        evicted.  Returns ``(kept, dropped)``.

        Entries already at *new_version* are **kept as they are**: the
        update path publishes the new version before migrating the
        cache, so a concurrent request can legitimately insert a
        freshly prepared new-version shape in that window — discarding
        it (as this method once did) silently threw away valid work and
        broke the accounting.  When a migrating old-version entry
        collides with such a fresh insertion, exactly one survives (the
        one already placed) and the other is booked as dropped — never
        a silent overwrite, which would leak an entry past every
        counter.  Entries at any *older* version are stale leftovers
        and are always dropped.
        """
        with self._lock:
            kept = dropped = 0
            migrated: "OrderedDict[tuple, CacheEntry]" = OrderedDict()
            for key, entry in self._entries.items():
                if key[0] != dataset:
                    migrated[key] = entry
                    continue
                if key[1] == new_version:
                    if key in migrated:
                        # An old-version entry already migrated onto
                        # this key; one shape, one slot — the earlier
                        # placement stands, this copy is dropped.
                        dropped += 1
                        continue
                    migrated[key] = entry
                    kept += 1
                    continue
                if key[1] == old_version and keep(key, entry.prepared):
                    new_key = (key[0], new_version) + key[2:]
                    if new_key in migrated:
                        # A fresh new-version insertion got there first.
                        dropped += 1
                        continue
                    entry.key = new_key
                    migrated[new_key] = entry
                    kept += 1
                else:
                    dropped += 1
            self._entries = migrated
            self._count_drops(dropped)
            return kept, dropped

    def drop_dataset(self, dataset: str) -> int:
        """Evict every entry whose key scopes to *dataset*; returns count.

        Entry keys start with ``(dataset, version)``, so a reload can
        reclaim the stale version's slots immediately.
        """
        with self._lock:
            stale = [key for key in self._entries if key[0] == dataset]
            for key in stale:
                del self._entries[key]
            self._count_drops(len(stale))
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._count_drops(len(self._entries))
            self._entries.clear()

    def stats(self) -> dict[str, int]:
        """Exact totals for the ``/metrics`` payload.

        Taken under the lock, so the invariant ``entries == misses -
        evictions - drops`` holds within any single returned dict.
        """
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "races": self.races,
                "evictions": self.evictions,
                "drops": self.drops,
            }
