"""The HTTP face of the query service — standard library only.

A :class:`~http.server.ThreadingHTTPServer` (one thread per connection,
daemon threads) wraps a :class:`~repro.serve.service.QueryService`.
JSON in, JSON out; no framework, no non-stdlib dependency, because the
service must run anywhere the engine runs.

Endpoints::

    GET  /health    liveness + loaded datasets (200 as soon as booted)
    GET  /metrics   metrics snapshot + cache totals + in-flight gauge
    POST /load      {"dataset", "program"?, "facts"?, "extend"?}
    POST /update    {"dataset", "add"?: [facts], "remove"?: [facts]}
    POST /prepare   {"dataset", "goal", "strategy"?, config...}
    POST /query     {"dataset", "goal", "strategy"?, "budget"?, config...}

``/update`` is the incremental mutation path: maintained prepared
shapes (``"maintain": "counting" | "dred" | "recompute"`` in
``/prepare`` or ``/query``) are patched in place and unaffected cache
entries migrate to the new dataset version instead of being dropped —
see :meth:`repro.serve.service.QueryService.update`.

Error contract: malformed requests and library errors
(:class:`~repro.errors.ReproError`) are 400 with ``{"error": ...}``;
unknown paths are 404; **budget trips are 200** with a sound-partial
payload (``partial: true`` — see :mod:`repro.serve.service`).

Booting installs a :class:`~repro.obs.ThreadSafeMetrics` registry as the
process-wide active registry (request threads record concurrently), and
:func:`run_server` shuts down cleanly on SIGINT/SIGTERM — the serve
smoke CI job fails on any traceback at shutdown.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..errors import ReproError
from ..obs import ThreadSafeMetrics, get_metrics, set_metrics
from .service import QueryService, budget_from_payload

__all__ = ["ReproServer", "create_server", "run_server", "DEFAULT_HOST"]

DEFAULT_HOST = "127.0.0.1"
MAX_BODY_BYTES = 64 * 1024 * 1024


class ReproServer(ThreadingHTTPServer):
    """The threading HTTP server plus the shared service state."""

    daemon_threads = True
    # Allow quick restarts in tests/CI without TIME_WAIT bind failures.
    allow_reuse_address = True
    # The stdlib default backlog of 5 drops simultaneous connects under
    # concurrent clients (connection reset); match a realistic burst.
    request_queue_size = 128

    def __init__(self, address, service: QueryService, quiet: bool = True):
        super().__init__(address, _Handler)
        self.service = service
        self.quiet = quiet
        self._inflight = 0
        self._inflight_lock = threading.Lock()

    # --- in-flight gauge ------------------------------------------------------
    def request_started(self) -> None:
        obs = get_metrics()
        with self._inflight_lock:
            self._inflight += 1
            current = self._inflight
        if obs.enabled:
            obs.incr("serve.requests")
            obs.observe("serve.inflight", current)

    def request_finished(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1

    @property
    def inflight(self) -> int:
        with self._inflight_lock:
            return self._inflight

    @property
    def port(self) -> int:
        return self.server_address[1]

    def handle_error(self, request, client_address):
        # A client that vanished mid-response (killed worker, SIGTERM
        # during an in-flight query) is not a server error; the smoke
        # job fails on any traceback, so swallow connection aborts when
        # quiet and defer to the stdlib printer otherwise.
        if self.quiet:
            import sys

            exc = sys.exc_info()[1]
            if isinstance(exc, (ConnectionError, BrokenPipeError)):
                return
        super().handle_error(request, client_address)


class _Handler(BaseHTTPRequestHandler):
    """Request dispatch.  One instance per request, on its own thread."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # --- plumbing -------------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.server.quiet:
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ReproError(f"request body too large ({length} bytes)")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ReproError(f"request body is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise ReproError("request body must be a JSON object")
        return payload

    def _dispatch(self, handler) -> None:
        self.server.request_started()
        try:
            status, payload = handler()
        except ReproError as exc:
            status, payload = 400, {"error": str(exc)}
        except Exception as exc:  # pragma: no cover - defensive
            status, payload = 500, {
                "error": f"internal error: {type(exc).__name__}: {exc}"
            }
        finally:
            self.server.request_finished()
        self._send_json(status, payload)

    # --- routes ---------------------------------------------------------------
    def do_GET(self):
        if self.path == "/health":
            self._dispatch(self._health)
        elif self.path == "/metrics":
            self._dispatch(self._metrics)
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self):
        routes = {
            "/load": self._load,
            "/update": self._update,
            "/prepare": self._prepare,
            "/query": self._query,
        }
        handler = routes.get(self.path)
        if handler is None:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        self._dispatch(handler)

    def _health(self):
        return 200, self.server.service.health_payload()

    def _metrics(self):
        payload = self.server.service.metrics_payload()
        payload["inflight"] = self.server.inflight
        return 200, payload

    def _load(self):
        payload = self._read_json()
        name = payload.get("dataset")
        if not name:
            raise ReproError('load requires a "dataset" name')
        info = self.server.service.load(
            name,
            program_text=payload.get("program"),
            facts_text=payload.get("facts"),
            extend=bool(payload.get("extend", False)),
        )
        return 200, info

    def _update(self):
        payload = self._read_json()
        name = self._required(payload, "dataset")
        add = payload.get("add") or []
        remove = payload.get("remove") or []
        for field, value in (("add", add), ("remove", remove)):
            if not isinstance(value, list) or not all(
                isinstance(item, str) for item in value
            ):
                raise ReproError(
                    f'"{field}" must be a list of fact strings, '
                    f"got {value!r}"
                )
        return 200, self.server.service.update(name, add=add, remove=remove)

    def _prepare(self):
        payload = self._read_json()
        return 200, self.server.service.prepare(
            self._required(payload, "dataset"),
            self._required(payload, "goal"),
            **self._config(payload),
        )

    def _query(self):
        payload = self._read_json()
        budget = budget_from_payload(payload.get("budget"))
        return 200, self.server.service.query(
            self._required(payload, "dataset"),
            self._required(payload, "goal"),
            budget=budget,
            **self._config(payload),
        )

    @staticmethod
    def _required(payload: dict, field: str) -> str:
        value = payload.get(field)
        if not value:
            raise ReproError(f'request requires a "{field}" field')
        return value

    @staticmethod
    def _config(payload: dict) -> dict:
        config = {}
        for field in (
            "strategy", "sips", "planner", "executor", "scheduler", "storage",
            "maintain",
        ):
            if payload.get(field) is not None:
                config[field] = payload[field]
        workers = payload.get("workers")
        if workers is not None:
            # Validated at the boundary: the pool size must be a positive
            # integer (bools are JSON booleans, not worker counts).
            if (
                isinstance(workers, bool)
                or not isinstance(workers, int)
                or workers < 1
            ):
                raise ReproError(
                    f'"workers" must be a positive integer, got {workers!r}'
                )
            config["workers"] = workers
        return config


def create_server(
    host: str = DEFAULT_HOST,
    port: int = 0,
    service: "QueryService | None" = None,
    quiet: bool = True,
    install_metrics: bool = True,
) -> ReproServer:
    """Bind a :class:`ReproServer` (``port=0`` → ephemeral port).

    With *install_metrics* (the default) a fresh
    :class:`~repro.obs.ThreadSafeMetrics` becomes the process-wide active
    registry, so request threads record safely; pass ``False`` when the
    caller (a test) manages the registry itself.
    """
    if install_metrics and not isinstance(get_metrics(), ThreadSafeMetrics):
        set_metrics(ThreadSafeMetrics())
    return ReproServer((host, port), service or QueryService(), quiet=quiet)


def run_server(
    server: ReproServer,
    port_file: "str | None" = None,
    handle_signals: bool = True,
) -> None:
    """Serve until SIGINT/SIGTERM, then shut down cleanly.

    Args:
        server: a :func:`create_server` result.
        port_file: optional path to write the bound port to once
            serving — how the smoke job discovers an ephemeral port.
        handle_signals: install SIGINT/SIGTERM handlers that request a
            clean shutdown (main thread only).
    """
    if port_file:
        with open(port_file, "w", encoding="utf-8") as handle:
            handle.write(f"{server.port}\n")
    if handle_signals:
        def _shutdown(signum, frame):
            # shutdown() blocks until serve_forever exits; call it off
            # the serving thread.
            threading.Thread(target=server.shutdown, daemon=True).start()

        signal.signal(signal.SIGINT, _shutdown)
        signal.signal(signal.SIGTERM, _shutdown)
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        server.server_close()
        # Pooled services reap worker processes and unlink shared
        # memory here; the single-process close() is a no-op.
        server.service.close()
