"""Substitutions, unification, matching, and variant testing.

Because the language is function-free, unification needs no occurs check
and substitutions never map a variable to a compound term; composition and
application stay linear in the atom size.  The OLDT engine additionally
needs *variant* testing (equality up to variable renaming), which is what
keys its call table.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional

from .atoms import Atom, Literal
from .terms import Constant, Term, Variable

__all__ = [
    "Substitution",
    "EMPTY_SUBSTITUTION",
    "unify_terms",
    "unify_atoms",
    "match_atom",
    "subsumes",
    "variant_key",
    "are_variants",
]


class Substitution(Mapping[Variable, Term]):
    """An immutable variable binding.

    Bindings are kept *resolved*: no bound variable ever maps to another
    variable that is itself bound.  ``bind`` and ``compose`` maintain this
    invariant, which makes ``resolve`` a single dictionary hop.
    """

    __slots__ = ("_binding",)

    def __init__(self, binding: Mapping[Variable, Term] | None = None):
        self._binding: dict[Variable, Term] = dict(binding) if binding else {}

    # --- Mapping interface -------------------------------------------------
    def __getitem__(self, var: Variable) -> Term:
        return self._binding[var]

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._binding)

    def __len__(self) -> int:
        return len(self._binding)

    def __repr__(self) -> str:
        inner = ", ".join(f"{var}={term}" for var, term in sorted(
            self._binding.items(), key=lambda item: item[0].name))
        return f"{{{inner}}}"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Substitution):
            return self._binding == other._binding
        if isinstance(other, Mapping):
            return self._binding == dict(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._binding.items()))

    # --- operations --------------------------------------------------------
    def resolve(self, term: Term) -> Term:
        """Apply the binding to a single term."""
        if isinstance(term, Variable):
            return self._binding.get(term, term)
        return term

    def apply_atom(self, atom: Atom) -> Atom:
        return atom.substitute(self._binding)

    def apply_literal(self, literal: Literal) -> Literal:
        return literal.substitute(self._binding)

    def bind(self, var: Variable, term: Term) -> "Substitution":
        """Extend with ``var -> term``; term is resolved first.

        The existing bindings that mention *var* are rewritten so the
        resolved-form invariant is preserved.
        """
        term = self.resolve(term)
        if term == var:
            return self
        updated = {
            key: (term if value == var else value)
            for key, value in self._binding.items()
        }
        updated[var] = term
        return Substitution(updated)

    def compose(self, later: "Substitution") -> "Substitution":
        """The substitution equivalent to applying self, then *later*."""
        combined: dict[Variable, Term] = {}
        for var, term in self._binding.items():
            combined[var] = later.resolve(term)
        for var, term in later.items():
            combined.setdefault(var, term)
        return Substitution(combined)

    def restrict(self, variables: Iterable[Variable]) -> "Substitution":
        """Project the binding onto *variables*."""
        keep = set(variables)
        return Substitution({v: t for v, t in self._binding.items() if v in keep})

    def is_ground_for(self, atom: Atom) -> bool:
        """True iff applying self grounds every variable of *atom*."""
        return all(
            isinstance(self.resolve(arg), Constant)
            for arg in atom.args
        )


EMPTY_SUBSTITUTION = Substitution()


def unify_terms(
    left: Term, right: Term, subst: Substitution = EMPTY_SUBSTITUTION
) -> Optional[Substitution]:
    """Unify two terms under an existing substitution.

    Returns the extended substitution, or ``None`` on clash.
    """
    left = subst.resolve(left)
    right = subst.resolve(right)
    if left == right:
        return subst
    if isinstance(left, Variable):
        return subst.bind(left, right)
    if isinstance(right, Variable):
        return subst.bind(right, left)
    return None  # two distinct constants


def unify_atoms(
    left: Atom, right: Atom, subst: Substitution = EMPTY_SUBSTITUTION
) -> Optional[Substitution]:
    """Most general unifier of two atoms, or ``None``.

    The caller is responsible for renaming apart when the atoms may share
    variables that must be treated as distinct.
    """
    if left.predicate != right.predicate or left.arity != right.arity:
        return None
    current: Optional[Substitution] = subst
    for l_arg, r_arg in zip(left.args, right.args):
        current = unify_terms(l_arg, r_arg, current)
        if current is None:
            return None
    return current


def match_atom(pattern: Atom, ground: Atom) -> Optional[Substitution]:
    """One-way matching: bind *pattern*'s variables so it equals *ground*.

    *ground* must be ground.  Used by the bottom-up matcher, where facts
    never contain variables, so full unification is unnecessary.
    """
    if pattern.predicate != ground.predicate or pattern.arity != ground.arity:
        return None
    binding: dict[Variable, Term] = {}
    for p_arg, g_arg in zip(pattern.args, ground.args):
        if isinstance(p_arg, Variable):
            bound = binding.get(p_arg)
            if bound is None:
                binding[p_arg] = g_arg
            elif bound != g_arg:
                return None
        elif p_arg != g_arg:
            return None
    return Substitution(binding)


def subsumes(general: Atom, special: Atom) -> Optional[Substitution]:
    """One-way subsumption: bind *general*'s variables so it equals *special*.

    *special*'s variables are treated as frozen symbols (they may not be
    bound), so ``p(X, Y)`` subsumes ``p(a, Z)`` but ``p(a, X)`` does not
    subsume ``p(Y, b)``.  Used by subsumption-based tabling: a tabled call
    that subsumes a new call can answer it.
    """
    if general.predicate != special.predicate or general.arity != special.arity:
        return None
    binding: dict[Variable, Term] = {}
    for g_arg, s_arg in zip(general.args, special.args):
        if isinstance(g_arg, Variable):
            bound = binding.get(g_arg)
            if bound is None:
                binding[g_arg] = s_arg
            elif bound != s_arg:
                return None
        elif g_arg != s_arg:
            return None
    return Substitution(binding)


def variant_key(atom: Atom) -> tuple:
    """A canonical key equal for exactly the variants of *atom*.

    Variables are numbered in order of first occurrence, so
    ``p(X, Y, X)`` and ``p(A, B, A)`` share a key while ``p(X, X, Y)``
    does not.  This is the call-table key of the OLDT engine.
    """
    numbering: dict[Variable, int] = {}
    parts: list[object] = [atom.predicate]
    for arg in atom.args:
        if isinstance(arg, Variable):
            index = numbering.setdefault(arg, len(numbering))
            parts.append(("var", index))
        else:
            parts.append(("const", arg.value))
    return tuple(parts)


def are_variants(left: Atom, right: Atom) -> bool:
    """True iff the atoms are equal up to consistent variable renaming."""
    return variant_key(left) == variant_key(right)
