"""Pretty-printing helpers for programs, answers, and statistics.

The ``str`` implementations on terms/atoms/rules already render
re-parseable Datalog; this module adds multi-line program formatting,
answer-set rendering, and alignment helpers shared by the CLI and the
bench reporting layer.
"""

from __future__ import annotations

from typing import Iterable

from .atoms import Atom
from .rules import Program, Rule
from .terms import Variable

__all__ = [
    "format_program",
    "format_rule",
    "format_atom",
    "format_answers",
    "format_bindings",
]


def format_rule(rule: Rule) -> str:
    """Render a rule; long bodies wrap one literal per line."""
    if not rule.body:
        return str(rule)
    single_line = str(rule)
    if len(single_line) <= 79:
        return single_line
    head = str(rule.head)
    indent = " " * 4
    body = (",\n" + indent).join(str(lit) for lit in rule.body)
    return f"{head} :-\n{indent}{body}."


def format_program(program: Program, group_by_head: bool = True) -> str:
    """Render a program, optionally grouping rules by head predicate."""
    if not group_by_head:
        return "\n".join(format_rule(rule) for rule in program)
    sections: list[str] = []
    facts = [str(rule) for rule in program if not rule.body]
    if facts:
        sections.append("\n".join(facts))
    seen: list[str] = []
    for rule in program.proper_rules:
        if rule.head.predicate not in seen:
            seen.append(rule.head.predicate)
    for predicate in seen:
        block = "\n".join(
            format_rule(rule) for rule in program.rules_for(predicate)
        )
        sections.append(block)
    return "\n\n".join(sections)


def format_atom(atom: Atom) -> str:
    return str(atom)


def format_answers(answers: Iterable[Atom], limit: int | None = None) -> str:
    """Render a set of ground answer atoms, sorted for stable output."""
    rendered = sorted(str(atom) for atom in answers)
    total = len(rendered)
    if limit is not None and total > limit:
        shown = rendered[:limit]
        shown.append(f"... ({total - limit} more)")
        rendered = shown
    return "\n".join(rendered) if rendered else "(no answers)"


def format_bindings(
    query: Atom, answers: Iterable[Atom], limit: int | None = None
) -> str:
    """Render answers as variable bindings against the query pattern.

    For a query ``anc(alice, X)`` and answer ``anc(alice, bob)``, yields
    the row ``X = bob``.  Ground queries render as ``true`` / ``false``.
    """
    variable_positions = [
        (index, arg)
        for index, arg in enumerate(query.args)
        if isinstance(arg, Variable)
    ]
    answer_list = list(answers)
    if not variable_positions:
        return "true" if answer_list else "false"
    rows = []
    for atom in answer_list:
        cells = ", ".join(
            f"{var.name} = {atom.args[index]}" for index, var in variable_positions
        )
        rows.append(cells)
    rows.sort()
    total = len(rows)
    if limit is not None and total > limit:
        rows = rows[:limit]
        rows.append(f"... ({total - limit} more)")
    return "\n".join(rows) if rows else "(no answers)"
