"""Constant interning: a bijection between constant values and dense ints.

The columnar storage backend (:mod:`repro.engine.columnar`) does not store
Python objects in its relations — every constant is **dictionary-encoded**
to a dense integer id once, and the engines shuttle tuples of ids from
that point on.  This module owns the encoding: a :class:`ConstantInterner`
maps hashable constant values (strings, ints, whatever a
:class:`~repro.datalog.terms.Constant` wraps) to ids ``0, 1, 2, ...`` in
first-seen order and back.

Design notes:

* **Equality semantics match the tuple backend exactly.**  Ids are
  assigned by a plain ``dict`` keyed on the value, so two constants map to
  the same id precisely when the tuple backend's ``set`` would collapse
  them (``1 == 1.0 == True`` all intern to one id, just as they occupy one
  set slot).  This is what makes the columnar backend bit-identical
  rather than merely equivalent.
* **Ids are dense and stable.**  An id, once assigned, never changes and
  is never reused; ``values[id]`` is the reverse map.  A
  :class:`~repro.engine.columnar.ColumnarDatabase` and every copy of it
  share one interner, so row encodings stay comparable across
  ``Database.copy()`` — the semi-naive engines compare rows from the
  working copy against rows from deltas and oracles freely.
* **Thread-safe on the grow path.**  Reads (``id_of``, ``value_of``) are
  lock-free — the id→value list only ever appends, and dict reads are
  atomic under the GIL.  Writes take a lock with a double-check so two
  ``repro.serve`` worker threads interning the same new constant agree on
  its id.

Observability: when metrics collection is active the interner reports
``intern.constants`` (current table size, as a gauge-style observation)
and ``intern.misses`` (new constants interned).
"""

from __future__ import annotations

import threading
from typing import Hashable, Iterable

from ..obs import get_metrics

__all__ = ["ConstantInterner"]


class ConstantInterner:
    """A grow-only bijection ``value <-> dense int id``.

    The forward map is a dict (value → id), the reverse map a list
    (id → value).  Both only grow; ids are assigned in first-seen order.
    """

    __slots__ = ("_ids", "_values", "_lock")

    def __init__(self) -> None:
        self._ids: dict[Hashable, int] = {}
        self._values: list = []
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        return f"ConstantInterner({len(self._values)} constants)"

    # --- encoding -----------------------------------------------------------
    def intern(self, value: Hashable) -> int:
        """The id of *value*, assigning the next dense id on first sight."""
        ident = self._ids.get(value)
        if ident is not None:
            return ident
        with self._lock:
            # Double-check under the lock: another thread may have interned
            # the same value between our lock-free read and acquisition.
            ident = self._ids.get(value)
            if ident is not None:
                return ident
            ident = len(self._values)
            self._values.append(value)
            self._ids[value] = ident
        obs = get_metrics()
        if obs.enabled:
            obs.incr("intern.misses")
            obs.observe("intern.constants", ident + 1)
        return ident

    def id_of(self, value: Hashable) -> int | None:
        """The id of *value*, or ``None`` when it was never interned.

        Used by read-only probes (planner statistics, membership tests on
        raw values) that must not grow the table: a constant the database
        has never seen simply has no postings.
        """
        return self._ids.get(value)

    def intern_row(self, row: tuple) -> tuple:
        """Encode a tuple of raw values to a tuple of ids."""
        intern = self.intern
        return tuple(intern(value) for value in row)

    def intern_rows(self, rows: Iterable[tuple]) -> Iterable[tuple]:
        intern = self.intern
        for row in rows:
            yield tuple(intern(value) for value in row)

    # --- serialization ------------------------------------------------------
    def table(self) -> tuple:
        """The value table in id order, as an immutable snapshot.

        ``table()[i]`` is the value behind id ``i``.  The snapshot layer
        (:mod:`repro.core.snapshot`) serializes this verbatim: restoring
        it through :meth:`from_table` reproduces identical id
        assignments, which is what keeps kernels compiled against the
        restored interner bit-identical to the originals.
        """
        with self._lock:
            return tuple(self._values)

    @classmethod
    def from_table(cls, values) -> "ConstantInterner":
        """An interner whose ids are exactly ``values``' positions.

        Raises:
            ValueError: when two entries collapse to one dict key (the
                table then cannot have come from a real interner, whose
                forward map would never have assigned them separate
                ids).
        """
        interner = cls()
        ids = interner._ids
        table = interner._values
        for index, value in enumerate(values):
            if value in ids:
                raise ValueError(
                    f"interner table entries {ids[value]} and {index} "
                    f"are equal ({value!r}); table is not a bijection"
                )
            ids[value] = index
            table.append(value)
        return interner

    # --- decoding -----------------------------------------------------------
    def value_of(self, ident: int):
        """The value behind *ident* (raises ``IndexError`` on unknown ids)."""
        return self._values[ident]

    def extern_row(self, row: tuple) -> tuple:
        """Decode a tuple of ids back to the raw values."""
        values = self._values
        return tuple(values[ident] for ident in row)

    def extern_rows(self, rows: Iterable[tuple]) -> Iterable[tuple]:
        values = self._values
        for row in rows:
            yield tuple(values[ident] for ident in row)
