"""Terms of the (function-free) Datalog language.

A *term* is either a :class:`Variable` or a :class:`Constant`.  The
reproduced paper works in pure Datalog, so compound terms are deliberately
not modelled; everything downstream (unification, the OLDT engine, the
Alexander transformation) relies on the function-free assumption for its
termination guarantees.

Constants wrap an arbitrary hashable Python value (``str`` and ``int`` in
practice), so workload generators can use integers for graph nodes without
string conversion.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Union

__all__ = [
    "Variable",
    "Constant",
    "Term",
    "fresh_variable",
    "reset_fresh_counter",
    "is_ground_term",
]


@dataclass(frozen=True, slots=True)
class Variable:
    """A logic variable, identified by its name.

    Two ``Variable`` objects with the same name are the same variable.
    By Prolog convention, parsed variable names start with an uppercase
    letter or an underscore; programmatically created variables may use
    any name (renaming-apart uses a ``_g<N>`` scheme).
    """

    name: str

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Constant:
    """A constant term wrapping a hashable Python value."""

    value: object

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"

    def __str__(self) -> str:
        return _format_constant_value(self.value)


Term = Union[Variable, Constant]

# Module-level counter backing fresh_variable(); reset_fresh_counter() exists
# so property-based tests can make renaming deterministic.
_fresh_counter = itertools.count()


def fresh_variable(prefix: str = "_g") -> Variable:
    """Return a variable guaranteed not to collide with parsed variables.

    Parsed variable names never contain ``#``, so embedding it makes the
    generated names collision-free by construction.
    """
    return Variable(f"{prefix}#{next(_fresh_counter)}")


def reset_fresh_counter() -> None:
    """Reset the fresh-variable counter (test determinism only)."""
    global _fresh_counter
    _fresh_counter = itertools.count()


def is_ground_term(term: Term) -> bool:
    """True iff *term* is a constant."""
    return isinstance(term, Constant)


def _format_constant_value(value: object) -> str:
    """Render a constant value in re-parseable Datalog syntax.

    Lowercase identifiers and integers print bare; anything else is quoted.
    """
    if isinstance(value, bool):
        return f'"{value}"'
    if isinstance(value, int):
        return str(value)
    if isinstance(value, str) and _is_plain_identifier(value):
        return value
    escaped = str(value).replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def _is_plain_identifier(text: str) -> bool:
    if not text or not (text[0].islower() and text[0].isalpha()):
        return False
    return all(ch.isalnum() or ch == "_" for ch in text)
