"""Built-in comparison predicates.

Datalog programs may use a small set of *test* predicates that are
evaluated computationally instead of being looked up in a relation:

=========  =======  =========================================
predicate  infix    holds when
=========  =======  =========================================
``eq``     ``=``    the two values are equal
``neq``    ``!=``   the two values differ
``lt``     ``<``    left < right (same-type, orderable)
``leq``    ``<=``   left <= right
``gt``     ``>``    left > right
``geq``    ``>=``   left >= right
=========  =======  =========================================

Built-ins never *bind* variables: every argument must be bound by a
positive ordinary literal before the test runs (the safety checker
enforces this, and the body-ordering machinery delays tests until their
variables are bound, exactly as it does for negative literals).

Ordering comparisons between values of different types (``lt(1, "a")``)
raise :class:`~repro.errors.EvaluationError` rather than inheriting
Python 2-style cross-type ordering silently.
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..errors import EvaluationError

__all__ = [
    "BUILTIN_PREDICATES",
    "INFIX_OPERATORS",
    "is_builtin",
    "evaluate_builtin",
]


def _comparable(left: object, right: object, operator: str) -> None:
    left_numeric = isinstance(left, int)  # bool is an int subtype
    right_numeric = isinstance(right, int)
    if left_numeric and right_numeric:
        return
    if not left_numeric and not right_numeric and type(left) is type(right):
        return
    raise EvaluationError(
        f"cannot order {left!r} {operator} {right!r}: incompatible types"
    )


def _lt(left: object, right: object) -> bool:
    _comparable(left, right, "<")
    return left < right  # type: ignore[operator]


def _leq(left: object, right: object) -> bool:
    _comparable(left, right, "<=")
    return left <= right  # type: ignore[operator]


def _gt(left: object, right: object) -> bool:
    _comparable(left, right, ">")
    return left > right  # type: ignore[operator]


def _geq(left: object, right: object) -> bool:
    _comparable(left, right, ">=")
    return left >= right  # type: ignore[operator]


BUILTIN_PREDICATES: Mapping[str, Callable[[object, object], bool]] = {
    "eq": lambda left, right: left == right,
    "neq": lambda left, right: left != right,
    "lt": _lt,
    "leq": _leq,
    "gt": _gt,
    "geq": _geq,
}

# Infix surface syntax -> builtin predicate name (used by the parser).
INFIX_OPERATORS: Mapping[str, str] = {
    "=": "eq",
    "!=": "neq",
    "<": "lt",
    "<=": "leq",
    ">": "gt",
    ">=": "geq",
}


def is_builtin(predicate: str) -> bool:
    """True iff *predicate* is a built-in test."""
    return predicate in BUILTIN_PREDICATES


def evaluate_builtin(predicate: str, values: tuple) -> bool:
    """Evaluate a built-in on fully bound argument values.

    Raises:
        EvaluationError: unknown builtin, wrong arity, or incomparable
            operands for an ordering test.
    """
    try:
        function = BUILTIN_PREDICATES[predicate]
    except KeyError:
        raise EvaluationError(f"unknown builtin {predicate}") from None
    if len(values) != 2:
        raise EvaluationError(
            f"builtin {predicate} expects 2 arguments, got {len(values)}"
        )
    return function(values[0], values[1])
