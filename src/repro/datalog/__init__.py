"""The Datalog language kernel: terms, atoms, rules, parsing, unification."""

from .atoms import Atom, Literal
from .builder import const, pred, variables
from .builtins import evaluate_builtin, is_builtin
from .parser import parse_atom, parse_program, parse_query, parse_rule
from .rules import Program, Rule
from .terms import Constant, Term, Variable, fresh_variable
from .unify import (
    EMPTY_SUBSTITUTION,
    Substitution,
    are_variants,
    match_atom,
    unify_atoms,
    unify_terms,
    variant_key,
)

__all__ = [
    "Atom",
    "Literal",
    "Program",
    "Rule",
    "Constant",
    "Term",
    "Variable",
    "fresh_variable",
    "Substitution",
    "EMPTY_SUBSTITUTION",
    "unify_terms",
    "unify_atoms",
    "match_atom",
    "variant_key",
    "are_variants",
    "parse_program",
    "parse_rule",
    "parse_atom",
    "parse_query",
    "pred",
    "variables",
    "const",
    "is_builtin",
    "evaluate_builtin",
]
