"""Rules and programs.

A :class:`Rule` is a head atom plus a body of literals; a body-less rule is
a fact when ground.  A :class:`Program` is an ordered collection of rules
with convenience accessors used throughout the analysis and transformation
layers.  Ground facts may live either inside the program (as body-less
rules) or in a separate :class:`repro.facts.database.Database`; the engines
accept both.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Iterator, Mapping

from ..errors import ProgramError
from .atoms import Atom, Literal
from .terms import Constant, Term, Variable

__all__ = ["Rule", "Program"]


@dataclass(frozen=True)
class Rule:
    """A Datalog rule ``head :- body``.

    ``body`` may be empty, in which case the rule asserts its head (a fact
    when the head is ground).
    """

    head: Atom
    body: tuple[Literal, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.body, tuple):
            object.__setattr__(self, "body", tuple(self.body))

    @property
    def is_fact(self) -> bool:
        return not self.body and self.head.is_ground()

    def positive_body(self) -> tuple[Literal, ...]:
        return tuple(lit for lit in self.body if lit.positive)

    def negative_body(self) -> tuple[Literal, ...]:
        return tuple(lit for lit in self.body if lit.negative)

    def variables(self) -> frozenset[Variable]:
        found = set(self.head.variables())
        for literal in self.body:
            found.update(literal.variables())
        return frozenset(found)

    def substitute(self, binding: Mapping[Variable, Term]) -> "Rule":
        return Rule(
            self.head.substitute(binding),
            tuple(lit.substitute(binding) for lit in self.body),
        )

    def rename_apart(self, taken: frozenset[Variable] | None = None) -> "Rule":
        """Return a variant of this rule with fresh variables.

        Args:
            taken: optional variable set to avoid; when omitted, globally
                fresh names are used (sufficient for resolution).
        """
        from .terms import fresh_variable

        mapping: dict[Variable, Term] = {}
        for var in sorted(self.variables(), key=lambda v: v.name):
            mapping[var] = fresh_variable(var.name.split("#", 1)[0] or "_g")
        return self.substitute(mapping)

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        rendered = ", ".join(str(lit) for lit in self.body)
        return f"{self.head} :- {rendered}."


class Program:
    """An immutable, ordered collection of rules.

    The class exposes the derived views every consumer needs: the set of
    intensional (IDB) predicates, the extensional (EDB) predicates, rules
    grouped by head predicate, and the ground facts embedded in the rule
    list.
    """

    __slots__ = ("_rules", "__dict__")

    def __init__(self, rules: Iterable[Rule]):
        self._rules = tuple(rules)
        for rule in self._rules:
            if not isinstance(rule, Rule):
                raise ProgramError(f"not a rule: {rule!r}")
            if not rule.body and not rule.head.is_ground():
                raise ProgramError(
                    f"body-less rule with non-ground head is unsafe: {rule}"
                )

    @property
    def rules(self) -> tuple[Rule, ...]:
        return self._rules

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Program) and self._rules == other._rules

    def __hash__(self) -> int:
        return hash(self._rules)

    @cached_property
    def proper_rules(self) -> tuple[Rule, ...]:
        """Rules with a non-empty body."""
        return tuple(rule for rule in self._rules if rule.body)

    @cached_property
    def facts(self) -> tuple[Atom, ...]:
        """Ground atoms asserted by body-less rules, in program order."""
        return tuple(rule.head for rule in self._rules if not rule.body)

    @cached_property
    def idb_predicates(self) -> frozenset[str]:
        """Predicates defined by at least one proper rule."""
        return frozenset(rule.head.predicate for rule in self.proper_rules)

    @cached_property
    def predicates(self) -> frozenset[str]:
        """All predicates mentioned anywhere in the program."""
        names = set()
        for rule in self._rules:
            names.add(rule.head.predicate)
            for literal in rule.body:
                names.add(literal.predicate)
        return frozenset(names)

    @cached_property
    def edb_predicates(self) -> frozenset[str]:
        """Predicates that occur only in bodies or as embedded facts."""
        return self.predicates - self.idb_predicates

    @cached_property
    def rules_by_head(self) -> Mapping[str, tuple[Rule, ...]]:
        grouped: dict[str, list[Rule]] = {}
        for rule in self.proper_rules:
            grouped.setdefault(rule.head.predicate, []).append(rule)
        return {pred: tuple(rules) for pred, rules in grouped.items()}

    def rules_for(self, predicate: str) -> tuple[Rule, ...]:
        """Proper rules whose head predicate is *predicate*."""
        return self.rules_by_head.get(predicate, ())

    @cached_property
    def arities(self) -> Mapping[str, int]:
        """Arity of every predicate; raises on inconsistent use."""
        seen: dict[str, int] = {}
        for rule in self._rules:
            for atom in (rule.head, *(lit.atom for lit in rule.body)):
                prior = seen.setdefault(atom.predicate, atom.arity)
                if prior != atom.arity:
                    raise ProgramError(
                        f"predicate {atom.predicate} used with arities "
                        f"{prior} and {atom.arity}"
                    )
        return seen

    def constants(self) -> frozenset[object]:
        """The active domain: every constant value occurring in the program."""
        values = set()
        for rule in self._rules:
            for atom in (rule.head, *(lit.atom for lit in rule.body)):
                for arg in atom.args:
                    if isinstance(arg, Constant):
                        values.add(arg.value)
        return frozenset(values)

    def with_rules(self, extra: Iterable[Rule]) -> "Program":
        """A new program extending this one with *extra* rules."""
        return Program(self._rules + tuple(extra))

    def without_facts(self) -> "Program":
        """A new program containing only the proper rules."""
        return Program(self.proper_rules)

    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self._rules)

    def __repr__(self) -> str:
        return f"Program({len(self._rules)} rules)"
