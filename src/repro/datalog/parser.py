"""A recursive-descent parser for textual Datalog.

Grammar (facts are body-less rules; ``%`` and ``#`` start line comments)::

    program   ::= statement*
    statement ::= atom "."                      (fact)
                | atom ":-" body "."            (rule)
    body      ::= literal ("," literal)*
    literal   ::= ("not" | "\\+") atom | atom
    atom      ::= IDENT ( "(" term ("," term)* ")" )?
    term      ::= VARIABLE | IDENT | INTEGER | STRING
    query     ::= atom "?"?                     (via parse_query)

Variables start with an uppercase letter or ``_``; identifiers starting
with a lowercase letter are constants or predicate names; integers and
double-quoted strings are constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..errors import ParseError
from .atoms import Atom, Literal
from .builtins import INFIX_OPERATORS
from .rules import Program, Rule
from .terms import Constant, Term, Variable

__all__ = ["parse_program", "parse_rule", "parse_atom", "parse_query", "tokenize"]

_PUNCTUATION = {
    ":-": "IMPLIES",
    "(": "LPAREN",
    ")": "RPAREN",
    ",": "COMMA",
    ".": "DOT",
    "?": "QUESTION",
    "\\+": "NOT",
}


@dataclass(frozen=True, slots=True)
class _Token:
    kind: str  # IDENT, VARIABLE, INTEGER, STRING, or a punctuation kind
    text: str
    line: int
    column: int


def tokenize(text: str) -> Iterator[_Token]:
    """Yield tokens with 1-based line/column positions."""
    line, column = 1, 1
    index, length = 0, len(text)
    while index < length:
        char = text[index]
        if char == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if char.isspace():
            index += 1
            column += 1
            continue
        if char in "%#":
            while index < length and text[index] != "\n":
                index += 1
            continue
        if text.startswith(":-", index):
            yield _Token("IMPLIES", ":-", line, column)
            index += 2
            column += 2
            continue
        if text.startswith("\\+", index):
            yield _Token("NOT", "\\+", line, column)
            index += 2
            column += 2
            continue
        if text[index : index + 2] in ("<=", ">=", "!="):
            yield _Token("OP", text[index : index + 2], line, column)
            index += 2
            column += 2
            continue
        if char in "<>=":
            yield _Token("OP", char, line, column)
            index += 1
            column += 1
            continue
        if char in "(),.?":
            yield _Token(_PUNCTUATION[char], char, line, column)
            index += 1
            column += 1
            continue
        if char == '"':
            start_line, start_column = line, column
            index += 1
            column += 1
            chunks: list[str] = []
            while index < length and text[index] != '"':
                if text[index] == "\\" and index + 1 < length:
                    chunks.append(text[index + 1])
                    index += 2
                    column += 2
                    continue
                if text[index] == "\n":
                    raise ParseError("unterminated string", start_line, start_column)
                chunks.append(text[index])
                index += 1
                column += 1
            if index >= length:
                raise ParseError("unterminated string", start_line, start_column)
            index += 1  # closing quote
            column += 1
            yield _Token("STRING", "".join(chunks), start_line, start_column)
            continue
        if char.isdigit() or (char == "-" and index + 1 < length and text[index + 1].isdigit()):
            start = index
            start_column = column
            index += 1
            column += 1
            while index < length and text[index].isdigit():
                index += 1
                column += 1
            yield _Token("INTEGER", text[start:index], line, start_column)
            continue
        if char.isalpha() or char == "_":
            start = index
            start_column = column
            while index < length and (text[index].isalnum() or text[index] == "_"):
                index += 1
                column += 1
            word = text[start:index]
            if word == "not":
                yield _Token("NOT", word, line, start_column)
            elif word[0].isupper() or word[0] == "_":
                yield _Token("VARIABLE", word, line, start_column)
            else:
                yield _Token("IDENT", word, line, start_column)
            continue
        raise ParseError(f"unexpected character {char!r}", line, column)


class _Parser:
    """Token-stream cursor with the usual expect/accept helpers."""

    def __init__(self, text: str):
        self._tokens = list(tokenize(text))
        self._position = 0
        self._anon_counter = 0

    def _peek(self) -> _Token | None:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _advance(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self._position += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError(f"expected {kind}, found end of input")
        if token.kind != kind:
            raise ParseError(
                f"expected {kind}, found {token.text!r}", token.line, token.column
            )
        return self._advance()

    def _accept(self, kind: str) -> _Token | None:
        token = self._peek()
        if token is not None and token.kind == kind:
            return self._advance()
        return None

    @property
    def exhausted(self) -> bool:
        return self._position >= len(self._tokens)

    # --- grammar productions ------------------------------------------------
    def parse_term(self) -> Term:
        token = self._advance()
        if token.kind == "VARIABLE":
            if token.text == "_":
                # Each anonymous variable is distinct, as in Prolog.
                self._anon_counter += 1
                return Variable(f"_anon#{self._anon_counter}")
            return Variable(token.text)
        if token.kind == "IDENT":
            return Constant(token.text)
        if token.kind == "INTEGER":
            return Constant(int(token.text))
        if token.kind == "STRING":
            return Constant(token.text)
        raise ParseError(f"expected a term, found {token.text!r}", token.line, token.column)

    def parse_atom(self) -> Atom:
        token = self._expect("IDENT")
        predicate = token.text
        args: list[Term] = []
        if self._accept("LPAREN"):
            args.append(self.parse_term())
            while self._accept("COMMA"):
                args.append(self.parse_term())
            self._expect("RPAREN")
        return Atom(predicate, tuple(args))

    def _peek_second(self) -> _Token | None:
        if self._position + 1 < len(self._tokens):
            return self._tokens[self._position + 1]
        return None

    def _at_comparison(self) -> bool:
        """True when the cursor starts an infix comparison (``X < Y``)."""
        first = self._peek()
        if first is None:
            return False
        if first.kind in ("VARIABLE", "INTEGER", "STRING"):
            return True
        if first.kind == "IDENT":
            second = self._peek_second()
            return second is not None and second.kind == "OP"
        return False

    def parse_comparison(self) -> Atom:
        left = self.parse_term()
        operator = self._expect("OP")
        right = self.parse_term()
        return Atom(INFIX_OPERATORS[operator.text], (left, right))

    def parse_literal(self) -> Literal:
        positive = not self._accept("NOT")
        if self._at_comparison():
            return Literal(self.parse_comparison(), positive=positive)
        return Literal(self.parse_atom(), positive=positive)

    def parse_rule(self) -> Rule:
        head = self.parse_atom()
        body: list[Literal] = []
        if self._accept("IMPLIES"):
            body.append(self.parse_literal())
            while self._accept("COMMA"):
                body.append(self.parse_literal())
        self._expect("DOT")
        return Rule(head, tuple(body))

    def parse_program(self) -> Program:
        rules: list[Rule] = []
        while not self.exhausted:
            rules.append(self.parse_rule())
        return Program(rules)


def parse_program(text: str) -> Program:
    """Parse Datalog source text into a :class:`Program`."""
    return _Parser(text).parse_program()


def parse_rule(text: str) -> Rule:
    """Parse a single rule (or fact), which must consume the whole input."""
    parser = _Parser(text)
    rule = parser.parse_rule()
    if not parser.exhausted:
        token = parser._peek()
        raise ParseError(
            f"trailing input after rule: {token.text!r}", token.line, token.column
        )
    return rule


def parse_atom(text: str) -> Atom:
    """Parse a single atom, which must consume the whole input."""
    parser = _Parser(text)
    atom = parser.parse_atom()
    if not parser.exhausted:
        token = parser._peek()
        raise ParseError(
            f"trailing input after atom: {token.text!r}", token.line, token.column
        )
    return atom


def parse_query(text: str) -> Atom:
    """Parse a query: an atom with an optional trailing ``?`` or ``.``."""
    parser = _Parser(text)
    atom = parser.parse_atom()
    if not parser.exhausted and parser._accept("QUESTION") is None:
        parser._accept("DOT")
    if not parser.exhausted:
        token = parser._peek()
        raise ParseError(
            f"trailing input after query: {token.text!r}", token.line, token.column
        )
    return atom
