"""Atoms and literals.

An :class:`Atom` is a predicate symbol applied to a tuple of terms.  A
:class:`Literal` is an atom with a polarity; rule bodies are sequences of
literals, rule heads are (positive) atoms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from .terms import Constant, Term, Variable

__all__ = ["Atom", "Literal"]


@dataclass(frozen=True, slots=True)
class Atom:
    """A predicate applied to terms, e.g. ``ancestor(X, bob)``."""

    predicate: str
    args: tuple[Term, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.args, tuple):
            # Accept any iterable for convenience; normalise to a tuple so
            # the dataclass stays hashable.
            object.__setattr__(self, "args", tuple(self.args))

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def signature(self) -> tuple[str, int]:
        """The ``(predicate, arity)`` pair identifying the relation."""
        return (self.predicate, len(self.args))

    def variables(self) -> Iterator[Variable]:
        """Yield the variables of the atom, left to right, with repeats."""
        for arg in self.args:
            if isinstance(arg, Variable):
                yield arg

    def variable_set(self) -> frozenset[Variable]:
        return frozenset(self.variables())

    def is_ground(self) -> bool:
        return all(isinstance(arg, Constant) for arg in self.args)

    def substitute(self, binding: Mapping[Variable, Term]) -> "Atom":
        """Apply a variable binding, returning a new atom.

        Unbound variables are left in place, which is what both resolution
        engines and the bottom-up matcher need.
        """
        if not binding:
            return self
        new_args = tuple(
            binding.get(arg, arg) if isinstance(arg, Variable) else arg for arg in self.args
        )
        if new_args == self.args:
            return self
        return Atom(self.predicate, new_args)

    def with_predicate(self, predicate: str) -> "Atom":
        """Return a copy of this atom under a different predicate name."""
        return Atom(predicate, self.args)

    def ground_key(self) -> tuple[object, ...]:
        """The tuple of constant values, for storing in a relation.

        Raises:
            ValueError: if the atom is not ground.
        """
        values = []
        for arg in self.args:
            if not isinstance(arg, Constant):
                raise ValueError(f"atom {self} is not ground")
            values.append(arg.value)
        return tuple(values)

    def __str__(self) -> str:
        if not self.args:
            return self.predicate
        rendered = ", ".join(str(arg) for arg in self.args)
        return f"{self.predicate}({rendered})"


@dataclass(frozen=True, slots=True)
class Literal:
    """An atom with a polarity.  ``Literal(a, positive=False)`` is ``not a``."""

    atom: Atom
    positive: bool = True

    @property
    def predicate(self) -> str:
        return self.atom.predicate

    @property
    def args(self) -> tuple[Term, ...]:
        return self.atom.args

    @property
    def negative(self) -> bool:
        return not self.positive

    def variables(self) -> Iterator[Variable]:
        return self.atom.variables()

    def variable_set(self) -> frozenset[Variable]:
        return self.atom.variable_set()

    def substitute(self, binding: Mapping[Variable, Term]) -> "Literal":
        new_atom = self.atom.substitute(binding)
        if new_atom is self.atom:
            return self
        return Literal(new_atom, self.positive)

    def negated(self) -> "Literal":
        return Literal(self.atom, not self.positive)

    def __str__(self) -> str:
        return str(self.atom) if self.positive else f"not {self.atom}"
