"""A small programmatic DSL for building rules without string parsing.

Example::

    from repro.datalog.builder import pred, variables

    anc, par = pred("anc"), pred("par")
    X, Y, Z = variables("X Y Z")
    rules = [
        anc(X, Y) <= par(X, Y),
        anc(X, Y) <= (par(X, Z), anc(Z, Y)),
    ]

``<=`` builds a :class:`Rule`; ``~literal`` negates; bodies are a single
literal/atom or a tuple of them.  Plain Python values in argument position
become constants.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .atoms import Atom, Literal
from .rules import Rule
from .terms import Constant, Term, Variable

__all__ = ["pred", "variables", "const", "HeadAtom", "PredicateSymbol"]


def _to_term(value: object) -> Term:
    if isinstance(value, (Variable, Constant)):
        return value
    return Constant(value)


class BodyLiteral:
    """A literal usable on the right of ``<=`` and negatable with ``~``."""

    __slots__ = ("literal",)

    def __init__(self, literal: Literal):
        self.literal = literal

    def __invert__(self) -> "BodyLiteral":
        return BodyLiteral(self.literal.negated())

    def __str__(self) -> str:
        return str(self.literal)


class HeadAtom:
    """An atom usable as a rule head (left of ``<=``) or as a body literal."""

    __slots__ = ("atom",)

    def __init__(self, atom: Atom):
        self.atom = atom

    def __le__(self, body: object) -> Rule:
        return Rule(self.atom, _coerce_body(body))

    def __invert__(self) -> BodyLiteral:
        return BodyLiteral(Literal(self.atom, positive=False))

    def fact(self) -> Rule:
        """This atom asserted as a fact (it must be ground)."""
        return Rule(self.atom, ())

    def __str__(self) -> str:
        return str(self.atom)


def _coerce_body(body: object) -> tuple[Literal, ...]:
    if isinstance(body, (HeadAtom, BodyLiteral, Atom, Literal)):
        body = (body,)
    if not isinstance(body, Sequence):
        raise TypeError(f"cannot use {body!r} as a rule body")
    literals: list[Literal] = []
    for item in body:
        if isinstance(item, HeadAtom):
            literals.append(Literal(item.atom))
        elif isinstance(item, BodyLiteral):
            literals.append(item.literal)
        elif isinstance(item, Atom):
            literals.append(Literal(item))
        elif isinstance(item, Literal):
            literals.append(item)
        else:
            raise TypeError(f"cannot use {item!r} as a body literal")
    return tuple(literals)


class PredicateSymbol:
    """A callable predicate name: ``pred('p')(X, 'a')`` makes an atom."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __call__(self, *args: object) -> HeadAtom:
        return HeadAtom(Atom(self.name, tuple(_to_term(arg) for arg in args)))

    def __str__(self) -> str:
        return self.name


def pred(name: str) -> PredicateSymbol:
    """Create a predicate symbol."""
    return PredicateSymbol(name)


def variables(names: str | Iterable[str]) -> tuple[Variable, ...]:
    """Create variables from a space-separated string or an iterable."""
    if isinstance(names, str):
        names = names.split()
    return tuple(Variable(name) for name in names)


def const(value: object) -> Constant:
    """Create a constant term explicitly (plain values auto-convert)."""
    return Constant(value)
