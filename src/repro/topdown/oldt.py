"""OLDT resolution: top-down evaluation with tabulation (Tamaki & Sato 1986).

This engine is the comparator of Seki's theorems: the Alexander-transformed
program, evaluated bottom-up, must generate exactly the *calls* (tabled
subgoals) and *answers* (table entries) that OLDT generates, with inference
counts of the same order.

Implementation: a worklist ("SLG-lite") rendering of OLDT's search forest.

* Each distinct call pattern — up to variable renaming (*variant-based*
  tabling, as in the original OLDT) — owns a :class:`_Table` with its
  answer list and its registered consumers.
* A :class:`_Process` is a partially resolved clause: the instantiated
  answer template plus the remaining body literals.  Substitutions are
  applied eagerly, so no environment threading is needed.
* Selecting a **tabled** literal (one defined by program rules) registers
  the process as a consumer of the subgoal's table and replays existing
  answers; selecting an **extensional** literal resolves inline against
  the database (OLDT's treatment of base relations, mirrored by the
  Alexander transformation, which leaves EDB literals untransformed).
* Negative literals must be ground when selected and are decided by a
  *nested, completed* OLDT evaluation — sound for stratified programs,
  where the nested subquery cannot depend on any in-flight table.

Counter semantics (matching DESIGN.md):

* ``inferences``  — successful program-clause resolutions, EDB fact
  resolutions, and answer-clause resolutions (answer replay).
* ``calls``       — tables created (distinct call patterns).
* ``facts_derived`` — distinct answers added across all tables.
* ``answers``     — answers of the query's own table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..datalog.atoms import Atom, Literal
from ..datalog.builtins import evaluate_builtin, is_builtin
from ..datalog.rules import Program
from ..datalog.terms import Constant
from ..datalog.unify import subsumes, unify_atoms, variant_key
from ..engine.budget import Checkpoint, EvaluationBudget, ensure_checkpoint
from ..engine.counters import EvaluationStats
from ..errors import EvaluationError
from ..facts.database import Database
from ..obs import get_metrics

__all__ = ["OLDTEngine", "oldt_query"]

DEFAULT_MAX_STEPS = 10_000_000


@dataclass
class _Table:
    """The solution table of one call pattern."""

    call: Atom                      # canonical call atom (as first encountered)
    key: tuple                      # variant key of `call`
    answers: list[Atom] = field(default_factory=list)
    answer_keys: set[tuple] = field(default_factory=set)
    consumers: list["_Process"] = field(default_factory=list)

    def add_answer(self, answer: Atom) -> bool:
        key = variant_key(answer)
        if key in self.answer_keys:
            return False
        self.answer_keys.add(key)
        self.answers.append(answer)
        return True


@dataclass
class _Process:
    """A partially resolved clause contributing answers to *table*.

    ``template`` is the (instantiated) head of the table's call: when
    ``goals`` is exhausted the template is the answer.  When the process is
    suspended as a consumer, ``replayed`` records how many of the table's
    answers it has already consumed.
    """

    table: _Table
    template: Atom
    goals: tuple[Literal, ...]
    watch: "_Table | None" = None
    replayed: int = 0


class OLDTEngine:
    """A variant-based OLDT engine over a program and a database."""

    def __init__(
        self,
        program: Program,
        database: Database | None = None,
        max_steps: int = DEFAULT_MAX_STEPS,
        tabling: str = "variant",
        planner: "object | None" = None,
        budget: "EvaluationBudget | Checkpoint | None" = None,
    ):
        """Args:
            tabling: ``"variant"`` (Tamaki–Sato's original: one table per
                call pattern up to renaming — the mode Seki's
                correspondence is exact for) or ``"subsumption"`` (a new
                call is answered by any existing table whose call pattern
                subsumes it, creating fewer tables at the cost of
                filtering more general answers).
            planner: optional join-planner spec (e.g. ``"greedy"`` or a
                :class:`repro.engine.planner.JoinPlanner`).  Clause bodies
                are ordered by
                :meth:`~repro.engine.planner.JoinPlanner.order_clause_goals`,
                which only permutes runs of consecutive extensional
                literals — tabled calls and tests are boundaries, so the
                generated call patterns and answers are unchanged.
            budget: optional :class:`repro.engine.budget.EvaluationBudget`
                (or a running checkpoint, shared with nested negation
                evaluations).  ``max_iterations`` bounds scheduler steps,
                ``max_facts`` table answers; a trip's partial database
                holds every (ground) answer tabled so far — all genuinely
                derivable, so the prefix is sound.
        """
        if tabling not in ("variant", "subsumption"):
            raise ValueError(
                f"tabling must be 'variant' or 'subsumption', got {tabling!r}"
            )
        self._program = program
        self._database = database.copy() if database is not None else Database()
        self._database.add_atoms(program.facts)
        self._max_steps = max_steps
        self._tabling = tabling
        from ..engine.planner import resolve_planner

        self._planner = resolve_planner(planner, self._database, program)
        self._tables: dict[tuple, _Table] = {}
        self._worklist: list[_Process] = []
        # Ground negation-as-failure results (stratified => stable).
        self._negation_cache: dict[tuple, bool] = {}
        self.stats = EvaluationStats()
        self._budget = budget
        self._checkpoint: Checkpoint | None = None

    # --- public API -----------------------------------------------------------
    def query(self, goal: Atom) -> list[Atom]:
        """All answers to *goal* (instances of the goal atom)."""
        if self._checkpoint is None:
            self._checkpoint = ensure_checkpoint(self._budget, self.stats)
            # A nested negation evaluation shares its parent's checkpoint;
            # only the outermost engine (which created it) points the
            # partial result at its own tables.
            if self._checkpoint is not None and not isinstance(
                self._budget, Checkpoint
            ):
                self._checkpoint.bind(self._partial_database)
        obs = get_metrics()
        with obs.timer("oldt"):
            table = self._get_or_create_table(goal)
            self._run()
        if obs.enabled:
            obs.observe("oldt.tables", len(self._tables))
            obs.observe(
                "oldt.table_answers",
                sum(len(t.answers) for t in self._tables.values()),
            )
            obs.observe("oldt.scheduler_steps", self.stats.iterations)
        if table.key == variant_key(goal):
            answers = list(table.answers)
        else:
            # Subsumption mode handed us a more general table: keep only
            # the answers that are instances of the goal.
            answers = []
            seen: set[tuple] = set()
            for answer in table.answers:
                unifier = unify_atoms(goal, answer)
                if unifier is None:
                    continue
                instance = unifier.apply_atom(goal)
                key = variant_key(instance)
                if key not in seen:
                    seen.add(key)
                    answers.append(instance)
        self.stats.answers = len(answers)
        return answers

    def _partial_database(self) -> Database:
        """Every ground answer tabled so far, as a database (trip payload)."""
        partial = Database()
        for table in self._tables.values():
            for answer in table.answers:
                if answer.is_ground():
                    partial.add_atom(answer)
        return partial

    @property
    def tables(self) -> dict[tuple, "_Table"]:
        """The completed solution tables (read-only use by the
        correspondence checker)."""
        return self._tables

    def call_patterns(self) -> list[Atom]:
        """The canonical call atom of every table, in creation order."""
        return [table.call for table in self._tables.values()]

    def all_answers(self) -> dict[tuple, list[Atom]]:
        """Answers per table key."""
        return {key: list(table.answers) for key, table in self._tables.items()}

    # --- tabling ----------------------------------------------------------------
    def _is_tabled(self, predicate: str) -> bool:
        return predicate in self._program.idb_predicates

    def _get_or_create_table(self, call: Atom) -> _Table:
        key = variant_key(call)
        table = self._tables.get(key)
        if table is not None:
            return table
        if self._tabling == "subsumption":
            # Reuse any table whose call pattern covers this call; answer
            # unification in the consumer filters out the excess.
            for candidate in self._tables.values():
                if (
                    candidate.call.predicate == call.predicate
                    and subsumes(candidate.call, call) is not None
                ):
                    return candidate
        table = _Table(call=call, key=key)
        self._tables[key] = table
        self.stats.calls += 1
        # Seed generator processes: program clauses whose head unifies with
        # the canonical call, plus database facts of the same predicate
        # (unit clauses).
        for row in self._database.rows(call.predicate) if call.predicate in self._database else ():
            self.stats.attempts += 1
            fact = Atom(call.predicate, tuple(Constant(value) for value in row))
            unifier = unify_atoms(call, fact)
            if unifier is not None:
                self._charge_step()
                self._enqueue(_Process(table, unifier.apply_atom(call), ()))
        from ..engine.matching import order_body

        for rule in self._program.rules_for(call.predicate):
            self.stats.attempts += 1
            fresh = rule.rename_apart()
            unifier = unify_atoms(call, fresh.head)
            if unifier is None:
                continue
            self._charge_step()
            template = unifier.apply_atom(call)
            # Bodies are normalised so test literals (negation, built-ins)
            # come after the literals that bind them — the order the
            # adornment pass uses too, keeping call patterns aligned.
            if self._planner is not None:
                ordered = self._planner.order_clause_goals(
                    fresh.body, fresh, tabled=self._program.idb_predicates
                )
            else:
                ordered = order_body(fresh.body, fresh)
            goals = tuple(unifier.apply_literal(lit) for lit in ordered)
            self._enqueue(_Process(table, template, goals))
        return table

    def _enqueue(self, process: _Process) -> None:
        self._worklist.append(process)

    def _charge_step(self) -> None:
        self.stats.inferences += 1
        if self.stats.inferences > self._max_steps:
            raise EvaluationError(
                f"OLDT exceeded {self._max_steps} resolution steps"
            )

    # --- scheduler --------------------------------------------------------------
    def _run(self) -> None:
        checkpoint = self._checkpoint
        while self._worklist:
            if checkpoint is not None:
                checkpoint.check_round()
            self.stats.iterations += 1
            process = self._worklist.pop()
            self._step(process)

    def _step(self, process: _Process) -> None:
        if not process.goals:
            self._emit_answer(process.table, process.template)
            return
        selected, rest = process.goals[0], process.goals[1:]
        if is_builtin(selected.predicate):
            self._step_builtin(process, selected, rest)
            return
        if selected.negative:
            self._step_negative(process, selected, rest)
            return
        if self._is_tabled(selected.predicate):
            self._step_tabled(process, selected.atom, rest)
        else:
            self._step_extensional(process, selected.atom, rest)

    def _emit_answer(self, table: _Table, answer: Atom) -> None:
        if not table.add_answer(answer):
            return
        self.stats.facts_derived += 1
        # Resume every consumer; each tracks its own replay cursor into the
        # table's (append-only) answer list.
        for consumer in table.consumers:
            self._replay(consumer)

    def _step_tabled(self, process: _Process, call: Atom, rest: tuple[Literal, ...]) -> None:
        table = self._get_or_create_table(call)
        consumer = _Process(
            table=process.table,
            template=process.template,
            goals=(Literal(call),) + rest,
            watch=table,
        )
        table.consumers.append(consumer)
        self._replay(consumer)

    def _replay(self, consumer: _Process) -> None:
        """Resolve *consumer*'s selected literal against unseen answers of
        the table it watches."""
        call = consumer.goals[0].atom
        rest = consumer.goals[1:]
        answers = consumer.watch.answers
        while consumer.replayed < len(answers):
            answer = answers[consumer.replayed]
            consumer.replayed += 1
            self.stats.attempts += 1
            if self._checkpoint is not None:
                self._checkpoint.poll()
            unifier = unify_atoms(call, answer)
            if unifier is None:
                continue
            self._charge_step()
            self._enqueue(
                _Process(
                    table=consumer.table,
                    template=unifier.apply_atom(consumer.template),
                    goals=tuple(unifier.apply_literal(lit) for lit in rest),
                )
            )

    def _step_extensional(
        self, process: _Process, atom: Atom, rest: tuple[Literal, ...]
    ) -> None:
        if atom.predicate not in self._database:
            return
        relation = self._database.relation(atom.predicate)
        bound: dict[int, object] = {
            column: arg.value
            for column, arg in enumerate(atom.args)
            if isinstance(arg, Constant)
        }
        for row in relation.lookup(bound):
            self.stats.attempts += 1
            if self._checkpoint is not None:
                self._checkpoint.poll()
            fact = Atom(atom.predicate, tuple(Constant(value) for value in row))
            unifier = unify_atoms(atom, fact)
            if unifier is None:
                continue
            self._charge_step()
            self._enqueue(
                _Process(
                    table=process.table,
                    template=unifier.apply_atom(process.template),
                    goals=tuple(unifier.apply_literal(lit) for lit in rest),
                )
            )

    def _step_builtin(
        self, process: _Process, literal: Literal, rest: tuple[Literal, ...]
    ) -> None:
        atom = literal.atom
        if not atom.is_ground():
            raise EvaluationError(
                f"builtin literal {literal} selected before its variables "
                "were bound; reorder the rule body"
            )
        holds = evaluate_builtin(atom.predicate, atom.ground_key())
        self._charge_step()
        if holds == literal.positive:
            self._enqueue(
                _Process(table=process.table, template=process.template, goals=rest)
            )

    def _step_negative(
        self, process: _Process, literal: Literal, rest: tuple[Literal, ...]
    ) -> None:
        atom = literal.atom
        if not atom.is_ground():
            raise EvaluationError(
                f"negation-as-failure selected non-ground literal {literal}"
            )
        cache_key = (atom.predicate, atom.ground_key())
        holds = self._negation_cache.get(cache_key)
        if holds is None:
            nested = OLDTEngine(
                self._program,
                self._database,
                self._max_steps,
                planner=self._planner,
                budget=self._checkpoint,
            )
            holds = not nested.query(atom)
            self.stats.merge(nested.stats)
            self._negation_cache[cache_key] = holds
        self._charge_step()
        if holds:
            self._enqueue(
                _Process(table=process.table, template=process.template, goals=rest)
            )


def oldt_query(
    program: Program,
    goal: Atom,
    database: Database | None = None,
    max_steps: int = DEFAULT_MAX_STEPS,
    planner: "object | None" = None,
    budget: "EvaluationBudget | None" = None,
) -> tuple[list[Atom], EvaluationStats]:
    """Convenience wrapper: run one OLDT query and return answers + stats."""
    engine = OLDTEngine(
        program, database, max_steps=max_steps, planner=planner, budget=budget
    )
    answers = engine.query(goal)
    return answers, engine.stats
