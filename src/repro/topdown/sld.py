"""Plain SLD resolution (Prolog-style top-down evaluation, no memoing).

This is the baseline the tabling methods are measured against: depth-first,
leftmost selection, program-order clause choice, and **no termination
guarantee** — on cyclic data (or even acyclic data with many derivation
paths) the step count explodes, which is exactly the behaviour experiment
T5 demonstrates.

The engine therefore runs under a step budget and raises
:class:`~repro.errors.BudgetExceededError` (with partial statistics
attached) when the budget is exhausted; the bench harness reports such
rows as divergent.

Negative literals are handled by negation as failure: the literal must be
ground when selected, and a nested bounded SLD evaluation of the positive
atom decides it.  This is sound for the stratified programs used in this
library.
"""

from __future__ import annotations

from typing import Iterator

from ..datalog.atoms import Atom, Literal
from ..datalog.builtins import evaluate_builtin, is_builtin
from ..datalog.rules import Program
from ..datalog.unify import Substitution, unify_atoms, variant_key
from ..engine.budget import Checkpoint, EvaluationBudget, ensure_checkpoint
from ..errors import BudgetExceededError, EvaluationError
from ..facts.database import Database
from ..engine.counters import EvaluationStats

__all__ = ["SLDEngine", "sld_query"]

DEFAULT_MAX_STEPS = 1_000_000
# The resolver recurses one Python frame pair per resolution step, so the
# depth budget must sit safely below the interpreter's recursion limit.
DEFAULT_MAX_DEPTH = 300


class SLDEngine:
    """A depth-first SLD resolution engine with step and depth budgets."""

    def __init__(
        self,
        program: Program,
        database: Database | None = None,
        max_steps: int = DEFAULT_MAX_STEPS,
        max_depth: int = DEFAULT_MAX_DEPTH,
        budget: "EvaluationBudget | Checkpoint | None" = None,
    ):
        """Args:
            budget: optional :class:`repro.engine.budget.EvaluationBudget`
                layered on top of the engine's built-in step/depth bounds
                — its wall-clock and attempt limits are polled at every
                resolution step.  SLD materialises no database, so a trip
                carries no partial result (``partial=None``).
        """
        self._program = program
        self._database = database.copy() if database is not None else Database()
        self._database.add_atoms(program.facts)
        self._max_steps = max_steps
        self._max_depth = max_depth
        self.stats = EvaluationStats()
        self._checkpoint = ensure_checkpoint(budget, self.stats)

    # --- public API ---------------------------------------------------------
    def query(self, goal: Atom) -> list[Atom]:
        """All answers to *goal*, as ground instances of the goal atom.

        Raises:
            BudgetExceededError: when the step or depth budget runs out.
        """
        answers: list[Atom] = []
        seen: set[tuple] = set()
        try:
            for binding in self._solve((Literal(goal),), Substitution(), 0):
                answer = binding.apply_atom(goal)
                key = variant_key(answer)
                if key not in seen:
                    seen.add(key)
                    answers.append(answer)
        except RecursionError as error:
            raise BudgetExceededError(
                "SLD exhausted the Python recursion limit",
                self.stats,
                limit="recursion",
            ) from error
        self.stats.answers = len(answers)
        return answers

    def ask(self, goal: Atom) -> bool:
        """True iff *goal* has at least one derivation (stops at the first)."""
        for _ in self._solve((Literal(goal),), Substitution(), 0):
            return True
        return False

    # --- resolution ------------------------------------------------------------
    def _charge_step(self) -> None:
        self.stats.inferences += 1
        if self.stats.inferences > self._max_steps:
            raise BudgetExceededError(
                f"SLD exceeded {self._max_steps} resolution steps",
                self.stats,
                limit="steps",
            )
        if self._checkpoint is not None:
            self._checkpoint.poll()

    def _solve(
        self, goals: tuple[Literal, ...], binding: Substitution, depth: int
    ) -> Iterator[Substitution]:
        """Yield bindings closing all *goals* (leftmost selection)."""
        if not goals:
            yield binding
            return
        if depth > self._max_depth:
            raise BudgetExceededError(
                f"SLD exceeded depth {self._max_depth}", self.stats, limit="depth"
            )
        selected, rest = goals[0], goals[1:]
        literal = binding.apply_literal(selected)
        if is_builtin(literal.predicate):
            yield from self._solve_builtin(literal, rest, binding, depth)
            return
        if literal.negative:
            yield from self._solve_negative(literal, rest, binding, depth)
            return
        atom = literal.atom
        # Fact resolution against the database.
        relation_rows = self._lookup_rows(atom)
        for row in relation_rows:
            self.stats.attempts += 1
            extended = self._match_row(atom, row, binding)
            if extended is not None:
                self._charge_step()
                yield from self._solve(rest, extended, depth + 1)
        # Program-clause resolution.  Bodies are normalised so that test
        # literals (negation, built-ins) run after the literals that bind
        # them, matching the order every other engine evaluates in.
        from ..engine.matching import order_body

        for rule in self._program.rules_for(atom.predicate):
            self.stats.attempts += 1
            fresh = rule.rename_apart()
            unifier = unify_atoms(atom, fresh.head, binding)
            if unifier is None:
                continue
            self._charge_step()
            ordered = order_body(fresh.body, fresh)
            yield from self._solve(ordered + rest, unifier, depth + 1)

    def _solve_builtin(
        self,
        literal: Literal,
        rest: tuple[Literal, ...],
        binding: Substitution,
        depth: int,
    ) -> Iterator[Substitution]:
        atom = literal.atom
        if not atom.is_ground():
            raise EvaluationError(
                f"builtin literal {literal} selected before its variables "
                "were bound; reorder the rule body"
            )
        holds = evaluate_builtin(atom.predicate, atom.ground_key())
        self._charge_step()
        if holds == literal.positive:
            yield from self._solve(rest, binding, depth + 1)

    def _solve_negative(
        self,
        literal: Literal,
        rest: tuple[Literal, ...],
        binding: Substitution,
        depth: int,
    ) -> Iterator[Substitution]:
        atom = literal.atom
        if not atom.is_ground():
            raise EvaluationError(
                f"negation-as-failure selected non-ground literal {literal}"
            )
        succeeded = False
        for _ in self._solve((Literal(atom),), binding, depth + 1):
            succeeded = True
            break
        self._charge_step()
        if not succeeded:
            yield from self._solve(rest, binding, depth + 1)

    # --- database access ----------------------------------------------------------
    def _lookup_rows(self, atom: Atom) -> Iterator[tuple]:
        if atom.predicate not in self._database:
            return iter(())
        relation = self._database.relation(atom.predicate)
        bound: dict[int, object] = {}
        from ..datalog.terms import Constant

        resolved_args = atom.args
        for column, arg in enumerate(resolved_args):
            if isinstance(arg, Constant):
                bound[column] = arg.value
        return relation.lookup(bound)

    @staticmethod
    def _match_row(atom: Atom, row: tuple, binding: Substitution) -> Substitution | None:
        from ..datalog.terms import Constant

        fact = Atom(atom.predicate, tuple(Constant(value) for value in row))
        return unify_atoms(atom, fact, binding)


def sld_query(
    program: Program,
    goal: Atom,
    database: Database | None = None,
    max_steps: int = DEFAULT_MAX_STEPS,
    max_depth: int = DEFAULT_MAX_DEPTH,
    budget: "EvaluationBudget | None" = None,
) -> tuple[list[Atom], EvaluationStats]:
    """Convenience wrapper: run one SLD query and return answers + stats."""
    engine = SLDEngine(
        program, database, max_steps=max_steps, max_depth=max_depth, budget=budget
    )
    answers = engine.query(goal)
    return answers, engine.stats
