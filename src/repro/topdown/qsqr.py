"""QSQR: Query/Subquery evaluation, recursive variant (Vieille 1986/87).

QSQR is the other classical top-down, set-oriented memoing method the
1980s literature compares with the Alexander method and magic sets.  The
implementation here follows the standard recursive formulation:

* For each *adorned* predicate occurrence (a predicate plus a bound/free
  pattern for its arguments) the engine keeps a global **answer table**
  and, per outer round, a memo of the **input tuples** already processed.
* Processing an input tuple pushes bindings through the rule bodies left
  to right, recursing into IDB literals and joining against their answer
  tables.
* Because a recursive call may consume an answer table that is still
  growing, the whole procedure is repeated until no round adds an answer
  (the classical QSQR outer iteration).

Negative literals must be ground when reached and are decided by a nested,
fresh QSQR evaluation run to completion — sound for stratified programs.

Counters: ``calls`` counts distinct (predicate, adornment, input-tuple)
subqueries over the whole run; ``inferences`` counts successful joins of an
environment with a database row or a tabled answer; ``facts_derived``
counts distinct answers across all tables.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..datalog.atoms import Atom
from ..datalog.builtins import evaluate_builtin, is_builtin
from ..datalog.rules import Program, Rule
from ..datalog.terms import Constant, Variable
from ..engine.budget import Checkpoint, EvaluationBudget, ensure_checkpoint
from ..engine.counters import EvaluationStats
from ..errors import EvaluationError
from ..facts.database import Database
from ..facts.relation import Relation
from ..obs import get_metrics

__all__ = ["QSQREngine", "qsqr_query"]

_Env = dict  # Variable -> constant value


def _adornment_of(atom: Atom, env: Mapping[Variable, object]) -> str:
    """The bound/free pattern of *atom* under *env* ('b'/'f' per argument)."""
    pattern = []
    for arg in atom.args:
        if isinstance(arg, Constant) or (isinstance(arg, Variable) and arg in env):
            pattern.append("b")
        else:
            pattern.append("f")
    return "".join(pattern)


class QSQREngine:
    """Recursive Query/Subquery evaluation over a program and database."""

    def __init__(
        self,
        program: Program,
        database: Database | None = None,
        planner: "object | None" = None,
        budget: "EvaluationBudget | Checkpoint | None" = None,
    ):
        """Args:
            planner: optional join-planner spec (e.g. ``"greedy"``); clause
                bodies are ordered by
                :meth:`~repro.engine.planner.JoinPlanner.order_clause_goals`,
                which only permutes runs of consecutive extensional
                literals, so the subqueries raised and answers tabled are
                unchanged.
            budget: optional :class:`repro.engine.budget.EvaluationBudget`
                (or a running checkpoint, shared with nested negation
                evaluations).  ``max_iterations`` bounds outer QSQR
                rounds, ``max_facts`` tabled answers; a trip's partial
                database holds every answer tabled so far (all genuinely
                derivable — the tables only ever accumulate sound
                answers).
        """
        self._program = program
        self._database = database.copy() if database is not None else Database()
        self._database.add_atoms(program.facts)
        from ..engine.planner import resolve_planner

        self._planner = resolve_planner(planner, self._database, program)
        arities = program.arities
        self._answers: dict[str, Relation] = {
            predicate: Relation(predicate, arities[predicate])
            for predicate in program.idb_predicates
        }
        # Per-round memo of processed subqueries; reset by the outer loop.
        self._round_seen: set[tuple] = set()
        # Global registry of distinct subqueries, for the `calls` counter.
        self._all_calls: set[tuple] = set()
        # Ground negation-as-failure results (stratified => stable).
        self._negation_cache: dict[tuple, bool] = {}
        self.stats = EvaluationStats()
        self._budget = budget
        self._checkpoint: Checkpoint | None = None

    def _partial_database(self) -> Database:
        """Every answer tabled so far, as a database (trip payload)."""
        partial = Database()
        for relation in self._answers.values():
            target = partial.relation(relation.name, relation.arity)
            target.add_all(relation.rows())
        return partial

    def _table_size(self) -> int:
        """Total answers across tables — the outer loop's progress measure.

        (Deliberately not ``stats.facts_derived``: nested negation
        evaluations merge their stats in, which would look like progress
        forever.)
        """
        return sum(len(relation) for relation in self._answers.values())

    # --- public API --------------------------------------------------------------
    def query(self, goal: Atom) -> list[Atom]:
        """All answers to *goal*, as ground instances of the goal atom."""
        if goal.predicate not in self._program.idb_predicates:
            return self._edb_answers(goal)
        if self._checkpoint is None:
            self._checkpoint = ensure_checkpoint(self._budget, self.stats)
            # A nested negation evaluation shares its parent's checkpoint;
            # only the outermost engine (which created it) points the
            # partial result at its own tables.
            if self._checkpoint is not None and not isinstance(
                self._budget, Checkpoint
            ):
                self._checkpoint.bind(self._partial_database)
        obs = get_metrics()
        before = -1
        with obs.timer("qsqr"):
            while before != self._table_size():
                if self._checkpoint is not None:
                    self._checkpoint.check_round()
                before = self._table_size()
                self.stats.iterations += 1
                self._round_seen.clear()
                with obs.timer("round"):
                    self._subquery(goal, {})
                if obs.enabled:
                    obs.observe("qsqr.round_new_answers", self._table_size() - before)
        if obs.enabled:
            obs.observe("qsqr.calls", len(self._all_calls))
            obs.observe("qsqr.table_answers", self._table_size())
        answers = []
        for env in self._join_idb(goal, {}, charge=False):
            answers.append(self._instantiate(goal, env))
        unique: dict[tuple, Atom] = {}
        for answer in answers:
            unique[answer.ground_key()] = answer
        result = list(unique.values())
        self.stats.answers = len(result)
        return result

    def answer_table(self, predicate: str) -> frozenset[tuple]:
        """The accumulated answer tuples of an IDB predicate."""
        relation = self._answers.get(predicate)
        return relation.rows() if relation is not None else frozenset()

    def call_count(self) -> int:
        return len(self._all_calls)

    # --- core recursion ------------------------------------------------------------
    def _subquery(self, atom: Atom, env: _Env) -> None:
        """Process the subquery for *atom* under *env* (an IDB literal)."""
        adornment = _adornment_of(atom, env)
        input_tuple = tuple(
            self._value_of(arg, env)
            for arg, flag in zip(atom.args, adornment)
            if flag == "b"
        )
        key = (atom.predicate, adornment, input_tuple)
        if key in self._round_seen:
            return
        self._round_seen.add(key)
        if key not in self._all_calls:
            self._all_calls.add(key)
            self.stats.calls += 1
        for rule in self._program.rules_for(atom.predicate):
            self._process_rule(rule, atom, env)

    def _process_rule(self, rule: Rule, call: Atom, env: _Env) -> None:
        fresh = rule.rename_apart()
        head_env: _Env = {}
        # Unify the call (under env) with the fresh head, argument-wise.
        consistent = True
        for call_arg, head_arg in zip(call.args, fresh.head.args):
            value = self._value_of(call_arg, env)
            if isinstance(head_arg, Constant):
                if value is not None and value != head_arg.value:
                    consistent = False
                    break
            else:
                if value is not None:
                    bound = head_env.get(head_arg)
                    if bound is None:
                        head_env[head_arg] = value
                    elif bound != value:
                        consistent = False
                        break
        if not consistent:
            return
        envs: list[_Env] = [head_env]
        from ..engine.matching import order_body

        if self._planner is not None:
            ordered = self._planner.order_clause_goals(
                fresh.body, fresh, tabled=self._program.idb_predicates
            )
        else:
            ordered = order_body(fresh.body, fresh)
        for literal in ordered:
            if not envs:
                return
            if is_builtin(literal.predicate):
                envs = [
                    e
                    for e in envs
                    if self._builtin_holds(literal, e)
                ]
            elif literal.negative:
                envs = [e for e in envs if self._negation_holds(literal.atom, e)]
            elif literal.predicate in self._program.idb_predicates:
                next_envs: list[_Env] = []
                for e in envs:
                    self._subquery(literal.atom, e)
                    next_envs.extend(self._join_idb(literal.atom, e))
                envs = next_envs
            else:
                next_envs = []
                for e in envs:
                    next_envs.extend(self._join_edb(literal.atom, e))
                envs = next_envs
        for e in envs:
            answer = tuple(self._value_of(arg, e) for arg in fresh.head.args)
            if any(value is None for value in answer):
                raise EvaluationError(f"unsafe rule produced non-ground answer: {rule}")
            if self._answers[rule.head.predicate].add(answer):
                self.stats.facts_derived += 1

    # --- joins -------------------------------------------------------------------
    def _join_rows(
        self, atom: Atom, env: _Env, rows: Iterable[tuple], charge: bool = True
    ) -> Iterable[_Env]:
        for row in rows:
            if charge:
                self.stats.attempts += 1
                if self._checkpoint is not None:
                    self._checkpoint.poll()
            extended = dict(env)
            consistent = True
            for arg, value in zip(atom.args, row):
                if isinstance(arg, Constant):
                    if arg.value != value:
                        consistent = False
                        break
                else:
                    bound = extended.get(arg)
                    if bound is None:
                        extended[arg] = value
                    elif bound != value:
                        consistent = False
                        break
            if consistent:
                if charge:
                    self.stats.inferences += 1
                yield extended

    def _bound_columns(self, atom: Atom, env: _Env) -> dict[int, object]:
        bound: dict[int, object] = {}
        for column, arg in enumerate(atom.args):
            value = self._value_of(arg, env)
            if value is not None:
                bound[column] = value
        return bound

    def _join_edb(self, atom: Atom, env: _Env) -> Iterable[_Env]:
        if atom.predicate not in self._database:
            return ()
        relation = self._database.relation(atom.predicate)
        return self._join_rows(atom, env, relation.lookup(self._bound_columns(atom, env)))

    def _join_idb(self, atom: Atom, env: _Env, charge: bool = True) -> Iterable[_Env]:
        relation = self._answers.get(atom.predicate)
        if relation is None:
            return ()
        return self._join_rows(
            atom, env, relation.lookup(self._bound_columns(atom, env)), charge
        )

    def _builtin_holds(self, literal, env: _Env) -> bool:
        values = [self._value_of(arg, env) for arg in literal.args]
        if any(value is None for value in values):
            raise EvaluationError(
                f"builtin literal {literal} reached before its variables "
                "were bound"
            )
        self.stats.attempts += 1
        holds = evaluate_builtin(literal.predicate, tuple(values))
        return holds == literal.positive

    def _negation_holds(self, atom: Atom, env: _Env) -> bool:
        values = [self._value_of(arg, env) for arg in atom.args]
        if any(value is None for value in values):
            raise EvaluationError(
                f"negation-as-failure reached non-ground literal not {atom}"
            )
        self.stats.attempts += 1
        probe = tuple(values)
        if atom.predicate in self._program.idb_predicates:
            cache_key = (atom.predicate, probe)
            cached = self._negation_cache.get(cache_key)
            if cached is not None:
                return cached
            nested = QSQREngine(
                self._program,
                self._database,
                planner=self._planner,
                budget=self._checkpoint,
            )
            ground = Atom(atom.predicate, tuple(Constant(v) for v in probe))
            result = nested.query(ground)
            self.stats.merge(nested.stats)
            holds = not result
            self._negation_cache[cache_key] = holds
            return holds
        if atom.predicate not in self._database:
            return True
        return probe not in self._database.relation(atom.predicate)

    # --- helpers -----------------------------------------------------------------
    @staticmethod
    def _value_of(arg, env: _Env):
        if isinstance(arg, Constant):
            return arg.value
        return env.get(arg)

    def _instantiate(self, atom: Atom, env: _Env) -> Atom:
        return Atom(
            atom.predicate,
            tuple(Constant(self._value_of(arg, env)) for arg in atom.args),
        )

    def _edb_answers(self, goal: Atom) -> list[Atom]:
        answers = [self._instantiate(goal, env) for env in self._join_edb(goal, {})]
        self.stats.answers = len(answers)
        return answers


def qsqr_query(
    program: Program,
    goal: Atom,
    database: Database | None = None,
    planner: "object | None" = None,
    budget: "EvaluationBudget | None" = None,
) -> tuple[list[Atom], EvaluationStats]:
    """Convenience wrapper: run one QSQR query and return answers + stats."""
    engine = QSQREngine(program, database, planner=planner, budget=budget)
    answers = engine.query(goal)
    return answers, engine.stats
