"""Top-down engines: plain SLD, OLDT with tabulation, and QSQR."""

from .oldt import OLDTEngine, oldt_query
from .qsqr import QSQREngine, qsqr_query
from .sld import SLDEngine, sld_query

__all__ = [
    "SLDEngine",
    "sld_query",
    "OLDTEngine",
    "oldt_query",
    "QSQREngine",
    "qsqr_query",
]
