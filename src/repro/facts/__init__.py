"""Fact storage: indexed in-memory relations, the extensional database,
and file interchange."""

from .database import Database
from .io import load_delimited, load_facts, save_delimited, save_facts
from .nx_bridge import closure_via_networkx, relation_from_graph, relation_to_graph
from .relation import Relation

__all__ = [
    "Database",
    "Relation",
    "load_facts",
    "save_facts",
    "load_delimited",
    "save_delimited",
    "relation_from_graph",
    "relation_to_graph",
    "closure_via_networkx",
]
