"""Loading and saving extensional databases.

Two interchange formats:

* **facts format** — plain Datalog facts, one per line (``par(a, b).``);
  round-trips through the library's own parser, so whatever
  :func:`save_facts` writes, :func:`load_facts` reads back identically.
* **delimited format** — one relation per file, one tuple per line,
  tab-separated by default (the classic ``<name>.facts`` layout used by
  Soufflé-style engines).  Values that look like integers load as ``int``
  so graph workloads round-trip their node labels.

All functions accept paths or open text handles.
"""

from __future__ import annotations

from typing import TextIO

from ..datalog.parser import parse_program
from ..errors import ParseError
from .database import Database

__all__ = [
    "load_facts",
    "save_facts",
    "load_delimited",
    "save_delimited",
]


def _open_for_read(source) -> tuple[TextIO, bool]:
    if hasattr(source, "read"):
        return source, False
    return open(source, "r", encoding="utf-8"), True


def _open_for_write(target) -> tuple[TextIO, bool]:
    if hasattr(target, "write"):
        return target, False
    return open(target, "w", encoding="utf-8"), True


def load_facts(source, into: Database | None = None) -> Database:
    """Read a facts file (Datalog ground facts) into a database.

    Args:
        source: path or text handle.
        into: database to extend; a new one is created when omitted.

    Raises:
        ParseError: on malformed input or non-fact statements.
    """
    handle, owned = _open_for_read(source)
    try:
        program = parse_program(handle.read())
    finally:
        if owned:
            handle.close()
    if program.proper_rules:
        offender = program.proper_rules[0]
        raise ParseError(f"facts file contains a rule: {offender}")
    database = into if into is not None else Database()
    database.add_atoms(program.facts)
    return database


def save_facts(database: Database, target) -> int:
    """Write every fact of *database* in Datalog syntax; returns the count."""
    handle, owned = _open_for_write(target)
    count = 0
    try:
        for atom in database.all_atoms():
            handle.write(f"{atom}.\n")
            count += 1
    finally:
        if owned:
            handle.close()
    return count


def _parse_value(text: str) -> object:
    stripped = text.strip()
    if stripped and (
        stripped.isdigit() or (stripped[0] == "-" and stripped[1:].isdigit())
    ):
        return int(stripped)
    return stripped


def load_delimited(
    source,
    predicate: str,
    into: Database | None = None,
    delimiter: str = "\t",
) -> Database:
    """Read a delimited tuple file into one relation.

    Empty lines and ``#`` comment lines are skipped.  All rows must have
    the same arity.
    """
    handle, owned = _open_for_read(source)
    database = into if into is not None else Database()
    arity: int | None = None
    try:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.rstrip("\n")
            if not stripped.strip() or stripped.lstrip().startswith("#"):
                continue
            values = tuple(_parse_value(cell) for cell in stripped.split(delimiter))
            if arity is None:
                arity = len(values)
            elif len(values) != arity:
                raise ParseError(
                    f"row has {len(values)} fields, expected {arity}",
                    line=line_number,
                )
            database.add(predicate, values)
    finally:
        if owned:
            handle.close()
    return database


def save_delimited(
    database: Database,
    predicate: str,
    target,
    delimiter: str = "\t",
) -> int:
    """Write one relation as delimited rows (sorted); returns the count."""
    handle, owned = _open_for_write(target)
    count = 0
    try:
        for row in sorted(database.rows(predicate), key=repr):
            handle.write(delimiter.join(str(value) for value in row) + "\n")
            count += 1
    finally:
        if owned:
            handle.close()
    return count
