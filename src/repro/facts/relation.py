"""In-memory relations with per-column hash indexes.

A :class:`Relation` stores ground facts as plain Python tuples of constant
*values* (not :class:`~repro.datalog.terms.Constant` objects); the engines
convert at their boundary.  Indexes are built lazily on first use of a
column and maintained incrementally afterwards, so the join machinery can
probe any bound column in expected O(1).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

__all__ = ["Relation"]


class Relation:
    """A set of same-arity tuples with lazily built column indexes."""

    __slots__ = ("name", "arity", "_tuples", "_indexes")

    def __init__(self, name: str, arity: int, tuples: Iterable[tuple] = ()):
        self.name = name
        self.arity = arity
        self._tuples: set[tuple] = set()
        # column -> value -> list of tuples having that value in the column.
        self._indexes: dict[int, dict[object, list[tuple]]] = {}
        for row in tuples:
            self.add(row)

    # --- mutation ------------------------------------------------------------
    def add(self, row: tuple) -> bool:
        """Insert *row*; returns True iff it was new."""
        if len(row) != self.arity:
            raise ValueError(
                f"relation {self.name}/{self.arity} given a tuple of "
                f"length {len(row)}: {row!r}"
            )
        if row in self._tuples:
            return False
        self._tuples.add(row)
        for column, index in self._indexes.items():
            index.setdefault(row[column], []).append(row)
        return True

    def add_all(self, rows: Iterable[tuple]) -> int:
        """Insert many rows; returns the number that were new."""
        added = 0
        for row in rows:
            if self.add(row):
                added += 1
        return added

    def discard(self, row: tuple) -> bool:
        """Remove *row* if present; returns True iff it was present.

        Removal invalidates the lazy indexes (they are rebuilt on demand);
        deletion is rare in this library (only the harness resets state).
        """
        if row not in self._tuples:
            return False
        self._tuples.discard(row)
        self._indexes.clear()
        return True

    def clear(self) -> None:
        self._tuples.clear()
        self._indexes.clear()

    # --- queries ---------------------------------------------------------------
    def __contains__(self, row: tuple) -> bool:
        return row in self._tuples

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._tuples)

    def __bool__(self) -> bool:
        return bool(self._tuples)

    def rows(self) -> frozenset[tuple]:
        """An immutable snapshot of the current tuples."""
        return frozenset(self._tuples)

    def _index_for(self, column: int) -> Mapping[object, list[tuple]]:
        index = self._indexes.get(column)
        if index is None:
            index = {}
            for row in self._tuples:
                index.setdefault(row[column], []).append(row)
            self._indexes[column] = index
        return index

    def lookup(self, bound: Mapping[int, object]) -> Iterator[tuple]:
        """Yield tuples matching the bound columns.

        Args:
            bound: mapping from column position to required value.  An
                empty mapping scans the whole relation.

        The probe uses the single bound column with the smallest posting
        list (cheapest first) and filters on the remaining columns, which
        is the classical index-nested-loop strategy.
        """
        if not bound:
            yield from self._tuples
            return
        best_column = None
        best_posting: list[tuple] | None = None
        for column, value in bound.items():
            posting = self._index_for(column).get(value, [])
            if best_posting is None or len(posting) < len(best_posting):
                best_column, best_posting = column, posting
                if not posting:
                    return
        remaining = [(c, v) for c, v in bound.items() if c != best_column]
        for row in best_posting:
            if all(row[column] == value for column, value in remaining):
                yield row

    def count(self, bound: Mapping[int, object] | None = None) -> int:
        """Number of tuples matching *bound* (all tuples when omitted)."""
        if not bound:
            return len(self._tuples)
        return sum(1 for _ in self.lookup(bound))

    def copy(self) -> "Relation":
        clone = Relation(self.name, self.arity)
        clone._tuples = set(self._tuples)
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            self.name == other.name
            and self.arity == other.arity
            and self._tuples == other._tuples
        )

    def __repr__(self) -> str:
        return f"Relation({self.name}/{self.arity}, {len(self._tuples)} tuples)"
