"""In-memory relations with per-column hash indexes and join statistics.

A :class:`Relation` stores ground facts as plain Python tuples of constant
*values* (not :class:`~repro.datalog.terms.Constant` objects); the engines
convert at their boundary.  Indexes are built lazily on first use of a
column and maintained incrementally afterwards — on :meth:`add` *and* on
:meth:`discard` — so the join machinery can probe any bound column in
expected O(1) and bulk deletion stays linear in the rows removed.

Relations also expose the cheap statistics the join planner
(:mod:`repro.engine.planner`) costs literal orders with: cardinality
(``len``), distinct values per column (:meth:`Relation.distinct_count`),
and exact posting-list sizes for constant probes
(:meth:`Relation.postings_size`).  Distinct-value sets are built lazily
per column and maintained incrementally on both mutations (a column whose
index is not materialised cannot prove a value vanished, so only that
column's distinct set is dropped on removal).  The :attr:`version`
counter bumps on every effective mutation, letting a cached plan detect
stale statistics.

For the semi-naive engines every row also carries an **insertion stamp**:
the *round* the relation was marked with when the row arrived
(:meth:`Relation.mark_round`).  :meth:`Relation.rows_before` wraps the
live relation in a :class:`StampedView` that filters probes down to rows
stamped strictly before a cutoff — the zero-copy replacement for the
per-round "old = full minus delta" snapshot rebuild (see
``docs/ARCHITECTURE.md``, "Round-stamped relations").  Rows added while
the relation is still in round 0 (the initial load) carry no explicit
stamp and default to 0, so plain EDB use pays nothing.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

__all__ = ["Relation", "StampedView"]


class Relation:
    """A set of same-arity tuples with lazily built column indexes."""

    __slots__ = (
        "name",
        "arity",
        "_tuples",
        "_indexes",
        "_distinct",
        "_version",
        "_stamps",
        "_round",
        "_scan_cache",
        "_scan_version",
    )

    def __init__(self, name: str, arity: int, tuples: Iterable[tuple] = ()):
        self.name = name
        self.arity = arity
        # Insertion-ordered: a dict used as an ordered set.  Enumeration
        # order (scan, iteration, snapshots) is therefore *insertion*
        # order, not hash order — the property the columnar backend
        # (repro.engine.columnar) reproduces exactly, making enumeration
        # order part of the cross-backend bit-identity contract.
        self._tuples: dict[tuple, None] = {}
        # column -> value -> list of tuples having that value in the column.
        self._indexes: dict[int, dict[object, list[tuple]]] = {}
        # column -> set of distinct values (lazy, incremental on add).
        self._distinct: dict[int, set] = {}
        self._version = 0
        # row -> insertion round; rows from round 0 are omitted (stamp 0).
        self._stamps: dict[tuple, int] = {}
        self._round = 0
        # Cached lookup({}) snapshot, valid while _scan_version == _version.
        self._scan_cache: tuple | None = None
        self._scan_version = -1
        for row in tuples:
            self.add(row)

    # --- mutation ------------------------------------------------------------
    def add(self, row: tuple) -> bool:
        """Insert *row*; returns True iff it was new."""
        if len(row) != self.arity:
            raise ValueError(
                f"relation {self.name}/{self.arity} given a tuple of "
                f"length {len(row)}: {row!r}"
            )
        if row in self._tuples:
            return False
        self._tuples[row] = None
        for column, index in self._indexes.items():
            index.setdefault(row[column], []).append(row)
        for column, values in self._distinct.items():
            values.add(row[column])
        if self._round:
            self._stamps[row] = self._round
        self._version += 1
        return True

    def add_all(self, rows: Iterable[tuple]) -> int:
        """Insert many rows; returns the number that were new."""
        added = 0
        for row in rows:
            if self.add(row):
                added += 1
        return added

    def discard(self, row: tuple) -> bool:
        """Remove *row* if present; returns True iff it was present.

        Live posting lists and distinct sets are maintained *in place*:
        the row is removed from each materialised column index, and a
        distinct value disappears only when its posting list empties.  A
        distinct set for a column with no live index cannot tell whether
        the value survives elsewhere, so only that set is dropped (it is
        rebuilt lazily).  Bulk deletion — the incremental engine removes
        many facts in a row — is therefore linear in the rows removed
        instead of rebuilding every index per deletion.
        """
        if row not in self._tuples:
            return False
        del self._tuples[row]
        self._stamps.pop(row, None)
        for column, index in self._indexes.items():
            value = row[column]
            posting = index.get(value)
            if posting is None:
                continue
            try:
                posting.remove(row)
            except ValueError:  # pragma: no cover - indexes track adds exactly
                pass
            if not posting:
                del index[value]
                distinct = self._distinct.get(column)
                if distinct is not None:
                    distinct.discard(value)
        for column in list(self._distinct):
            if column not in self._indexes:
                del self._distinct[column]
        self._version += 1
        return True

    def clear(self) -> None:
        if self._tuples:
            self._version += 1
        self._tuples.clear()
        self._indexes.clear()
        self._distinct.clear()
        self._stamps.clear()
        self._round = 0
        self._scan_cache = None
        self._scan_version = -1

    # --- round stamping ---------------------------------------------------------
    @property
    def round(self) -> int:
        """The round newly added rows are stamped with (0 = initial load)."""
        return self._round

    def mark_round(self, round: int) -> None:
        """Stamp subsequent :meth:`add` calls with *round*.

        The semi-naive engines call this at every merge boundary, so the
        rows of round *k*'s delta are exactly the rows stamped *k* and the
        "old" view of round *k* is :meth:`rows_before` with cutoff *k*.
        Rounds must not decrease within one evaluation; a fresh evaluation
        starts from a :meth:`copy`, whose rows all read as round 0.

        Raises:
            ValueError: if *round* is lower than the current round — a
                regressing stamp would silently corrupt every later
                :meth:`rows_before` view (rows of the regressed rounds
                leak into "old"), which is exactly the failure mode a
                buggy parallel merge produces.
        """
        if round < self._round:
            raise ValueError(
                f"mark_round({round}) would regress relation "
                f"{self.name!r} from round {self._round}; rounds must "
                f"not decrease within one evaluation"
            )
        self._round = round

    def stamp_of(self, row: tuple) -> int:
        """The insertion round of *row* (0 when unstamped or absent)."""
        return self._stamps.get(row, 0)

    def rows_before(self, cutoff: int) -> "StampedView":
        """A zero-copy read view of the rows stamped strictly before
        *cutoff* — the semi-naive "old" relation, without the snapshot."""
        return StampedView(self, cutoff)

    # --- queries ---------------------------------------------------------------
    def __contains__(self, row: tuple) -> bool:
        return row in self._tuples

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._tuples)

    def __bool__(self) -> bool:
        return bool(self._tuples)

    def rows(self) -> frozenset[tuple]:
        """An immutable snapshot of the current tuples."""
        return frozenset(self._tuples)

    def _index_for(self, column: int) -> Mapping[object, list[tuple]]:
        index = self._indexes.get(column)
        if index is None:
            index = {}
            for row in self._tuples:
                index.setdefault(row[column], []).append(row)
            self._indexes[column] = index
        return index

    def _scan_snapshot(self) -> tuple:
        """The full-tuple snapshot, cached per :attr:`version`.

        Full scans are the hottest unselective probe the engines issue
        (every unbound first literal of a rule); within one fixpoint round
        the relation does not change, so repeated scans reuse one copy
        instead of re-materialising the whole tuple set each time.
        """
        if self._scan_version != self._version:
            self._scan_cache = tuple(self._tuples)
            self._scan_version = self._version
        return self._scan_cache  # type: ignore[return-value]

    def scan(self) -> tuple:
        """All rows as a snapshot tuple (cached per :attr:`version`).

        Identical contents and order to ``lookup({})`` — the rule kernels
        use this to iterate a plain tuple instead of a generator.
        """
        return self._scan_snapshot()

    def probe(self, column: int, value: object) -> tuple:
        """Rows holding *value* in *column*, as a snapshot tuple.

        Identical contents and order to ``lookup({column: value})`` (a
        single-column lookup yields its posting list unfiltered), again
        for generator-free iteration in the kernels.
        """
        return tuple(self._index_for(column).get(value, ()))

    def lookup(self, bound: Mapping[int, object]) -> Iterator[tuple]:
        """Yield tuples matching the bound columns.

        Args:
            bound: mapping from column position to required value.  An
                empty mapping scans the whole relation.

        The probe uses the single bound column with the smallest posting
        list (cheapest first) and filters on the remaining columns, which
        is the classical index-nested-loop strategy.  Rows are yielded
        from a snapshot taken at probe time: callers routinely mutate the
        relation while a scan is suspended (delta loops add facts, the
        incremental engine deletes), and the iteration must neither raise
        nor skip rows that were present when the probe started.
        """
        if not bound:
            yield from self._scan_snapshot()
            return
        best_column = None
        best_posting: list[tuple] | None = None
        for column, value in bound.items():
            posting = self._index_for(column).get(value, [])
            if best_posting is None or len(posting) < len(best_posting):
                best_column, best_posting = column, posting
                if not posting:
                    return
        remaining = [(c, v) for c, v in bound.items() if c != best_column]
        if not remaining:
            yield from tuple(best_posting)
            return
        for row in tuple(best_posting):
            if all(row[column] == value for column, value in remaining):
                yield row

    def count(self, bound: Mapping[int, object] | None = None) -> int:
        """Number of tuples matching *bound* (all tuples when omitted).

        A single bound column is answered from the posting-list size
        directly — no iterator is materialised.
        """
        if not bound:
            return len(self._tuples)
        if len(bound) == 1:
            ((column, value),) = bound.items()
            return self.postings_size(column, value)
        return sum(1 for _ in self.lookup(bound))

    # --- statistics -------------------------------------------------------------
    @property
    def version(self) -> int:
        """A counter bumped on every effective mutation.

        Plans and other derived artifacts cache this to detect that their
        statistics went stale.
        """
        return self._version

    def distinct_count(self, column: int) -> int:
        """Number of distinct values in *column*.

        The distinct-value set is materialised lazily on first use and
        then maintained incrementally by :meth:`add` and (for indexed
        columns) :meth:`discard`; removal from an unindexed column drops
        the set, so the first call after such a removal recomputes.
        """
        if not 0 <= column < self.arity:
            raise IndexError(
                f"relation {self.name}/{self.arity} has no column {column}"
            )
        values = self._distinct.get(column)
        if values is None:
            values = {row[column] for row in self._tuples}
            self._distinct[column] = values
        return len(values)

    def postings_size(self, column: int, value: object) -> int:
        """Exact number of tuples holding *value* in *column* (index probe)."""
        return len(self._index_for(column).get(value, ()))

    def statistics(self) -> dict:
        """A JSON-ready snapshot: size, version, distinct count per column.

        ``distinct`` keys are strings — JSON objects cannot have integer
        keys, so emitting them as ints made the snapshot change shape
        under a ``json.dumps``/``loads`` round-trip.
        """
        return {
            "name": self.name,
            "arity": self.arity,
            "size": len(self._tuples),
            "version": self._version,
            "distinct": {
                str(column): self.distinct_count(column)
                for column in range(self.arity)
            },
        }

    def copy(self) -> "Relation":
        clone = Relation(self.name, self.arity)
        clone._tuples = dict(self._tuples)
        # Carry the version over: a copy holds the same tuples, so callers
        # caching (version, statistics) pairs must not see it reset to 0 —
        # a fresher copy reporting an *older* version defeats staleness
        # detection in the planner.
        clone._version = self._version
        # Stamps are deliberately NOT copied: they are evaluation-local
        # (a copy is the fresh starting state of the next evaluation, so
        # every row it holds is "old", i.e. round 0).
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            self.name == other.name
            and self.arity == other.arity
            and self._tuples == other._tuples
        )

    def __repr__(self) -> str:
        return f"Relation({self.name}/{self.arity}, {len(self._tuples)} tuples)"


class StampedView:
    """A read-only view of a :class:`Relation` restricted by insertion round.

    The view holds the live relation and filters every probe down to rows
    whose stamp is strictly below ``cutoff`` — O(rows probed) work, never
    O(|relation|).  It quacks like a relation for everything the matcher
    and the rule kernels need (``lookup``, membership, iteration, length),
    and is intentionally *not* mutable.

    Note the probe-order caveat: :meth:`lookup` delegates posting-list
    selection to the underlying relation, so the cheapest-column choice is
    made on unfiltered posting sizes.  That only affects constant factors;
    the yielded row set is exact.
    """

    __slots__ = ("_relation", "_cutoff")

    def __init__(self, relation: Relation, cutoff: int):
        self._relation = relation
        self._cutoff = cutoff

    @property
    def name(self) -> str:
        return self._relation.name

    @property
    def arity(self) -> int:
        return self._relation.arity

    @property
    def cutoff(self) -> int:
        return self._cutoff

    def lookup(self, bound: Mapping[int, object]) -> Iterator[tuple]:
        stamps = self._relation._stamps
        cutoff = self._cutoff
        for row in self._relation.lookup(bound):
            if stamps.get(row, 0) < cutoff:
                yield row

    def __contains__(self, row: tuple) -> bool:
        return row in self._relation and self._relation.stamp_of(row) < self._cutoff

    def __iter__(self) -> Iterator[tuple]:
        return self.lookup({})

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def __bool__(self) -> bool:
        return any(True for _ in self)

    def rows(self) -> frozenset[tuple]:
        return frozenset(self)

    def __repr__(self) -> str:
        return (
            f"StampedView({self._relation.name}/{self._relation.arity}, "
            f"stamp<{self._cutoff})"
        )
