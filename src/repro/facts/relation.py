"""In-memory relations with per-column hash indexes and join statistics.

A :class:`Relation` stores ground facts as plain Python tuples of constant
*values* (not :class:`~repro.datalog.terms.Constant` objects); the engines
convert at their boundary.  Indexes are built lazily on first use of a
column and maintained incrementally afterwards, so the join machinery can
probe any bound column in expected O(1).

Relations also expose the cheap statistics the join planner
(:mod:`repro.engine.planner`) costs literal orders with: cardinality
(``len``), distinct values per column (:meth:`Relation.distinct_count`),
and exact posting-list sizes for constant probes
(:meth:`Relation.postings_size`).  Distinct-value sets are built lazily
per column and maintained incrementally on :meth:`add`; :meth:`discard`
invalidates them (like the indexes) so they are recomputed lazily after a
removal.  The :attr:`version` counter bumps on every effective mutation,
letting a cached plan detect stale statistics.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

__all__ = ["Relation"]


class Relation:
    """A set of same-arity tuples with lazily built column indexes."""

    __slots__ = ("name", "arity", "_tuples", "_indexes", "_distinct", "_version")

    def __init__(self, name: str, arity: int, tuples: Iterable[tuple] = ()):
        self.name = name
        self.arity = arity
        self._tuples: set[tuple] = set()
        # column -> value -> list of tuples having that value in the column.
        self._indexes: dict[int, dict[object, list[tuple]]] = {}
        # column -> set of distinct values (lazy, incremental on add).
        self._distinct: dict[int, set] = {}
        self._version = 0
        for row in tuples:
            self.add(row)

    # --- mutation ------------------------------------------------------------
    def add(self, row: tuple) -> bool:
        """Insert *row*; returns True iff it was new."""
        if len(row) != self.arity:
            raise ValueError(
                f"relation {self.name}/{self.arity} given a tuple of "
                f"length {len(row)}: {row!r}"
            )
        if row in self._tuples:
            return False
        self._tuples.add(row)
        for column, index in self._indexes.items():
            index.setdefault(row[column], []).append(row)
        for column, values in self._distinct.items():
            values.add(row[column])
        self._version += 1
        return True

    def add_all(self, rows: Iterable[tuple]) -> int:
        """Insert many rows; returns the number that were new."""
        added = 0
        for row in rows:
            if self.add(row):
                added += 1
        return added

    def discard(self, row: tuple) -> bool:
        """Remove *row* if present; returns True iff it was present.

        Removal invalidates the lazy indexes (they are rebuilt on demand);
        deletion is rare in this library (only the harness resets state).
        """
        if row not in self._tuples:
            return False
        self._tuples.discard(row)
        self._indexes.clear()
        self._distinct.clear()
        self._version += 1
        return True

    def clear(self) -> None:
        if self._tuples:
            self._version += 1
        self._tuples.clear()
        self._indexes.clear()
        self._distinct.clear()

    # --- queries ---------------------------------------------------------------
    def __contains__(self, row: tuple) -> bool:
        return row in self._tuples

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._tuples)

    def __bool__(self) -> bool:
        return bool(self._tuples)

    def rows(self) -> frozenset[tuple]:
        """An immutable snapshot of the current tuples."""
        return frozenset(self._tuples)

    def _index_for(self, column: int) -> Mapping[object, list[tuple]]:
        index = self._indexes.get(column)
        if index is None:
            index = {}
            for row in self._tuples:
                index.setdefault(row[column], []).append(row)
            self._indexes[column] = index
        return index

    def lookup(self, bound: Mapping[int, object]) -> Iterator[tuple]:
        """Yield tuples matching the bound columns.

        Args:
            bound: mapping from column position to required value.  An
                empty mapping scans the whole relation.

        The probe uses the single bound column with the smallest posting
        list (cheapest first) and filters on the remaining columns, which
        is the classical index-nested-loop strategy.
        """
        if not bound:
            # Snapshot before yielding: callers routinely add derived
            # facts while a scan is suspended (delta loops do exactly
            # this), and iterating a live set raises RuntimeError the
            # moment it grows.
            yield from tuple(self._tuples)
            return
        best_column = None
        best_posting: list[tuple] | None = None
        for column, value in bound.items():
            posting = self._index_for(column).get(value, [])
            if best_posting is None or len(posting) < len(best_posting):
                best_column, best_posting = column, posting
                if not posting:
                    return
        remaining = [(c, v) for c, v in bound.items() if c != best_column]
        for row in best_posting:
            if all(row[column] == value for column, value in remaining):
                yield row

    def count(self, bound: Mapping[int, object] | None = None) -> int:
        """Number of tuples matching *bound* (all tuples when omitted)."""
        if not bound:
            return len(self._tuples)
        return sum(1 for _ in self.lookup(bound))

    # --- statistics -------------------------------------------------------------
    @property
    def version(self) -> int:
        """A counter bumped on every effective mutation.

        Plans and other derived artifacts cache this to detect that their
        statistics went stale.
        """
        return self._version

    def distinct_count(self, column: int) -> int:
        """Number of distinct values in *column*.

        The distinct-value set is materialised lazily on first use and
        then maintained incrementally by :meth:`add`; :meth:`discard`
        drops it, so the first call after a removal recomputes.
        """
        if not 0 <= column < self.arity:
            raise IndexError(
                f"relation {self.name}/{self.arity} has no column {column}"
            )
        values = self._distinct.get(column)
        if values is None:
            values = {row[column] for row in self._tuples}
            self._distinct[column] = values
        return len(values)

    def postings_size(self, column: int, value: object) -> int:
        """Exact number of tuples holding *value* in *column* (index probe)."""
        return len(self._index_for(column).get(value, ()))

    def statistics(self) -> dict:
        """A JSON-ready snapshot: size, version, distinct count per column.

        ``distinct`` keys are strings — JSON objects cannot have integer
        keys, so emitting them as ints made the snapshot change shape
        under a ``json.dumps``/``loads`` round-trip.
        """
        return {
            "name": self.name,
            "arity": self.arity,
            "size": len(self._tuples),
            "version": self._version,
            "distinct": {
                str(column): self.distinct_count(column)
                for column in range(self.arity)
            },
        }

    def copy(self) -> "Relation":
        clone = Relation(self.name, self.arity)
        clone._tuples = set(self._tuples)
        # Carry the version over: a copy holds the same tuples, so callers
        # caching (version, statistics) pairs must not see it reset to 0 —
        # a fresher copy reporting an *older* version defeats staleness
        # detection in the planner.
        clone._version = self._version
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            self.name == other.name
            and self.arity == other.arity
            and self._tuples == other._tuples
        )

    def __repr__(self) -> str:
        return f"Relation({self.name}/{self.arity}, {len(self._tuples)} tuples)"
