"""The extensional database: a dictionary of named relations.

A :class:`Database` owns one :class:`~repro.facts.relation.Relation` per
predicate.  Engines treat it as the EDB and (in bottom-up evaluation)
also accumulate IDB facts into a working copy of it.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from ..datalog.atoms import Atom
from ..datalog.rules import Program
from ..datalog.terms import Constant
from .relation import Relation

__all__ = ["Database"]


class Database:
    """A mutable collection of relations keyed by predicate name."""

    __slots__ = ("_relations",)

    def __init__(self, relations: Mapping[str, Relation] | None = None):
        self._relations: dict[str, Relation] = dict(relations) if relations else {}

    # --- construction -----------------------------------------------------------
    @classmethod
    def from_facts(cls, facts: Iterable[Atom]) -> "Database":
        """Build a database from ground atoms."""
        database = cls()
        for atom in facts:
            database.add_atom(atom)
        return database

    @classmethod
    def from_program(cls, program: Program) -> "Database":
        """Extract the body-less ground rules of *program* as a database."""
        return cls.from_facts(program.facts)

    # --- mutation ----------------------------------------------------------------
    def relation(self, predicate: str, arity: int | None = None) -> Relation:
        """The relation for *predicate*, created on first use.

        Args:
            arity: required when the relation does not exist yet.
        """
        existing = self._relations.get(predicate)
        if existing is not None:
            if arity is not None and existing.arity != arity:
                raise ValueError(
                    f"predicate {predicate} has arity {existing.arity}, "
                    f"requested {arity}"
                )
            return existing
        if arity is None:
            raise KeyError(f"unknown predicate {predicate} (no arity given)")
        created = Relation(predicate, arity)
        self._relations[predicate] = created
        return created

    def spawn(self, name: str, arity: int) -> Relation:
        """A free-standing relation of this database's storage backend.

        Engines use this instead of constructing :class:`Relation`
        directly when they build deltas and other scratch relations, so
        a columnar working database yields columnar deltas.  The relation
        is *not* registered in the database.
        """
        return Relation(name, arity)

    def encode_row(self, row: tuple) -> tuple:
        """Translate a raw value tuple into this backend's row space.

        The identity for the tuple backend; the columnar backend interns.
        Atom-level methods (:meth:`add_atom`, :meth:`atoms`,
        :meth:`has_fact`) translate here so relation-level methods can
        stay in the backend's native row space.
        """
        return row

    def decode_row(self, row: tuple) -> tuple:
        """Translate a stored row back to raw values (see :meth:`encode_row`)."""
        return row

    def add(self, predicate: str, row: tuple) -> bool:
        """Insert a value tuple; returns True iff it was new.

        *row* is in the backend's native row space (raw values for the
        tuple backend, interned ids for the columnar one) — this is the
        engines' entry point, and engines shuttle stored rows opaquely.
        """
        return self.relation(predicate, len(row)).add(row)

    def add_atom(self, atom: Atom) -> bool:
        """Insert a ground atom; returns True iff it was new."""
        return self.add(atom.predicate, self.encode_row(atom.ground_key()))

    def add_atoms(self, atoms: Iterable[Atom]) -> int:
        return sum(1 for atom in atoms if self.add_atom(atom))

    # --- queries -------------------------------------------------------------------
    def __contains__(self, predicate: str) -> bool:
        return predicate in self._relations

    def has_fact(self, atom: Atom) -> bool:
        """True iff the ground atom is stored."""
        relation = self._relations.get(atom.predicate)
        if relation is None:
            return False
        return atom.ground_key() in relation

    def predicates(self) -> frozenset[str]:
        return frozenset(self._relations)

    def relations(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def rows(self, predicate: str) -> frozenset[tuple]:
        """The tuples of *predicate* (empty when unknown)."""
        relation = self._relations.get(predicate)
        return relation.rows() if relation is not None else frozenset()

    def atoms(self, predicate: str) -> Iterator[Atom]:
        """Yield the stored facts of *predicate* as ground atoms.

        Atoms come out in insertion order (the backends' shared
        enumeration order), decoded to raw values.
        """
        relation = self._relations.get(predicate)
        if relation is None:
            return
        decode = self.decode_row
        for row in relation.scan():
            yield Atom(predicate, tuple(Constant(value) for value in decode(row)))

    def all_atoms(self) -> Iterator[Atom]:
        for predicate in sorted(self._relations):
            yield from self.atoms(predicate)

    def total_facts(self) -> int:
        return sum(len(relation) for relation in self._relations.values())

    def arity_of(self, predicate: str) -> int | None:
        relation = self._relations.get(predicate)
        return relation.arity if relation is not None else None

    # --- structural ------------------------------------------------------------------
    def copy(self) -> "Database":
        return Database(
            {name: relation.copy() for name, relation in self._relations.items()}
        )

    def merge(self, other: "Database") -> int:
        """Insert every fact of *other*; returns the number that were new."""
        added = 0
        for relation in other.relations():
            target = self.relation(relation.name, relation.arity)
            added += target.add_all(relation)
        return added

    def restrict(self, predicates: Iterable[str]) -> "Database":
        """A new database containing only the named predicates."""
        keep = set(predicates)
        return Database(
            {
                name: relation.copy()
                for name, relation in self._relations.items()
                if name in keep
            }
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        mine = {name: rel.rows() for name, rel in self._relations.items() if rel}
        theirs = {name: rel.rows() for name, rel in other._relations.items() if rel}
        return mine == theirs

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}/{relation.arity}:{len(relation)}"
            for name, relation in sorted(self._relations.items())
        )
        return f"Database({inner})"
