"""Interoperability with NetworkX.

Binary relations are directed graphs; this module converts between a
:class:`~repro.facts.database.Database` relation and a
``networkx.DiGraph``, so workloads can come from (or be inspected with)
the NetworkX ecosystem.  NetworkX is imported lazily — the rest of the
library has no dependency on it.

Example::

    import networkx as nx
    from repro.facts.nx_bridge import relation_from_graph, relation_to_graph

    database = relation_from_graph(nx.gnp_random_graph(30, 0.1, directed=True), "e")
    graph = relation_to_graph(database, "e")
"""

from __future__ import annotations


from .database import Database

__all__ = ["relation_from_graph", "relation_to_graph", "closure_via_networkx"]


def _networkx():
    try:
        import networkx
    except ImportError as error:  # pragma: no cover - env-dependent
        raise ImportError(
            "networkx is required for repro.facts.nx_bridge"
        ) from error
    return networkx


def relation_from_graph(
    graph, predicate: str, into: Database | None = None
) -> Database:
    """Store the edges of a (di)graph as a binary relation.

    Undirected graphs contribute both orientations of each edge.
    """
    database = into if into is not None else Database()
    database.relation(predicate, 2)
    directed = graph.is_directed()
    for source, target in graph.edges():
        database.add(predicate, (source, target))
        if not directed:
            database.add(predicate, (target, source))
    return database


def relation_to_graph(database: Database, predicate: str):
    """A ``networkx.DiGraph`` over the tuples of a binary relation."""
    networkx = _networkx()
    arity = database.arity_of(predicate)
    if arity is not None and arity != 2:
        raise ValueError(
            f"{predicate} has arity {arity}; only binary relations convert"
        )
    graph = networkx.DiGraph()
    for source, target in database.rows(predicate):
        graph.add_edge(source, target)
    return graph


def closure_via_networkx(database: Database, predicate: str) -> frozenset[tuple]:
    """The transitive closure of a binary relation, computed by NetworkX.

    An independent oracle the test suite checks the Datalog engines
    against: ``(u, v)`` is in the result iff v is reachable from u in one
    or more steps.
    """
    networkx = _networkx()
    graph = relation_to_graph(database, predicate)
    pairs: set[tuple] = set()
    for source in graph.nodes():
        for target in networkx.descendants(graph, source):
            pairs.add((source, target))
        # descendants() excludes the node itself; self-reachability holds
        # exactly when the node lies on a cycle through itself.
        if graph.has_edge(source, source):
            pairs.add((source, source))
        else:
            for neighbor in graph.successors(source):
                if source in networkx.descendants(graph, neighbor) or neighbor == source:
                    pairs.add((source, source))
                    break
    return frozenset(pairs)
