"""Post-transformation program optimisations.

The rewritings in this package can leave optimisation opportunities on
the table, especially when users compose them with hand-written rules:

* :func:`remove_duplicate_rules` — drop rules that are variants of an
  earlier rule (equal up to variable renaming).
* :func:`restrict_to_goal` — drop rules whose head predicate cannot
  contribute to the goal (backward reachability over the dependency
  graph).  The adornment pass only generates reachable rules, so this
  mostly matters for user programs with unrelated rule groups.
* :func:`inline_bridge_predicates` — unfold *bridge* predicates: a
  non-recursive predicate defined by exactly one single-literal rule
  whose head and body share the same distinct-variable arguments (a pure
  renaming).  Continuation chains of one-literal rules produced by the
  Alexander/supplementary rewritings on unary-body rules have this shape.
* :func:`optimize_program` — the three passes composed, to fixpoint.

Every pass preserves the answers of every predicate it keeps (checked by
the test suite against the unoptimised evaluation).
"""

from __future__ import annotations

from typing import Iterable

from ..datalog.atoms import Atom, Literal
from ..datalog.rules import Program, Rule
from ..datalog.terms import Variable

__all__ = [
    "remove_duplicate_rules",
    "restrict_to_goal",
    "inline_bridge_predicates",
    "optimize_program",
]


def _rule_key(rule: Rule) -> tuple:
    """A canonical key equal for exactly the variants of *rule*."""
    numbering: dict[Variable, int] = {}
    parts: list[object] = []

    def encode(atom: Atom, positive: bool) -> None:
        parts.append((atom.predicate, positive))
        for arg in atom.args:
            if isinstance(arg, Variable):
                parts.append(("v", numbering.setdefault(arg, len(numbering))))
            else:
                parts.append(("c", arg.value))

    encode(rule.head, True)
    for literal in rule.body:
        encode(literal.atom, literal.positive)
    return tuple(parts)


def remove_duplicate_rules(program: Program) -> Program:
    """Drop rules that are variants of an earlier rule."""
    seen: set[tuple] = set()
    kept: list[Rule] = []
    for rule in program:
        key = _rule_key(rule)
        if key not in seen:
            seen.add(key)
            kept.append(rule)
    return Program(kept)


def restrict_to_goal(program: Program, goal: Atom) -> Program:
    """Keep only rules whose head the goal (transitively) depends on."""
    needed: set[str] = {goal.predicate}
    changed = True
    while changed:
        changed = False
        for rule in program.proper_rules:
            if rule.head.predicate in needed:
                for literal in rule.body:
                    if literal.predicate not in needed:
                        needed.add(literal.predicate)
                        changed = True
    kept = [
        rule
        for rule in program
        if rule.head.predicate in needed
    ]
    return Program(kept)


def _bridge_definition(program: Program, predicate: str) -> Rule | None:
    """The defining rule if *predicate* is a pure-renaming bridge."""
    rules = program.rules_for(predicate)
    if len(rules) != 1:
        return None
    rule = rules[0]
    if len(rule.body) != 1 or not rule.body[0].positive:
        return None
    body_atom = rule.body[0].atom
    if body_atom.predicate == predicate:
        return None  # recursive
    head_args = rule.head.args
    # Head args must be distinct variables, all drawn from the body atom.
    if len(set(head_args)) != len(head_args):
        return None
    if not all(isinstance(arg, Variable) for arg in head_args):
        return None
    body_vars = set(body_atom.variable_set())
    if not set(head_args) <= body_vars:
        return None
    # The body atom itself must be variable-only and duplicate-free, so
    # substituting it in cannot change multiplicities or add filters.
    if not all(isinstance(arg, Variable) for arg in body_atom.args):
        return None
    if len(set(body_atom.args)) != len(body_atom.args):
        return None
    if set(body_atom.args) != set(head_args):
        return None
    return rule


def inline_bridge_predicates(
    program: Program, protected: Iterable[str] = ()
) -> Program:
    """Unfold pure-renaming bridge predicates into their uses.

    Args:
        protected: predicates that must survive (the goal predicate, and
            any predicate whose extension the caller reads out).
    """
    protected_set = set(protected)
    # Only predicates referenced in some body can be inlined away; an
    # unreferenced predicate is an output whose extension must survive.
    referenced = {
        literal.predicate
        for rule in program.proper_rules
        for literal in rule.body
    }
    # A predicate with program facts is not a pure renaming: inlining its
    # one proper rule would silently drop the facts (e.g. the seed
    # call__goal fact the Alexander rewriting plants next to a
    # call-propagation rule).
    fact_heads = {fact.predicate for fact in program.facts}
    bridges: dict[str, Rule] = {}
    for predicate in program.idb_predicates:
        if (
            predicate in protected_set
            or predicate not in referenced
            or predicate in fact_heads
        ):
            continue
        definition = _bridge_definition(program, predicate)
        if definition is not None:
            bridges[predicate] = definition
    # Bridges may form cycles (a :- b. b :- a.); inlining a cycle would
    # chase it forever, so every bridge on a cycle is demoted.
    def reaches_cycle(start: str) -> bool:
        seen: set[str] = set()
        current = start
        while current in bridges:
            if current in seen:
                return True
            seen.add(current)
            current = bridges[current].body[0].predicate
        return False

    for predicate in [p for p in bridges if reaches_cycle(p)]:
        bridges.pop(predicate, None)
    if not bridges:
        return program

    def rewrite_literal(literal: Literal) -> Literal:
        definition = bridges.get(literal.predicate)
        if definition is None:
            return literal
        # Map the bridge head's variables to this occurrence's arguments.
        mapping = dict(zip(definition.head.args, literal.atom.args))
        target = definition.body[0].atom.substitute(mapping)
        replaced = Literal(target, literal.positive)
        # The replacement may itself be a bridge (chains): recurse.
        return rewrite_literal(replaced) if target.predicate in bridges else replaced

    kept: list[Rule] = []
    for rule in program:
        if rule.head.predicate in bridges:
            continue
        kept.append(
            Rule(rule.head, tuple(rewrite_literal(lit) for lit in rule.body))
        )
    return Program(kept)


def optimize_program(program: Program, goal: Atom) -> Program:
    """Duplicates out, goal-irrelevant rules out, bridges inlined — to
    fixpoint."""
    current = program
    while True:
        optimized = remove_duplicate_rules(current)
        optimized = restrict_to_goal(optimized, goal)
        optimized = inline_bridge_predicates(
            optimized, protected=(goal.predicate,)
        )
        if optimized == current:
            return optimized
        current = optimized
