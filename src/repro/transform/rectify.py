"""Rule rectification: eliminating repeated variables in body literals.

A body literal with a repeated variable — ``p(Y, Y)`` — induces a call
pattern that positional adornments cannot express, which is the one case
where the Alexander/OLDT correspondence is not syntactically exact (see
``repro.core.compare``).  Classical rectification removes the repeats:
every second-and-later occurrence of a variable inside one body literal is
replaced by a fresh variable, tied back with an equality literal::

    p0(X, Y) :- p1(Y, Y),  e0(X, Y).
    ==>
    p0(X, Y) :- p1(Y, Y2), eq(Y, Y2), e0(X, Y).

``eq`` is an ordinary extensional relation holding ``eq(c, c)`` for every
constant of the active domain; :func:`equality_facts` builds it from a
database.  Rectified programs have distinct-variable body literals, so
the exact correspondence theorem applies (property-tested in
``tests/test_fuzz_programs.py``).

Head atoms are left untouched: repeated head variables are expressible in
adornments and tables alike, and rewriting them would change the
predicate's interface.
"""

from __future__ import annotations


from ..datalog.atoms import Atom, Literal
from ..datalog.rules import Program, Rule
from ..datalog.terms import Variable
from ..facts.database import Database

__all__ = ["rectify_rule", "rectify_program", "equality_facts", "EQ_PREDICATE"]

EQ_PREDICATE = "eq"


def _fresh_name(base: str, taken: set[str]) -> str:
    counter = 2
    candidate = f"{base}{counter}"
    while candidate in taken:
        counter += 1
        candidate = f"{base}{counter}"
    taken.add(candidate)
    return candidate


def rectify_rule(rule: Rule, eq_predicate: str = EQ_PREDICATE) -> Rule:
    """Split repeated variables in each body literal of *rule*.

    Negative literals are rectified too; the equality literal that binds
    the fresh variable is positive, so safety is preserved.
    """
    taken = {var.name for var in rule.variables()}
    new_body: list[Literal] = []
    for literal in rule.body:
        seen: set[Variable] = set()
        new_args = []
        equalities: list[Literal] = []
        for arg in literal.args:
            if isinstance(arg, Variable) and arg in seen:
                fresh = Variable(_fresh_name(arg.name, taken))
                new_args.append(fresh)
                equalities.append(
                    Literal(Atom(eq_predicate, (arg, fresh)))
                )
            else:
                if isinstance(arg, Variable):
                    seen.add(arg)
                new_args.append(arg)
        if equalities:
            rewritten = Literal(
                Atom(literal.predicate, tuple(new_args)), literal.positive
            )
            if literal.positive:
                new_body.append(rewritten)
                new_body.extend(equalities)
            else:
                # For a negative literal the fresh variables must be bound
                # *before* the check; put the equalities first.
                new_body.extend(equalities)
                new_body.append(rewritten)
        else:
            new_body.append(literal)
    return Rule(rule.head, tuple(new_body))


def rectify_program(
    program: Program, eq_predicate: str = EQ_PREDICATE
) -> Program:
    """Rectify every rule of *program* (facts pass through unchanged)."""
    return Program(
        tuple(
            rectify_rule(rule, eq_predicate) if rule.body else rule
            for rule in program
        )
    )


def needs_rectification(program: Program) -> bool:
    """True iff some body literal repeats a variable."""
    for rule in program.proper_rules:
        for literal in rule.body:
            variables = [
                arg for arg in literal.args if isinstance(arg, Variable)
            ]
            if len(variables) != len(set(variables)):
                return True
    return False


def equality_facts(
    database: Database,
    program: Program | None = None,
    eq_predicate: str = EQ_PREDICATE,
) -> Database:
    """A copy of *database* extended with ``eq(c, c)`` for the active domain.

    The active domain is every constant occurring in *database* plus, when
    given, every constant of *program*.
    """
    extended = database.copy()
    domain: set[object] = set()
    for relation in database.relations():
        for row in relation:
            domain.update(row)
    if program is not None:
        domain.update(program.constants())
    extended.relation(eq_predicate, 2)
    for value in domain:
        extended.add(eq_predicate, (value, value))
    return extended
