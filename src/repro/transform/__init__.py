"""Query transformations: adornment, magic sets, supplementary magic,
and the Alexander templates."""

from .adorn import AdornedProgram, AdornedRule, adorn_program, query_adornment
from .alexander import alexander_templates, alexander_transform_adorned
from .common import TransformedProgram
from .magic import magic_sets, magic_transform_adorned
from .optimize import (
    inline_bridge_predicates,
    optimize_program,
    remove_duplicate_rules,
    restrict_to_goal,
)
from .rectify import (
    equality_facts,
    needs_rectification,
    rectify_program,
    rectify_rule,
)
from .sips import left_to_right, most_bound_first, named_sips
from .supplementary import (
    supplementary_magic_sets,
    supplementary_transform_adorned,
)

__all__ = [
    "AdornedProgram",
    "AdornedRule",
    "adorn_program",
    "query_adornment",
    "TransformedProgram",
    "magic_sets",
    "magic_transform_adorned",
    "supplementary_magic_sets",
    "supplementary_transform_adorned",
    "alexander_templates",
    "alexander_transform_adorned",
    "left_to_right",
    "most_bound_first",
    "named_sips",
    "optimize_program",
    "remove_duplicate_rules",
    "restrict_to_goal",
    "inline_bridge_predicates",
    "rectify_rule",
    "rectify_program",
    "needs_rectification",
    "equality_facts",
]
