"""Shared machinery of the transformation family.

Adorned-predicate naming, bound-argument extraction, the
"variables a continuation must carry" computation shared by the
supplementary-magic and Alexander transformations, and the
:class:`TransformedProgram` result record consumed by the strategy layer
and the correspondence checker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..datalog.atoms import Atom, Literal
from ..datalog.rules import Program, Rule
from ..datalog.terms import Constant, Term, Variable
from ..errors import TransformError
from ..obs import get_metrics

__all__ = [
    "Adornment",
    "adornment_for",
    "bound_args",
    "free_args",
    "adorned_name",
    "prefixed_name",
    "carried_variables",
    "observe_transform",
    "TransformedProgram",
]


def observe_transform(kind: str, rewritten_rules: int) -> None:
    """Record one query rewriting in the active metrics registry.

    Every transformation entry point calls this exactly once per
    rewriting, so ``transform.rewritings`` counts how often the
    parse/adorn/transform pipeline actually ran — the quantity the
    prepared-query cache exists to drive to zero on its hit path (the
    serve smoke test asserts it stays flat across a cache hit).
    """
    obs = get_metrics()
    if obs.enabled:
        obs.incr("transform.rewritings")
        obs.incr(f"transform.{kind}")
        obs.observe("transform.rewritten_rules", rewritten_rules)

# An adornment is a string over {'b', 'f'}, one character per argument.
Adornment = str


def adornment_for(atom: Atom, bound_vars: frozenset[Variable] | set[Variable]) -> Adornment:
    """The adornment of *atom* given the variables bound so far.

    An argument is bound when it is a constant or a bound variable.
    """
    return "".join(
        "b" if isinstance(arg, Constant) or arg in bound_vars else "f"
        for arg in atom.args
    )


def bound_args(atom: Atom, adornment: Adornment) -> tuple[Term, ...]:
    """The argument terms at the bound positions of *adornment*."""
    if len(adornment) != atom.arity:
        raise TransformError(
            f"adornment {adornment} does not fit {atom.predicate}/{atom.arity}"
        )
    return tuple(
        arg for arg, flag in zip(atom.args, adornment) if flag == "b"
    )


def free_args(atom: Atom, adornment: Adornment) -> tuple[Term, ...]:
    """The argument terms at the free positions of *adornment*."""
    return tuple(
        arg for arg, flag in zip(atom.args, adornment) if flag == "f"
    )


def adorned_name(predicate: str, adornment: Adornment, taken: Iterable[str]) -> str:
    """A collision-free name for ``predicate`` adorned with ``adornment``.

    Zero-arity predicates get the adornment suffix ``0`` so the name stays
    distinct from the plain predicate.
    """
    suffix = adornment if adornment else "0"
    candidate = f"{predicate}__{suffix}"
    taken_set = set(taken)
    while candidate in taken_set:
        candidate += "_"
    return candidate


def prefixed_name(prefix: str, base: str, taken: Iterable[str]) -> str:
    """A collision-free ``prefix__base`` name (e.g. ``magic__anc__bf``)."""
    candidate = f"{prefix}__{base}"
    taken_set = set(taken)
    while candidate in taken_set:
        candidate += "_"
    return candidate


def carried_variables(
    already_bound: set[Variable],
    remaining_literals: Sequence[Literal],
    head: Atom,
) -> tuple[Variable, ...]:
    """Variables a supplementary/continuation predicate must carry.

    These are the variables bound so far that are still *needed*: they
    occur in a later body literal or in the head.  Sorted by name for a
    deterministic argument layout.
    """
    needed: set[Variable] = set(head.variables())
    for literal in remaining_literals:
        needed.update(literal.variables())
    return tuple(sorted(already_bound & needed, key=lambda v: v.name))


@dataclass(frozen=True)
class TransformedProgram:
    """The output of a query transformation.

    Attributes:
        program: the rewritten rules (no facts; EDB stays in the caller's
            database).
        goal: the atom to evaluate against the rewritten program to obtain
            the query's answers (e.g. ``anc__bf(a, X)`` for magic sets or
            ``ans__anc__bf(a, X)`` for Alexander templates).
        seeds: ground facts to add before evaluation (the magic seed /
            the initial call fact).
        answer_predicate: predicate of ``goal``.
        call_predicates: rewritten-name -> original ``(predicate,
            adornment)`` for the call/magic predicates, used by the
            correspondence checker.
        answer_predicates: rewritten-name -> original ``(predicate,
            adornment)`` for the answer-carrying predicates.
        original_query: the untransformed query atom.
        kind: transformation label ("magic", "supplementary", "alexander").
    """

    program: Program
    goal: Atom
    seeds: tuple[Atom, ...]
    answer_predicate: str
    call_predicates: Mapping[str, tuple[str, Adornment]]
    answer_predicates: Mapping[str, tuple[str, Adornment]]
    original_query: Atom
    kind: str

    def evaluation_program(self) -> Program:
        """The rewritten program with the seed facts embedded."""
        seed_rules = tuple(Rule(seed, ()) for seed in self.seeds)
        return Program(seed_rules + self.program.rules)
