"""Sideways information passing strategies (SIPS).

A SIPS decides the order in which a rule's body literals are evaluated,
and therefore which bindings each literal receives from its left — the
choice that shapes the adorned program and everything built on it.

Two strategies are provided:

* :func:`left_to_right` — keep the program's own literal order (negative
  literals are still delayed until their variables are bound).  This is
  the order OLDT's leftmost selection uses, so it is the SIPS under which
  Seki's Alexander/OLDT correspondence is exact.
* :func:`most_bound_first` — greedily pick the positive literal with the
  highest fraction of bound arguments next (ties broken by program
  order).  Used by the A1 ablation to show that the SIPS changes counts
  but not answers.

Both return a permutation of the body with every negative literal placed
after the positive literals that bind its variables.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..datalog.atoms import Literal
from ..datalog.builtins import is_builtin
from ..datalog.terms import Constant, Variable
from ..errors import SafetyError


def _is_test(literal: Literal) -> bool:
    """Tests (negatives and built-ins) check; they never bind."""
    return literal.negative or is_builtin(literal.predicate)

__all__ = ["Sips", "left_to_right", "most_bound_first", "named_sips"]

# A SIPS maps (body, variables bound by the head) to an evaluation order.
Sips = Callable[[Sequence[Literal], frozenset[Variable]], tuple[Literal, ...]]


def _place_negatives(
    positives: Sequence[Literal],
    negatives: Sequence[Literal],
    initially_bound: frozenset[Variable],
) -> tuple[Literal, ...]:
    """Interleave negative literals at the earliest point they are bound."""
    available = set(initially_bound)
    ordered: list[Literal] = []
    pending = list(negatives)

    def flush() -> None:
        nonlocal pending
        still = []
        for negative in pending:
            if negative.variable_set() <= available:
                ordered.append(negative)
            else:
                still.append(negative)
        pending = still

    flush()
    for literal in positives:
        ordered.append(literal)
        available.update(literal.variables())
        flush()
    if pending:
        names = sorted(
            var.name
            for negative in pending
            for var in negative.variable_set() - available
        )
        raise SafetyError(
            "negative literal(s) with variables never bound: "
            + ", ".join(names)
        )
    return tuple(ordered)


def left_to_right(
    body: Sequence[Literal], bound: frozenset[Variable]
) -> tuple[Literal, ...]:
    """Program order for binding literals; tests delayed until bound."""
    positives = [lit for lit in body if not _is_test(lit)]
    negatives = [lit for lit in body if _is_test(lit)]
    return _place_negatives(positives, negatives, bound)


def most_bound_first(
    body: Sequence[Literal], bound: frozenset[Variable]
) -> tuple[Literal, ...]:
    """Greedy: next positive literal = highest bound-argument fraction.

    A literal with no arguments scores 1.0 (fully bound).  Ties are broken
    by the original body position, keeping the strategy deterministic.
    """
    positives = list(lit for lit in body if not _is_test(lit))
    negatives = [lit for lit in body if _is_test(lit)]
    available: set[Variable] = set(bound)
    chosen: list[Literal] = []
    remaining = list(enumerate(positives))
    while remaining:
        def score(item: tuple[int, Literal]) -> tuple[float, int]:
            _, literal = item
            if not literal.args:
                fraction = 1.0
            else:
                bound_count = sum(
                    1
                    for arg in literal.args
                    if isinstance(arg, Constant) or arg in available
                )
                fraction = bound_count / len(literal.args)
            # Negate fraction so max-bound sorts first; keep index for ties.
            return (-fraction, item[0])

        remaining.sort(key=score)
        index, literal = remaining.pop(0)
        chosen.append(literal)
        available.update(literal.variables())
    return _place_negatives(chosen, negatives, bound)


def named_sips(name: str) -> Sips:
    """Look up a SIPS by name ("left_to_right" or "most_bound_first")."""
    strategies: dict[str, Sips] = {
        "left_to_right": left_to_right,
        "most_bound_first": most_bound_first,
    }
    try:
        return strategies[name]
    except KeyError:
        raise ValueError(
            f"unknown SIPS {name!r}; choose from {sorted(strategies)}"
        ) from None
