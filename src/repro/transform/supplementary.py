"""The supplementary magic sets transformation (Beeri–Ramakrishnan 1987).

Supplementary magic factors the shared body prefixes that plain magic
re-evaluates.  For an adorned rule ``r: p_a(t) :- L1, ..., Ln`` it emits::

    sup_r_i(Vi)    :- sup_r_(i-1)(V(i-1)), Li.       (1 <= i <= n-1)
    magic_q_b(s^b) :- sup_r_(i-1)(V(i-1)).           (Li = q_b(s) IDB)
    p_a(t)         :- sup_r_(n-1)(V(n-1)), Ln.

where ``sup_r_0`` is identified with the rule's magic guard
``magic_p_a(t^b)`` (as in BR87), and ``Vi`` is the set of variables bound
after ``L1..Li`` that are still needed by a later literal or by the head
(:func:`carried_variables`).

Up to predicate renaming this is the Alexander method's continuation
structure — the supplementary predicates are the Alexander ``cont``
predicates, the magic predicates the Alexander ``call`` predicates, and
the adorned predicates its ``ans`` predicates; experiment T3 verifies the
equivalence empirically.
"""

from __future__ import annotations

from ..datalog.atoms import Atom, Literal
from ..datalog.rules import Program, Rule
from ..datalog.terms import Constant, Variable
from ..errors import TransformError
from .adorn import AdornedProgram, AdornedRule, adorn_program
from .common import (
    TransformedProgram,
    bound_args,
    carried_variables,
    observe_transform,
    prefixed_name,
)
from .sips import Sips, left_to_right

__all__ = ["supplementary_magic_sets", "supplementary_transform_adorned"]


def supplementary_transform_adorned(adorned: AdornedProgram) -> TransformedProgram:
    """Apply the supplementary-magic rewriting to an adorned program."""
    taken = set(adorned.edb_predicates)
    for adorned_rule in adorned.rules:
        taken.add(adorned_rule.rule.head.predicate)
        for literal in adorned_rule.rule.body:
            taken.add(literal.predicate)

    magic_names: dict[str, str] = {}

    def magic_name(adorned_predicate: str) -> str:
        existing = magic_names.get(adorned_predicate)
        if existing is not None:
            return existing
        fresh = prefixed_name("magic", adorned_predicate, taken)
        taken.add(fresh)
        magic_names[adorned_predicate] = fresh
        return fresh

    adorned_idb = {rule.rule.head.predicate for rule in adorned.rules}
    rewritten: list[Rule] = []
    for index, adorned_rule in enumerate(adorned.rules):
        rewritten.extend(
            _rewrite_rule(adorned_rule, index, adorned_idb, magic_name, taken)
        )

    query = adorned.query
    adornment = adorned.query_key[1]
    seed_args = bound_args(query, adornment)
    if not all(isinstance(arg, Constant) for arg in seed_args):
        raise TransformError(f"query {query} has a non-constant bound argument")
    seed = Atom(magic_name(query.predicate), seed_args)

    call_predicates = {
        magic: adorned.originals[adorned_pred]
        for adorned_pred, magic in magic_names.items()
        if adorned_pred in adorned.originals
    }
    answer_predicates = {name: key for key, name in adorned.names.items()}
    observe_transform("supplementary", len(rewritten))
    return TransformedProgram(
        program=Program(rewritten),
        goal=query,
        seeds=(seed,),
        answer_predicate=query.predicate,
        call_predicates=call_predicates,
        answer_predicates=answer_predicates,
        original_query=Atom(adorned.query_key[0], query.args),
        kind="supplementary",
    )


def _rewrite_rule(
    adorned_rule: AdornedRule,
    rule_index: int,
    adorned_idb: set[str],
    magic_name,
    taken: set[str],
) -> list[Rule]:
    rule = adorned_rule.rule
    head = rule.head
    body = rule.body
    head_magic = Atom(
        magic_name(head.predicate),
        bound_args(head, adorned_rule.head_adornment),
    )
    produced: list[Rule] = []

    bound: set[Variable] = {
        arg
        for arg, flag in zip(head.args, adorned_rule.head_adornment)
        if flag == "b" and isinstance(arg, Variable)
    }

    if not body:
        # Degenerate: a rule with an empty body (ground head) just needs
        # the magic guard.
        produced.append(Rule(head, (Literal(head_magic),)))
        return produced

    def sup_name(i: int) -> str:
        fresh = prefixed_name(f"sup_{rule_index}_{i}", head.predicate, taken)
        taken.add(fresh)
        return fresh

    # sup_r_0 is identified with the magic predicate itself (as in BR87):
    # the initial supplementary state is the magic guard literal.
    sup_atom = head_magic

    for position, (literal, key) in enumerate(
        zip(body, adorned_rule.body_adornments)
    ):
        is_last = position == len(body) - 1
        if (
            key is not None
            and literal.positive
            and literal.predicate in adorned_idb
        ):
            _, literal_adornment = key
            magic_head = Atom(
                magic_name(literal.predicate),
                bound_args(literal.atom, literal_adornment),
            )
            produced.append(Rule(magic_head, (Literal(sup_atom),)))
        if literal.positive:
            bound.update(literal.variables())
        if is_last:
            produced.append(Rule(head, (Literal(sup_atom), literal)))
        else:
            carried = carried_variables(bound, body[position + 1 :], head)
            next_sup = Atom(sup_name(position + 1), carried)
            produced.append(Rule(next_sup, (Literal(sup_atom), literal)))
            sup_atom = next_sup
    return produced


def supplementary_magic_sets(
    program: Program,
    query: Atom,
    sips: Sips = left_to_right,
    edb_predicates: frozenset[str] | None = None,
) -> TransformedProgram:
    """Adorn *program* for *query* and apply supplementary magic."""
    adorned = adorn_program(program, query, sips, edb_predicates)
    return supplementary_transform_adorned(adorned)
