"""Adornment: specialising a program by binding-pattern propagation.

Given a program and a query, adornment produces one specialised copy of
each reachable rule per distinct binding pattern ("adornment") of its head
predicate, with body literals reordered by the chosen SIPS.  IDB body
literals are renamed to their adorned versions (``anc`` queried with its
first argument bound becomes ``anc__bf``); EDB literals keep their names.

The adorned program is the common input of the magic-sets, supplementary
magic, and Alexander transformations, and its construction is the first
step of the Generalized Magic Sets procedure of Beeri–Ramakrishnan 1987.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..datalog.atoms import Atom, Literal
from ..datalog.rules import Program, Rule
from ..datalog.terms import Constant, Variable
from ..errors import TransformError
from .common import Adornment, adorned_name, adornment_for
from .sips import Sips, left_to_right

__all__ = ["AdornedRule", "AdornedProgram", "adorn_program", "query_adornment"]


@dataclass(frozen=True)
class AdornedRule:
    """A rule specialised to one head adornment.

    Attributes:
        rule: the rewritten rule (head and IDB body literals renamed).
        head_predicate: original head predicate name.
        head_adornment: the head's binding pattern.
        body_adornments: per body literal (in the rewritten order), the
            ``(original predicate, adornment)`` for IDB literals and
            ``None`` for EDB literals.
        original: the source rule.
    """

    rule: Rule
    head_predicate: str
    head_adornment: Adornment
    body_adornments: tuple[tuple[str, Adornment] | None, ...]
    original: Rule


@dataclass(frozen=True)
class AdornedProgram:
    """An adorned program plus the bookkeeping other passes need.

    Attributes:
        rules: the adorned rules, in generation order (query predicate's
            rules first, then breadth-first through reachable adornments).
        query: the adorned query atom (renamed predicate).
        query_key: ``(predicate, adornment)`` of the query.
        names: ``(original predicate, adornment) -> adorned name``.
        originals: inverse of ``names``.
        edb_predicates: predicates treated as extensional (left unrenamed).
    """

    rules: tuple[AdornedRule, ...]
    query: Atom
    query_key: tuple[str, Adornment]
    names: Mapping[tuple[str, Adornment], str]
    originals: Mapping[str, tuple[str, Adornment]]
    edb_predicates: frozenset[str]

    def program(self) -> Program:
        """The adorned rules as a plain program."""
        return Program(tuple(adorned.rule for adorned in self.rules))

    def adorned_predicates(self) -> tuple[str, ...]:
        return tuple(self.names.values())


def query_adornment(query: Atom) -> Adornment:
    """The adornment induced by a query atom: 'b' at constant positions.

    A repeated variable is free at every occurrence (variant-based
    tabling treats ``anc(X, X)`` as a pattern, not a binding).
    """
    return "".join(
        "b" if isinstance(arg, Constant) else "f" for arg in query.args
    )


def adorn_program(
    program: Program,
    query: Atom,
    sips: Sips = left_to_right,
    edb_predicates: frozenset[str] | None = None,
) -> AdornedProgram:
    """Adorn *program* for *query*.

    Args:
        program: the source rules (facts are ignored here; they stay in
            the database).
        query: the query atom; its constants define the initial adornment.
        sips: the sideways information passing strategy.
        edb_predicates: predicates to treat as extensional.  Defaults to
            the program's own EDB; the stratified pipeline passes a larger
            set (lower-stratum predicates are materialised up front and
            then treated as base relations).

    Raises:
        TransformError: when the query predicate has no rules (nothing to
            specialise).
    """
    if edb_predicates is None:
        edb_predicates = program.edb_predicates
    idb = program.idb_predicates - edb_predicates
    if query.predicate not in idb:
        raise TransformError(
            f"query predicate {query.predicate} is not an IDB predicate "
            "of the program"
        )
    taken: set[str] = set(program.predicates)
    names: dict[tuple[str, Adornment], str] = {}
    rules: list[AdornedRule] = []
    worklist: list[tuple[str, Adornment]] = []

    def name_for(key: tuple[str, Adornment]) -> str:
        existing = names.get(key)
        if existing is not None:
            return existing
        fresh = adorned_name(key[0], key[1], taken)
        taken.add(fresh)
        names[key] = fresh
        worklist.append(key)
        return fresh

    query_key = (query.predicate, query_adornment(query))
    query_name = name_for(query_key)

    processed: set[tuple[str, Adornment]] = set()
    while worklist:
        key = worklist.pop(0)
        if key in processed:
            continue
        processed.add(key)
        predicate, adornment = key
        for rule in program.rules_for(predicate):
            rules.append(_adorn_rule(rule, key, name_for, idb, sips))

    originals = {name: key for key, name in names.items()}
    adorned_query = Atom(query_name, query.args)
    return AdornedProgram(
        rules=tuple(rules),
        query=adorned_query,
        query_key=query_key,
        names=dict(names),
        originals=originals,
        edb_predicates=frozenset(edb_predicates),
    )


def _adorn_rule(
    rule: Rule,
    head_key: tuple[str, Adornment],
    name_for,
    idb: frozenset[str],
    sips: Sips,
) -> AdornedRule:
    predicate, adornment = head_key
    if len(adornment) != rule.head.arity:
        raise TransformError(
            f"adornment {adornment} does not fit head {rule.head}"
        )
    bound: set[Variable] = {
        arg
        for arg, flag in zip(rule.head.args, adornment)
        if flag == "b" and isinstance(arg, Variable)
    }
    ordered = sips(rule.body, frozenset(bound))
    new_body: list[Literal] = []
    body_adornments: list[tuple[str, Adornment] | None] = []
    for literal in ordered:
        if literal.predicate in idb:
            literal_adornment = adornment_for(literal.atom, bound)
            key = (literal.predicate, literal_adornment)
            renamed = Atom(name_for(key), literal.atom.args)
            new_body.append(Literal(renamed, literal.positive))
            body_adornments.append(key)
        else:
            new_body.append(literal)
            body_adornments.append(None)
        if literal.positive:
            bound.update(literal.variables())
    new_head = Atom(name_for(head_key), rule.head.args)
    return AdornedRule(
        rule=Rule(new_head, tuple(new_body)),
        head_predicate=predicate,
        head_adornment=adornment,
        body_adornments=tuple(body_adornments),
        original=rule,
    )
