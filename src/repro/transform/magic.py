"""The Generalized Magic Sets transformation (Bancilhon–Maier–Sagiv–Ullman
1986; Beeri–Ramakrishnan 1987).

For each adorned rule ``p_a(t) :- L1, ..., Ln``:

* the *modified rule* guards the original body with the magic predicate::

      p_a(t) :- magic_p_a(t^b), L1, ..., Ln.

* for each IDB body literal ``Li = q_b(s)``, a *magic rule* derives the
  subqueries ``q`` will be asked::

      magic_q_b(s^b) :- magic_p_a(t^b), L1, ..., L(i-1).

The query seeds ``magic_{query}`` with its bound constants.  Compared with
supplementary magic / Alexander, the magic rules re-evaluate the body
prefix ``L1..L(i-1)`` once per IDB literal — the duplicated join work that
experiment T3 measures.

Negative body literals may appear in rewritten rules (they refer to
materialised lower-stratum or EDB relations in the stratified pipeline)
but never contribute magic rules: no subquery is generated for a
negation-as-failure test.
"""

from __future__ import annotations

from ..datalog.atoms import Atom, Literal
from ..datalog.rules import Program, Rule
from ..datalog.terms import Constant
from ..errors import TransformError
from .adorn import AdornedProgram, AdornedRule, adorn_program
from .common import (
    TransformedProgram,
    bound_args,
    observe_transform,
    prefixed_name,
)
from .sips import Sips, left_to_right

__all__ = ["magic_sets", "magic_transform_adorned"]


def magic_transform_adorned(adorned: AdornedProgram) -> TransformedProgram:
    """Apply the magic-sets rewriting to an already adorned program."""
    taken = set()
    for adorned_rule in adorned.rules:
        taken.add(adorned_rule.rule.head.predicate)
        for literal in adorned_rule.rule.body:
            taken.add(literal.predicate)
    taken.update(adorned.edb_predicates)

    magic_names: dict[str, str] = {}

    def magic_name(adorned_predicate: str) -> str:
        existing = magic_names.get(adorned_predicate)
        if existing is not None:
            return existing
        fresh = prefixed_name("magic", adorned_predicate, taken)
        taken.add(fresh)
        magic_names[adorned_predicate] = fresh
        return fresh

    adorned_idb = {rule.rule.head.predicate for rule in adorned.rules}
    rewritten: list[Rule] = []
    for adorned_rule in adorned.rules:
        rewritten.extend(_rewrite_rule(adorned_rule, adorned_idb, magic_name))

    # Seed: the magic fact for the query's bound arguments.
    query = adorned.query
    adornment = adorned.query_key[1]
    seed_args = bound_args(query, adornment)
    if not all(isinstance(arg, Constant) for arg in seed_args):
        raise TransformError(
            f"query {query} has a non-constant bound argument"
        )
    seed = Atom(magic_name(query.predicate), seed_args)

    call_predicates = {
        magic: adorned.originals[adorned_pred]
        for adorned_pred, magic in magic_names.items()
        if adorned_pred in adorned.originals
    }
    answer_predicates = {
        name: key for key, name in adorned.names.items()
    }
    observe_transform("magic", len(rewritten))
    return TransformedProgram(
        program=Program(rewritten),
        goal=query,
        seeds=(seed,),
        answer_predicate=query.predicate,
        call_predicates=call_predicates,
        answer_predicates=answer_predicates,
        original_query=Atom(adorned.query_key[0], query.args),
        kind="magic",
    )


def _rewrite_rule(
    adorned_rule: AdornedRule,
    adorned_idb: set[str],
    magic_name,
) -> list[Rule]:
    rule = adorned_rule.rule
    head_magic = Atom(
        magic_name(rule.head.predicate),
        bound_args(rule.head, adorned_rule.head_adornment),
    )
    produced: list[Rule] = []
    prefix: list[Literal] = [Literal(head_magic)]
    for literal, key in zip(rule.body, adorned_rule.body_adornments):
        if key is not None and literal.positive and literal.predicate in adorned_idb:
            _, literal_adornment = key
            magic_head = Atom(
                magic_name(literal.predicate),
                bound_args(literal.atom, literal_adornment),
            )
            produced.append(Rule(magic_head, tuple(prefix)))
        prefix.append(literal)
    produced.append(Rule(rule.head, tuple(prefix)))
    return produced


def magic_sets(
    program: Program,
    query: Atom,
    sips: Sips = left_to_right,
    edb_predicates: frozenset[str] | None = None,
) -> TransformedProgram:
    """Adorn *program* for *query* and apply the magic-sets rewriting."""
    adorned = adorn_program(program, query, sips, edb_predicates)
    return magic_transform_adorned(adorned)
