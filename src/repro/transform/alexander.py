"""The Alexander templates transformation (Rohmer–Lescoeur–Kerisit 1986).

The Alexander method compiles a query against a recursive program into
rules over three predicate families, intended for bottom-up (semi-naive)
evaluation:

* ``call_p_a``  — "problem" facts: the subqueries that arise, carrying the
  bound arguments of the adorned call pattern;
* ``ans_p_a``   — "solution" facts: answers to those subqueries, carrying
  the full argument tuple;
* ``cont_r_i``  — continuation facts threading a rule body: the variable
  bindings accumulated after the first ``i`` body literals that are still
  needed downstream.

For an adorned rule ``r: p_a(t) :- L1, ..., Ln`` the templates are::

    call_q_b(s^b) :- state_(i-1).                 (Li = q_b(s) IDB)
    cont_r_i(Vi)  :- state_(i-1), Ri.             (1 <= i <= n-1)
    ans_p_a(t)    :- state_(n-1), Rn.

where ``state_0`` is ``call_p_a(t^b)``, ``state_i`` is ``cont_r_i(Vi)``,
and ``Ri`` is ``ans_q_b(s)`` when ``Li`` is an IDB literal and ``Li``
itself when it is extensional (EDB literals are resolved inline, exactly
as OLDT resolves base relations by lookup).  The query seeds one
``call`` fact.

This is Seki's object of study: evaluated semi-naive bottom-up, the
``call`` facts are in bijection with OLDT's tabled subgoals and the
``ans`` facts with OLDT's table answers (experiment T1), with inference
counts of the same order (T2).  Structurally the transformation is
supplementary magic under different predicate names — ``call`` = magic,
``cont`` = sup, ``ans_p_a`` = the adorned predicate (T3).
"""

from __future__ import annotations

from ..datalog.atoms import Atom, Literal
from ..datalog.rules import Program, Rule
from ..datalog.terms import Constant, Variable
from ..errors import TransformError
from .adorn import AdornedProgram, AdornedRule, adorn_program
from .common import (
    TransformedProgram,
    bound_args,
    carried_variables,
    observe_transform,
    prefixed_name,
)
from .sips import Sips, left_to_right

__all__ = ["alexander_templates", "alexander_transform_adorned"]


def alexander_transform_adorned(adorned: AdornedProgram) -> TransformedProgram:
    """Apply the Alexander rewriting to an already adorned program."""
    taken = set(adorned.edb_predicates)
    for adorned_rule in adorned.rules:
        taken.add(adorned_rule.rule.head.predicate)
        for literal in adorned_rule.rule.body:
            taken.add(literal.predicate)

    call_names: dict[str, str] = {}
    ans_names: dict[str, str] = {}

    def call_name(adorned_predicate: str) -> str:
        existing = call_names.get(adorned_predicate)
        if existing is not None:
            return existing
        fresh = prefixed_name("call", adorned_predicate, taken)
        taken.add(fresh)
        call_names[adorned_predicate] = fresh
        return fresh

    def ans_name(adorned_predicate: str) -> str:
        existing = ans_names.get(adorned_predicate)
        if existing is not None:
            return existing
        fresh = prefixed_name("ans", adorned_predicate, taken)
        taken.add(fresh)
        ans_names[adorned_predicate] = fresh
        return fresh

    adorned_idb = {rule.rule.head.predicate for rule in adorned.rules}
    rewritten: list[Rule] = []
    for index, adorned_rule in enumerate(adorned.rules):
        rewritten.extend(
            _rewrite_rule(
                adorned_rule, index, adorned_idb, call_name, ans_name, taken
            )
        )

    query = adorned.query
    adornment = adorned.query_key[1]
    seed_args = bound_args(query, adornment)
    if not all(isinstance(arg, Constant) for arg in seed_args):
        raise TransformError(f"query {query} has a non-constant bound argument")
    seed = Atom(call_name(query.predicate), seed_args)
    goal = Atom(ans_name(query.predicate), query.args)

    call_predicates = {
        name: adorned.originals[adorned_pred]
        for adorned_pred, name in call_names.items()
        if adorned_pred in adorned.originals
    }
    answer_predicates = {
        name: adorned.originals[adorned_pred]
        for adorned_pred, name in ans_names.items()
        if adorned_pred in adorned.originals
    }
    observe_transform("alexander", len(rewritten))
    return TransformedProgram(
        program=Program(rewritten),
        goal=goal,
        seeds=(seed,),
        answer_predicate=goal.predicate,
        call_predicates=call_predicates,
        answer_predicates=answer_predicates,
        original_query=Atom(adorned.query_key[0], query.args),
        kind="alexander",
    )


def _rewrite_rule(
    adorned_rule: AdornedRule,
    rule_index: int,
    adorned_idb: set[str],
    call_name,
    ans_name,
    taken: set[str],
) -> list[Rule]:
    rule = adorned_rule.rule
    head = rule.head
    body = rule.body
    state = Atom(
        call_name(head.predicate),
        bound_args(head, adorned_rule.head_adornment),
    )
    answer_head = Atom(ans_name(head.predicate), head.args)
    produced: list[Rule] = []

    if not body:
        produced.append(Rule(answer_head, (Literal(state),)))
        return produced

    def cont_name(i: int) -> str:
        fresh = prefixed_name(f"cont_{rule_index}_{i}", head.predicate, taken)
        taken.add(fresh)
        return fresh

    bound: set[Variable] = {
        arg
        for arg, flag in zip(head.args, adorned_rule.head_adornment)
        if flag == "b" and isinstance(arg, Variable)
    }

    for position, (literal, key) in enumerate(
        zip(body, adorned_rule.body_adornments)
    ):
        is_last = position == len(body) - 1
        if (
            key is not None
            and literal.positive
            and literal.predicate in adorned_idb
        ):
            # Emit the problem-generation template and resolve against the
            # solution predicate.
            _, literal_adornment = key
            call_head = Atom(
                call_name(literal.predicate),
                bound_args(literal.atom, literal_adornment),
            )
            produced.append(Rule(call_head, (Literal(state),)))
            resolvent = Literal(
                Atom(ans_name(literal.predicate), literal.atom.args),
                literal.positive,
            )
        else:
            resolvent = literal
        if literal.positive:
            bound.update(literal.variables())
        if is_last:
            produced.append(Rule(answer_head, (Literal(state), resolvent)))
        else:
            carried = carried_variables(bound, body[position + 1 :], head)
            next_state = Atom(cont_name(position + 1), carried)
            produced.append(Rule(next_state, (Literal(state), resolvent)))
            state = next_state
    return produced


def alexander_templates(
    program: Program,
    query: Atom,
    sips: Sips = left_to_right,
    edb_predicates: frozenset[str] | None = None,
) -> TransformedProgram:
    """Adorn *program* for *query* and apply the Alexander rewriting."""
    adorned = adorn_program(program, query, sips, edb_predicates)
    return alexander_transform_adorned(adorned)
