"""Command-line interface: parse a Datalog file, run queries, compare
strategies.

Usage examples::

    repro-datalog query program.dl "anc(a, X)?"
    repro-datalog query program.dl "anc(a, X)?" --strategy oldt --stats
    repro-datalog query rules.dl "anc(a, X)?" --facts data.dl
    repro-datalog explain program.dl "anc(a, X)?"
    repro-datalog check program.dl "anc(a, X)?"       # Alexander vs OLDT
    repro-datalog transform program.dl "anc(a, X)?" --kind alexander
    repro-datalog lint program.dl
    repro-datalog why program.dl "anc(a, c)"          # proof tree
    repro-datalog repl program.dl                     # interactive session
    repro-datalog serve --load db=program.dl          # HTTP query service
    repro-datalog update db --add "edge(a,b)." \\
        --remove "edge(b,c)."                         # incremental /update

(Equivalently ``python -m repro.cli ...``.)
"""

from __future__ import annotations

import argparse
import sys

from .analysis.dependency import DependencyGraph
from .analysis.safety import check_program_safety
from .analysis.stratify import is_stratifiable
from .core.compare import check_correspondence
from .core.engine import Engine
from .core.strategy import available_strategies
from .datalog.parser import parse_program, parse_query
from .datalog.pretty import format_bindings, format_program
from .engine.budget import EvaluationBudget
from .engine.columnar import DEFAULT_STORAGE, STORAGES
from .engine.kernel import DEFAULT_EXECUTOR, EXECUTORS
from .engine.scheduler import DEFAULT_SCHEDULER, SCHEDULERS
from .errors import BudgetExceededError, ReproError
from .transform.alexander import alexander_templates
from .transform.magic import magic_sets
from .transform.supplementary import supplementary_magic_sets

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-datalog",
        description=(
            "Datalog engines and the Alexander/magic transformation family "
            "(reproduction of Seki, PODS 1989)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_facts_option(subparser) -> None:
        subparser.add_argument(
            "--facts",
            action="append",
            default=[],
            metavar="FILE",
            help="additional facts file(s) to load (repeatable)",
        )

    def add_budget_options(subparser) -> None:
        subparser.add_argument(
            "--timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="abort evaluation after this much wall-clock time",
        )
        subparser.add_argument(
            "--max-facts",
            type=int,
            default=None,
            metavar="N",
            help="abort after deriving N facts",
        )
        subparser.add_argument(
            "--max-iterations",
            type=int,
            default=None,
            metavar="N",
            help="abort after N fixpoint rounds",
        )
        subparser.add_argument(
            "--max-attempts",
            type=int,
            default=None,
            metavar="N",
            help="abort after N match attempts",
        )

    query = commands.add_parser("query", help="evaluate a query")
    query.add_argument("file", help="Datalog source file")
    query.add_argument("goal", help='query atom, e.g. "anc(a, X)?"')
    add_facts_option(query)
    query.add_argument(
        "--strategy",
        default="alexander",
        choices=available_strategies(),
        help="evaluation strategy (default: alexander)",
    )
    query.add_argument(
        "--sips",
        default=None,
        choices=("left_to_right", "most_bound_first"),
        help="SIPS for the transformation strategies",
    )
    query.add_argument(
        "--planner",
        action="store_const",
        const="greedy",
        default=None,
        help="enable cost-based join planning (same answers, fewer joins)",
    )
    query.add_argument(
        "--executor",
        default=DEFAULT_EXECUTOR,
        choices=EXECUTORS,
        help=(
            "rule-body executor for bottom-up fixpoints: compiled slot "
            "kernels (default) or the interpreted matcher; identical "
            "answers and counters"
        ),
    )
    query.add_argument(
        "--scheduler",
        default=DEFAULT_SCHEDULER,
        choices=SCHEDULERS,
        help=(
            "fixpoint scheduling for bottom-up evaluation: component-wise "
            "SCC order (default), a worker-pool parallel variant, or one "
            "global loop; identical answers"
        ),
    )
    query.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker-pool size for --scheduler parallel "
            "(default: one per CPU core); serial schedulers ignore it"
        ),
    )
    query.add_argument(
        "--storage",
        default=DEFAULT_STORAGE,
        choices=STORAGES,
        help=(
            "relation backend for bottom-up evaluation: raw value tuples "
            "(default) or interned columnar arrays with batch kernels; "
            "identical answers and counters"
        ),
    )
    query.add_argument("--stats", action="store_true", help="print counters")
    query.add_argument(
        "--limit", type=int, default=None, help="print at most N answers"
    )
    add_budget_options(query)

    explain = commands.add_parser(
        "explain", help="run a query under every strategy and compare counts"
    )
    explain.add_argument("file")
    explain.add_argument("goal")
    add_facts_option(explain)
    add_budget_options(explain)

    check = commands.add_parser(
        "check", help="verify the Alexander/OLDT call-answer correspondence"
    )
    check.add_argument("file")
    check.add_argument("goal")
    add_facts_option(check)
    add_budget_options(check)

    transform = commands.add_parser(
        "transform", help="print the rewritten program for a query"
    )
    transform.add_argument("file")
    transform.add_argument("goal")
    transform.add_argument(
        "--kind",
        default="alexander",
        choices=("alexander", "magic", "supplementary"),
    )

    lint = commands.add_parser(
        "lint", help="report safety and stratification problems"
    )
    lint.add_argument("file")

    why = commands.add_parser(
        "why", help="print a proof tree for a ground goal"
    )
    why.add_argument("file")
    why.add_argument("goal", help='ground atom, e.g. "anc(a, c)"')
    add_facts_option(why)

    repl = commands.add_parser("repl", help="interactive session")
    repl.add_argument("file")
    add_facts_option(repl)

    serve = commands.add_parser(
        "serve",
        help="run the long-lived HTTP query service (see docs/SERVING.md)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8321,
        help="bind port; 0 picks an ephemeral port (default: 8321)",
    )
    serve.add_argument(
        "--port-file",
        default=None,
        metavar="FILE",
        help="write the bound port here once serving (ephemeral-port discovery)",
    )
    serve.add_argument(
        "--load",
        action="append",
        default=[],
        metavar="NAME=FILE",
        help="preload dataset NAME from a Datalog FILE (repeatable)",
    )
    serve.add_argument(
        "--max-cached",
        type=int,
        default=64,
        help="prepared-query cache capacity (default: 64)",
    )
    serve.add_argument(
        "--processes",
        type=int,
        default=0,
        metavar="N",
        help=(
            "serve queries from N pre-forked worker processes sharing "
            "datasets over shared memory (default: 0 = in-process threads)"
        ),
    )
    serve.add_argument(
        "--registry",
        default=None,
        metavar="DIR",
        help=(
            "directory for the cross-process prepared-shape registry; "
            "shapes prepared by any worker (or a previous run) are "
            "loaded instead of recompiled"
        ),
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log every request to stderr"
    )

    update = commands.add_parser(
        "update",
        help=(
            "apply an incremental add/remove batch to a running service "
            "dataset (see docs/MAINTENANCE.md)"
        ),
    )
    update.add_argument("dataset", help="dataset name on the service")
    update.add_argument(
        "--add",
        action="append",
        default=[],
        metavar="FACT",
        help='ground fact to insert, e.g. "edge(a,b)." (repeatable)',
    )
    update.add_argument(
        "--remove",
        action="append",
        default=[],
        metavar="FACT",
        help="ground base fact to delete (repeatable)",
    )
    update.add_argument(
        "--url",
        default="http://127.0.0.1:8321",
        help="service base URL (default: http://127.0.0.1:8321)",
    )
    update.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="per-request socket timeout (default: 30)",
    )
    return parser


def _budget_from_args(args) -> EvaluationBudget | None:
    """Build an :class:`EvaluationBudget` from the CLI flags, or None when
    no limit was requested (the zero-overhead fast path)."""
    limits = {
        "wall_clock_seconds": getattr(args, "timeout", None),
        "max_facts": getattr(args, "max_facts", None),
        "max_iterations": getattr(args, "max_iterations", None),
        "max_attempts": getattr(args, "max_attempts", None),
    }
    if all(value is None for value in limits.values()):
        return None
    return EvaluationBudget(**limits)


def _load(path: str, fact_files: list[str] | None = None) -> Engine:
    engine = Engine.from_file(path, check_safety=False)
    from .facts.io import load_facts

    for fact_file in fact_files or []:
        load_facts(fact_file, into=engine.database)
    return engine


def _cmd_query(args) -> int:
    engine = _load(args.file, args.facts)
    goal = parse_query(args.goal)
    result = engine.query(
        goal,
        strategy=args.strategy,
        sips=args.sips,
        planner=args.planner,
        budget=_budget_from_args(args),
        executor=args.executor,
        scheduler=args.scheduler,
        storage=args.storage,
        workers=args.workers,
    )
    print(format_bindings(goal, result.answers, limit=args.limit))
    if args.stats:
        print(result.stats, file=sys.stderr)
    return 0


def _cmd_explain(args) -> int:
    engine = _load(args.file, args.facts)
    goal = parse_query(args.goal)
    results = engine.explain(goal, budget=_budget_from_args(args))
    width = max(len(name) for name in results)
    header = (
        f"{'strategy':<{width}}  answers  inferences  attempts  facts  calls"
    )
    print(header)
    print("-" * len(header))
    for name, result in results.items():
        stats = result.stats
        print(
            f"{name:<{width}}  {len(result.answers):>7}  "
            f"{stats.inferences:>10}  {stats.attempts:>8}  "
            f"{stats.facts_derived:>5}  {stats.calls:>5}"
        )
    return 0


def _cmd_check(args) -> int:
    engine = _load(args.file, args.facts)
    goal = parse_query(args.goal)
    correspondence = check_correspondence(
        engine.program, goal, engine.database, budget=_budget_from_args(args)
    )
    print(correspondence.summary())
    return 0 if correspondence.exact else 1


def _cmd_transform(args) -> int:
    engine = _load(args.file)
    goal = parse_query(args.goal)
    transforms = {
        "alexander": alexander_templates,
        "magic": magic_sets,
        "supplementary": supplementary_magic_sets,
    }
    transformed = transforms[args.kind](engine.program, goal)
    print(f"% {args.kind} rewriting for {goal}")
    for seed in transformed.seeds:
        print(f"{seed}.")
    print(format_program(transformed.program, group_by_head=False))
    print(f"% goal: {transformed.goal}?")
    return 0


def _cmd_lint(args) -> int:
    with open(args.file, "r", encoding="utf-8") as handle:
        program = parse_program(handle.read())
    problems = 0
    for violation in check_program_safety(program):
        print(f"unsafe: {violation}")
        problems += 1
    if not is_stratifiable(program):
        print("not stratifiable: the program has a cycle through negation")
        problems += 1
    graph = DependencyGraph(program)
    for predicate in sorted(program.idb_predicates):
        kind = graph.recursion_kind(predicate)
        print(f"info: {predicate} is {kind}")
    if problems:
        print(f"{problems} problem(s) found")
        return 1
    print("ok")
    return 0


def _cmd_why(args) -> int:
    engine = _load(args.file, args.facts)
    text = engine.why(args.goal)
    print(text)
    return 0 if "not derivable" not in text else 1


def _cmd_repl(args) -> int:
    from .repl import Repl

    engine = _load(args.file, args.facts)
    Repl(engine).run()
    return 0


def _cmd_serve(args) -> int:
    from .serve import PooledService, QueryService, create_server, run_server

    if args.processes and args.processes > 0:
        service = PooledService(
            processes=args.processes,
            max_cached=args.max_cached,
            registry=args.registry,
        )
    else:
        service = QueryService(
            max_cached=args.max_cached, registry=args.registry
        )
    for spec in args.load:
        name, _, path = spec.partition("=")
        if not name or not path:
            raise ReproError(f"--load expects NAME=FILE, got {spec!r}")
        with open(path, "r", encoding="utf-8") as handle:
            info = service.load(name, handle.read())
        print(
            f"loaded dataset {info['name']!r}: {info['rules']} rules, "
            f"{info['facts']} facts",
            file=sys.stderr,
        )
    server = create_server(
        host=args.host,
        port=args.port,
        service=service,
        quiet=not args.verbose,
    )
    workers = (
        f", {args.processes} worker processes" if args.processes else ""
    )
    print(
        f"serving on http://{args.host}:{server.port} "
        f"(cache capacity {args.max_cached}{workers})",
        file=sys.stderr,
    )
    run_server(server, port_file=args.port_file)
    print("server stopped", file=sys.stderr)
    return 0


def _cmd_update(args) -> int:
    from .serve.client import ServeClient

    if not args.add and not args.remove:
        raise ReproError("update requires at least one --add or --remove")
    client = ServeClient(args.url, timeout=args.timeout)
    info = client.update(args.dataset, add=args.add, remove=args.remove)
    print(
        f"dataset {info['name']!r} now version {info['version']}: "
        f"+{info['added']} -{info['removed']} facts "
        f"({info['elapsed_ms']:.1f} ms)"
    )
    print(
        f"cache: {info['cache_entries_patched']} patched, "
        f"{info['cache_entries_kept']} kept, "
        f"{info['cache_entries_dropped']} dropped"
    )
    if info["affected_predicates"]:
        print(f"affected: {', '.join(info['affected_predicates'])}")
    return 0


_COMMANDS = {
    "query": _cmd_query,
    "explain": _cmd_explain,
    "check": _cmd_check,
    "transform": _cmd_transform,
    "lint": _cmd_lint,
    "why": _cmd_why,
    "repl": _cmd_repl,
    "serve": _cmd_serve,
    "update": _cmd_update,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BudgetExceededError as error:
        # Distinct exit code: the program was fine, the resource budget
        # ran out.  Report which limit tripped and how far the run got.
        print(f"budget exceeded: {error}", file=sys.stderr)
        if error.stats is not None:
            print(f"progress: {error.stats}", file=sys.stderr)
        if error.partial is not None:
            print(
                f"partial result: a sound database of "
                f"{error.partial.total_facts()} facts (base + derived) "
                "was computed before the limit",
                file=sys.stderr,
            )
        return 3
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
