"""Safety (range restriction) analysis.

A rule is *safe* when every variable of its head, and every variable of
each negative literal, occurs in at least one positive body literal.  Safe
programs have finite answers over finite databases and can be evaluated
without domain predicates — the classical requirement of Ullman's
"safety" / Nicolas's "range restriction".

The checker reports *all* violations rather than stopping at the first,
which makes it usable as a lint pass in the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.rules import Program, Rule
from ..datalog.terms import Variable
from ..errors import SafetyError

__all__ = ["SafetyViolation", "check_rule_safety", "check_program_safety", "require_safe"]


@dataclass(frozen=True)
class SafetyViolation:
    """One unsafe variable occurrence."""

    rule: Rule
    variable: Variable
    place: str  # "head" or "negative literal <lit>"

    def __str__(self) -> str:
        return (
            f"unsafe variable {self.variable.name} in {self.place} "
            f"of rule: {self.rule}"
        )


def check_rule_safety(rule: Rule) -> list[SafetyViolation]:
    """All safety violations of one rule (empty list = safe).

    Built-in comparison literals never bind: like negative literals,
    their variables must occur in some positive ordinary literal.
    """
    from ..datalog.builtins import is_builtin

    positive_vars: set[Variable] = set()
    for literal in rule.body:
        if literal.positive and not is_builtin(literal.predicate):
            positive_vars.update(literal.variables())
    violations: list[SafetyViolation] = []
    for var in rule.head.variables():
        if var not in positive_vars:
            violations.append(SafetyViolation(rule, var, "head"))
    for literal in rule.body:
        if literal.negative or is_builtin(literal.predicate):
            place = (
                f"negative literal {literal}"
                if literal.negative
                else f"builtin literal {literal}"
            )
            for var in literal.variables():
                if var not in positive_vars:
                    violations.append(SafetyViolation(rule, var, place))
    # Deduplicate (a variable may repeat within a literal) preserving order.
    unique: list[SafetyViolation] = []
    seen: set[tuple[Variable, str]] = set()
    for violation in violations:
        key = (violation.variable, violation.place)
        if key not in seen:
            seen.add(key)
            unique.append(violation)
    return unique


def check_program_safety(program: Program) -> list[SafetyViolation]:
    """All safety violations in the program."""
    violations: list[SafetyViolation] = []
    for rule in program.proper_rules:
        violations.extend(check_rule_safety(rule))
    return violations


def require_safe(program: Program) -> None:
    """Raise :class:`~repro.errors.SafetyError` unless *program* is safe."""
    violations = check_program_safety(program)
    if violations:
        summary = "; ".join(str(violation) for violation in violations[:5])
        more = f" (+{len(violations) - 5} more)" if len(violations) > 5 else ""
        raise SafetyError(f"program is unsafe: {summary}{more}")
