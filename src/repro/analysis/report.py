"""Whole-program analysis reports.

:func:`ProgramReport.build` runs every static analysis in one pass —
safety, stratifiability, loose stratification, recursion classification,
strata assignment — and packages the outcome as structured data plus an
ASCII rendering.  The CLI's ``lint`` command and the notebooks/examples
use it; it is also the one-stop answer to "what does the library think of
my program?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..datalog.rules import Program
from ..errors import StratificationError
from .dependency import DependencyGraph
from .loose import is_loosely_stratified
from .safety import SafetyViolation, check_program_safety
from .stratify import stratify

__all__ = ["PredicateInfo", "ProgramReport"]


@dataclass(frozen=True)
class PredicateInfo:
    """Per-predicate analysis summary."""

    name: str
    arity: int
    kind: str  # "edb" or "idb"
    recursion: str  # RecursionKind label; "-" for EDB predicates
    stratum: int
    rule_count: int


@dataclass(frozen=True)
class ProgramReport:
    """The combined static-analysis result for one program."""

    predicates: tuple[PredicateInfo, ...]
    safety_violations: tuple[SafetyViolation, ...]
    stratifiable: bool
    loosely_stratified: bool
    stratum_count: int

    @property
    def safe(self) -> bool:
        return not self.safety_violations

    @property
    def ok(self) -> bool:
        """Evaluable by the stratified engines as-is."""
        return self.safe and self.stratifiable

    @property
    def recursive_predicates(self) -> tuple[str, ...]:
        return tuple(
            info.name
            for info in self.predicates
            if info.recursion not in ("-", "non-recursive")
        )

    @classmethod
    def build(cls, program: Program) -> "ProgramReport":
        graph = DependencyGraph(program)
        violations = tuple(check_program_safety(program))
        try:
            stratification = stratify(program)
            stratifiable = True
            stratum_of: Mapping[str, int] = stratification.stratum_of
            stratum_count = stratification.depth
        except StratificationError:
            stratifiable = False
            stratum_of = {}
            stratum_count = 0
        try:
            loose = is_loosely_stratified(program)
        except RuntimeError:  # state-budget backstop
            loose = False
        arities = program.arities
        infos = []
        for name in sorted(program.predicates):
            is_idb = name in program.idb_predicates
            infos.append(
                PredicateInfo(
                    name=name,
                    arity=arities[name],
                    kind="idb" if is_idb else "edb",
                    recursion=graph.recursion_kind(name) if is_idb else "-",
                    stratum=stratum_of.get(name, 0),
                    rule_count=len(program.rules_for(name)),
                )
            )
        return cls(
            predicates=tuple(infos),
            safety_violations=violations,
            stratifiable=stratifiable,
            loosely_stratified=loose,
            stratum_count=stratum_count,
        )

    def render(self) -> str:
        """An ASCII rendering suitable for terminal output."""
        lines = ["program analysis"]
        lines.append(
            f"  safe: {'yes' if self.safe else 'no'}   "
            f"stratifiable: {'yes' if self.stratifiable else 'no'}   "
            f"loosely stratified: {'yes' if self.loosely_stratified else 'no'}   "
            f"strata: {self.stratum_count}"
        )
        name_width = max((len(info.name) for info in self.predicates), default=4)
        lines.append(
            f"  {'predicate'.ljust(name_width)}  arity  kind  stratum  rules  recursion"
        )
        for info in self.predicates:
            lines.append(
                f"  {info.name.ljust(name_width)}  {info.arity:>5}  "
                f"{info.kind:<4}  {info.stratum:>7}  {info.rule_count:>5}  "
                f"{info.recursion}"
            )
        for violation in self.safety_violations:
            lines.append(f"  unsafe: {violation}")
        return "\n".join(lines)
