"""Loose stratification (extension) and local stratification.

The reproduction bands note a "loose stratification variant" as a niche
extension of the stratification story.  Loose stratification (Bry, PODS
1989, after Lewis's cycles of unifiability) is a *rule-level* sufficient
condition for consistency that is weaker than plain stratification but,
unlike local stratification, needs no rule instantiation:

    A program is loosely stratified when its adorned dependency graph
    contains no chain with at least one negative arc whose arc unifiers
    are compatible and whose endpoints unify under the common unifier.

The checker below explores exactly those chains: starting from the most
general instance of each rule head, it follows "head resolves against
body atom" steps composing the unifiers as it goes (incremental mgu
composition decides compatibility), and reports a violation when a chain
that crossed a negative arc returns to an atom unifiable with its start.
States are memoised by the variant pattern of the (start, current) atom
pair, which is finite in function-free Datalog, so the search terminates.

For function-free programs loose stratification coincides with local
stratification; :func:`is_locally_stratified` implements the latter by
grounding over the active domain, giving an independent oracle the test
suite cross-checks against.
"""

from __future__ import annotations

import itertools

from ..datalog.atoms import Atom
from ..datalog.rules import Program, Rule
from ..datalog.terms import Constant, Variable
from ..datalog.unify import unify_atoms
from ..facts.database import Database

__all__ = [
    "is_loosely_stratified",
    "find_loose_violation",
    "is_locally_stratified",
    "ground_program",
]


def _rename_rule(rule: Rule, suffix: int) -> Rule:
    """A variant of *rule* with variables tagged by *suffix*.

    Deterministic renaming (rather than global fresh counters) keeps the
    memoised state space small and the search reproducible.
    """
    mapping = {
        var: Variable(f"{var.name}~{suffix}") for var in rule.variables()
    }
    return rule.substitute(mapping)


def _pair_key(start: Atom, current: Atom, negative_seen: bool) -> tuple:
    """Canonical state: the joint variant pattern of (start, current).

    Encoding both atoms through one shared variable numbering preserves
    the variable-sharing constraints accumulated along the chain.
    """
    numbering: dict[Variable, int] = {}
    parts: list[object] = [negative_seen]
    for atom in (start, current):
        parts.append(atom.predicate)
        for arg in atom.args:
            if isinstance(arg, Variable):
                parts.append(("v", numbering.setdefault(arg, len(numbering))))
            else:
                parts.append(("c", arg.value))
    return tuple(parts)


def find_loose_violation(
    program: Program, max_states: int = 100_000
) -> tuple[Atom, Atom] | None:
    """Search for a chain witnessing non-loose-stratification.

    Returns:
        ``(start, back)`` — an atom instance and the later atom instance
        that unifies with it after a chain containing a negative arc — or
        ``None`` when the program is loosely stratified.

    Raises:
        RuntimeError: if the memoised state budget is exhausted (cannot
            happen for function-free programs of sane size; the budget is
            a backstop, not a semantic limit).
    """
    rules = program.proper_rules
    visited: set[tuple] = set()
    # Work items: (start atom instance, current atom instance, negative_seen)
    stack: list[tuple[Atom, Atom, bool]] = []
    for index, rule in enumerate(rules):
        fresh = _rename_rule(rule, 0)
        stack.append((fresh.head, fresh.head, False))
    counter = itertools.count(1)
    while stack:
        start, current, negative_seen = stack.pop()
        state = _pair_key(start, current, negative_seen)
        if state in visited:
            continue
        visited.add(state)
        if len(visited) > max_states:
            raise RuntimeError(
                "loose-stratification search exceeded its state budget"
            )
        for rule in rules:
            fresh = _rename_rule(rule, next(counter))
            unifier = unify_atoms(current, fresh.head)
            if unifier is None:
                continue
            new_start = unifier.apply_atom(start)
            for literal in fresh.body:
                next_atom = unifier.apply_atom(literal.atom)
                crossed = negative_seen or literal.negative
                if crossed and unify_atoms(new_start, next_atom) is not None:
                    return (new_start, next_atom)
                stack.append((new_start, next_atom, crossed))
    return None


def is_loosely_stratified(program: Program, max_states: int = 100_000) -> bool:
    """True iff no negative chain closes on a unifiable atom."""
    return find_loose_violation(program, max_states) is None


# ---------------------------------------------------------------------------
# Local stratification by grounding (the oracle for cross-checking).
# ---------------------------------------------------------------------------

def ground_program(program: Program, database: Database | None = None) -> list[Rule]:
    """All ground instances of the proper rules over the active domain.

    The active domain is the set of constants occurring in the program and
    in *database*.  Exponential in the number of variables per rule — this
    is an analysis oracle, not an evaluation path.
    """
    domain: set[object] = set(program.constants())
    if database is not None:
        for relation in database.relations():
            for row in relation:
                domain.update(row)
    domain_values = sorted(domain, key=repr)
    instances: list[Rule] = []
    for rule in program.proper_rules:
        rule_vars = sorted(rule.variables(), key=lambda v: v.name)
        if not rule_vars:
            instances.append(rule)
            continue
        for combo in itertools.product(domain_values, repeat=len(rule_vars)):
            binding = {
                var: Constant(value) for var, value in zip(rule_vars, combo)
            }
            instances.append(rule.substitute(binding))
    return instances


def is_locally_stratified(
    program: Program,
    database: Database | None = None,
    filter_edb: bool = False,
) -> bool:
    """True iff the ground dependency graph has no cycle through negation.

    This is the classical definition of local stratification restricted to
    function-free programs (where the Herbrand instantiation is finite).

    Args:
        filter_edb: when set, ground instances that can never fire against
            *database* are dropped before building the graph — a positive
            extensional literal that is false, or a negative extensional
            literal that is true, disables the instance.  The strict
            Przymusinski definition (default) keeps every instance; the
            filtered variant is the evaluation-relevant notion (e.g. the
            win/lose game over an acyclic move graph is filtered-locally
            stratified but not strictly so, because the instantiation
            contains self-move instances with unsatisfiable bodies).
    """
    instances = ground_program(program, database)
    if filter_edb:
        idb = program.idb_predicates
        base = database if database is not None else Database()

        def can_fire(rule: Rule) -> bool:
            for literal in rule.body:
                if literal.predicate in idb:
                    continue
                present = base.has_fact(literal.atom)
                if literal.positive and not present:
                    return False
                if literal.negative and present:
                    return False
            return True

        instances = [rule for rule in instances if can_fire(rule)]
    # Ground atom dependency graph with polarity.
    positive_edges: dict[Atom, set[Atom]] = {}
    negative_edges: dict[Atom, set[Atom]] = {}
    for rule in instances:
        for literal in rule.body:
            target = positive_edges if literal.positive else negative_edges
            target.setdefault(rule.head, set()).add(literal.atom)
    nodes: set[Atom] = set()
    for mapping in (positive_edges, negative_edges):
        for head, bodies in mapping.items():
            nodes.add(head)
            nodes.update(bodies)
    # A program is locally stratifiable iff we can assign ordinals with
    # stratum(head) >= stratum(pos body) and > stratum(neg body); the
    # fixpoint diverges exactly on a negative cycle.
    numbers: dict[Atom, int] = {node: 0 for node in nodes}
    limit = len(nodes) + 1
    changed = True
    while changed:
        changed = False
        for head, bodies in positive_edges.items():
            for body in bodies:
                if numbers[head] < numbers[body]:
                    numbers[head] = numbers[body]
                    changed = True
        for head, bodies in negative_edges.items():
            for body in bodies:
                if numbers[head] < numbers[body] + 1:
                    numbers[head] = numbers[body] + 1
                    if numbers[head] > limit:
                        return False
                    changed = True
    return True
