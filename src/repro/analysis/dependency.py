"""The predicate dependency graph and derived structure.

Nodes are predicate names; there is an edge ``q -> p`` when ``q`` occurs in
the body of a rule with head ``p`` (information flows from ``q`` to ``p``).
Edges carry a polarity: negative when some occurrence of ``q`` in a body of
``p`` is negated.

On top of the raw graph the module computes strongly connected components
(iterative Tarjan — no recursion-limit surprises on deep programs), a
topological order of components, and the recursion classification
(non-recursive / linear / non-linear) used by the workload docs and the
benchmark labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterator, Mapping, Sequence

from ..datalog.rules import Program

__all__ = ["DependencyGraph", "RecursionKind"]


class RecursionKind:
    """Classification labels for a predicate's recursion."""

    NON_RECURSIVE = "non-recursive"
    LINEAR = "linear"
    NON_LINEAR = "non-linear"


@dataclass(frozen=True)
class _Edge:
    source: str  # body predicate
    target: str  # head predicate
    negative: bool


class DependencyGraph:
    """Predicate dependency structure of a program."""

    def __init__(self, program: Program):
        self._program = program
        edges: dict[tuple[str, str], bool] = {}
        for rule in program.proper_rules:
            head = rule.head.predicate
            for literal in rule.body:
                key = (literal.predicate, head)
                edges[key] = edges.get(key, False) or literal.negative
        self._edges = tuple(
            _Edge(source, target, negative)
            for (source, target), negative in sorted(edges.items())
        )
        self._nodes = frozenset(program.predicates)

    @property
    def program(self) -> Program:
        return self._program

    @property
    def nodes(self) -> frozenset[str]:
        return self._nodes

    def edges(self) -> Sequence[_Edge]:
        return self._edges

    @cached_property
    def successors(self) -> Mapping[str, frozenset[str]]:
        """``successors[q]`` = head predicates depending directly on ``q``."""
        result: dict[str, set[str]] = {node: set() for node in self._nodes}
        for edge in self._edges:
            result[edge.source].add(edge.target)
        return {node: frozenset(out) for node, out in result.items()}

    @cached_property
    def predecessors(self) -> Mapping[str, frozenset[str]]:
        """``predecessors[p]`` = body predicates ``p`` depends on directly."""
        result: dict[str, set[str]] = {node: set() for node in self._nodes}
        for edge in self._edges:
            result[edge.target].add(edge.source)
        return {node: frozenset(incoming) for node, incoming in result.items()}

    def depends_negatively(self, head: str, body: str) -> bool:
        """True iff some rule for *head* contains ``not body(...)``."""
        return any(
            edge.negative and edge.target == head and edge.source == body
            for edge in self._edges
        )

    # --- strongly connected components -------------------------------------
    @cached_property
    def sccs(self) -> tuple[frozenset[str], ...]:
        """SCCs in Tarjan emission order: dependents before dependencies.

        With our edge orientation (body predicate -> head predicate), a
        component is emitted once everything it *feeds* is done, so the
        final consumers come first.  Iterative Tarjan so deep programs
        don't hit the recursion limit.
        """
        index_counter = 0
        indexes: dict[str, int] = {}
        lowlinks: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        components: list[frozenset[str]] = []
        successors = self.successors

        for root in sorted(self._nodes):
            if root in indexes:
                continue
            work: list[tuple[str, Iterator[str]]] = [
                (root, iter(sorted(successors[root])))
            ]
            indexes[root] = lowlinks[root] = index_counter
            index_counter += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, child_iter = work[-1]
                advanced = False
                for child in child_iter:
                    if child not in indexes:
                        indexes[child] = lowlinks[child] = index_counter
                        index_counter += 1
                        stack.append(child)
                        on_stack.add(child)
                        work.append((child, iter(sorted(successors[child]))))
                        advanced = True
                        break
                    if child in on_stack:
                        lowlinks[node] = min(lowlinks[node], indexes[child])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
                if lowlinks[node] == indexes[node]:
                    component: set[str] = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == node:
                            break
                    components.append(frozenset(component))
        return tuple(components)

    @cached_property
    def scc_of(self) -> Mapping[str, frozenset[str]]:
        placement: dict[str, frozenset[str]] = {}
        for component in self.sccs:
            for node in component:
                placement[node] = component
        return placement

    def is_recursive_predicate(self, predicate: str) -> bool:
        """True iff *predicate* participates in a dependency cycle."""
        component = self.scc_of.get(predicate)
        if component is None:
            return False
        if len(component) > 1:
            return True
        return predicate in self.successors.get(predicate, frozenset())

    def recursion_kind(self, predicate: str) -> str:
        """Classify *predicate*'s recursion (see :class:`RecursionKind`).

        Linear: every rule for a predicate of its SCC has at most one body
        literal from the same SCC; non-linear otherwise.
        """
        if not self.is_recursive_predicate(predicate):
            return RecursionKind.NON_RECURSIVE
        component = self.scc_of[predicate]
        for member in component:
            for rule in self._program.rules_for(member):
                within = sum(
                    1 for literal in rule.body if literal.predicate in component
                )
                if within > 1:
                    return RecursionKind.NON_LINEAR
        return RecursionKind.LINEAR

    def condensation_order(self) -> tuple[frozenset[str], ...]:
        """SCCs in dependency order: every SCC after all it depends on.

        Tarjan emits dependents first for our edge orientation (see
        :attr:`sccs`), so dependencies-first is the reverse of the
        emission order.
        """
        return tuple(reversed(self.sccs))
