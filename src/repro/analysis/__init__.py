"""Static program analysis: dependencies, stratification, safety."""

from .dependency import DependencyGraph, RecursionKind
from .loose import is_locally_stratified, is_loosely_stratified
from .report import PredicateInfo, ProgramReport
from .safety import check_program_safety, check_rule_safety, require_safe
from .stratify import Stratification, is_stratifiable, stratify

__all__ = [
    "DependencyGraph",
    "RecursionKind",
    "Stratification",
    "stratify",
    "is_stratifiable",
    "check_program_safety",
    "check_rule_safety",
    "require_safe",
    "is_loosely_stratified",
    "is_locally_stratified",
    "ProgramReport",
    "PredicateInfo",
]
