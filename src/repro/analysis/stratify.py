"""Stratification of programs with negation.

A program is *stratifiable* when its dependency graph has no cycle through
a negative edge.  :func:`stratify` assigns each predicate a stratum number
such that a predicate's positive dependencies are in the same or a lower
stratum and its negative dependencies are in a strictly lower stratum,
then splits the program into per-stratum sub-programs evaluated in order
by :mod:`repro.engine.stratified`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..datalog.rules import Program, Rule
from ..errors import StratificationError
from .dependency import DependencyGraph

__all__ = ["Stratification", "stratify", "is_stratifiable"]


@dataclass(frozen=True)
class Stratification:
    """The result of stratifying a program.

    Attributes:
        strata: per-stratum programs, lowest first; their union is the set
            of proper rules of the original program (facts stay with the
            caller's database).
        stratum_of: stratum index of every predicate (EDB predicates are
            stratum 0).
    """

    strata: tuple[Program, ...]
    stratum_of: Mapping[str, int]

    @property
    def depth(self) -> int:
        return len(self.strata)

    def stratum_for_predicate(self, predicate: str) -> int:
        return self.stratum_of.get(predicate, 0)


def _stratum_numbers(graph: DependencyGraph) -> dict[str, int]:
    """Assign stratum numbers by fixpoint; raise if not stratifiable.

    The classical iteration: ``stratum(p) >= stratum(q)`` for positive
    edges ``q -> p`` and ``stratum(p) >= stratum(q) + 1`` for negative
    edges.  The number of predicates bounds the stratum, so exceeding it
    means a negative cycle.
    """
    program = graph.program
    numbers: dict[str, int] = {pred: 0 for pred in program.predicates}
    limit = len(numbers) + 1
    changed = True
    while changed:
        changed = False
        for rule in program.proper_rules:
            head = rule.head.predicate
            for literal in rule.body:
                required = numbers[literal.predicate] + (0 if literal.positive else 1)
                if numbers[head] < required:
                    numbers[head] = required
                    if numbers[head] > limit:
                        raise StratificationError(
                            "program is not stratifiable: cycle through "
                            f"negation involving {head}"
                        )
                    changed = True
    return numbers


def stratify(program: Program) -> Stratification:
    """Stratify *program*.

    Raises:
        StratificationError: when the program has a cycle through negation.
    """
    graph = DependencyGraph(program)
    numbers = _stratum_numbers(graph)
    # Compact stratum numbers of predicates that actually head rules.
    used = sorted({numbers[rule.head.predicate] for rule in program.proper_rules})
    remap = {old: new for new, old in enumerate(used)}
    buckets: list[list[Rule]] = [[] for _ in used]
    for rule in program.proper_rules:
        buckets[remap[numbers[rule.head.predicate]]].append(rule)
    strata = tuple(Program(bucket) for bucket in buckets)
    return Stratification(strata=strata, stratum_of=dict(numbers))


def is_stratifiable(program: Program) -> bool:
    """True iff the program has no cycle through negation."""
    try:
        stratify(program)
    except StratificationError:
        return False
    return True
