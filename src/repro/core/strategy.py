"""The unified query-strategy interface.

Every evaluation method in the library — bottom-up, top-down, and
transformation-based — is exposed as a *strategy*: a function taking
``(program, query, database, planner)`` and returning a
:class:`QueryResult` whose ``answers`` are ground instances of the
original query atom and whose ``stats`` use the shared counter semantics.
The benchmark harness and the CLI enumerate strategies through
:func:`available_strategies` / :func:`run_strategy`.  The ``planner``
argument (e.g. ``"greedy"``) enables cost-based join ordering
(:mod:`repro.engine.planner`) in every strategy that joins; plain SLD
ignores it.

Transformation strategies follow the *structured* pipeline for stratified
negation: strata below the query predicate's stratum are materialised
bottom-up first (their predicates then count as extensional for the
rewriting), and the query's stratum is rewritten and evaluated semi-naive.
For negation-free programs everything sits in one stratum, so the whole
program is rewritten — the classical setting of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..analysis.stratify import stratify
from ..datalog.atoms import Atom
from ..datalog.rules import Program
from ..datalog.unify import match_atom
from ..engine.budget import Checkpoint, EvaluationBudget, ensure_checkpoint
from ..engine.columnar import DEFAULT_STORAGE, as_storage
from ..engine.counters import EvaluationStats
from ..engine.kernel import DEFAULT_EXECUTOR
from ..engine.scheduler import DEFAULT_SCHEDULER
from ..engine.seminaive import seminaive_fixpoint
from ..engine.stratified import stratified_fixpoint
from ..errors import ReproError, TransformError
from ..facts.database import Database
from ..topdown.oldt import OLDTEngine
from ..topdown.qsqr import QSQREngine
from ..topdown.sld import SLDEngine
from ..transform.adorn import query_adornment
from ..transform.alexander import alexander_templates
from ..transform.common import TransformedProgram
from ..transform.magic import magic_sets
from ..transform.sips import Sips, left_to_right
from ..transform.supplementary import supplementary_magic_sets

__all__ = ["QueryResult", "available_strategies", "run_strategy"]


@dataclass
class QueryResult:
    """The outcome of evaluating one query under one strategy.

    Attributes:
        strategy: strategy name.
        query: the original query atom.
        answers: ground instances of the query atom, deduplicated, in a
            deterministic (sorted) order.
        stats: the shared counter record.
        calls: for strategies with a call concept, the set of generated
            subqueries as ``(predicate, adornment, bound-args)`` triples.
        answer_facts: for those strategies, all derived answers per
            ``(predicate, adornment)``.
        transformed: the transformed program, when one was built.
    """

    strategy: str
    query: Atom
    answers: tuple[Atom, ...]
    stats: EvaluationStats
    calls: frozenset[tuple] = frozenset()
    answer_facts: Mapping[tuple[str, str], frozenset[tuple]] = field(
        default_factory=dict
    )
    transformed: TransformedProgram | None = None

    @property
    def answer_rows(self) -> frozenset[tuple]:
        """Answers as plain value tuples (order = query argument order)."""
        return frozenset(atom.ground_key() for atom in self.answers)


def _sorted_answers(query: Atom, atoms) -> tuple[Atom, ...]:
    unique: dict[tuple, Atom] = {}
    for atom in atoms:
        unique[atom.ground_key()] = Atom(query.predicate, atom.args)
    return tuple(
        unique[key] for key in sorted(unique, key=repr)
    )


def _bottom_up(engine: str):
    def run(
        program: Program,
        query: Atom,
        database: Database | None,
        planner=None,
        budget=None,
        executor=DEFAULT_EXECUTOR,
        scheduler=DEFAULT_SCHEDULER,
        storage=DEFAULT_STORAGE,
        workers=None,
    ) -> QueryResult:
        stats = EvaluationStats()
        completed, _ = stratified_fixpoint(
            program,
            database,
            stats,
            engine=engine,
            planner=planner,
            budget=budget,
            executor=executor,
            scheduler=scheduler,
            storage=storage,
            workers=workers,
        )
        matching = (
            atom
            for atom in completed.atoms(query.predicate)
            if match_atom(query, atom) is not None
        )
        answers = _sorted_answers(query, matching)
        stats.answers = len(answers)
        return QueryResult(
            strategy=engine, query=query, answers=answers, stats=stats
        )

    return run


def _sld(
    program: Program,
    query: Atom,
    database: Database | None,
    planner=None,
    budget=None,
    executor=DEFAULT_EXECUTOR,
    scheduler=DEFAULT_SCHEDULER,
    storage=DEFAULT_STORAGE,
    workers=None,
) -> QueryResult:
    # Plain SLD resolves one tuple at a time in clause-text order; there is
    # no set-oriented join to plan, so `planner` (and `executor`/
    # `scheduler`/`storage` — bottom-up concepts) is accepted and ignored.
    engine = SLDEngine(program, database, budget=budget)
    answers = _sorted_answers(query, engine.query(query))
    return QueryResult(
        strategy="sld", query=query, answers=answers, stats=engine.stats
    )


def _oldt(
    program: Program,
    query: Atom,
    database: Database | None,
    planner=None,
    budget=None,
    executor=DEFAULT_EXECUTOR,
    scheduler=DEFAULT_SCHEDULER,
    storage=DEFAULT_STORAGE,
    workers=None,
) -> QueryResult:
    engine = OLDTEngine(program, database, planner=planner, budget=budget)
    raw = engine.query(query)
    answers = _sorted_answers(query, raw)
    calls, answer_facts = _oldt_call_summary(engine)
    return QueryResult(
        strategy="oldt",
        query=query,
        answers=answers,
        stats=engine.stats,
        calls=calls,
        answer_facts=answer_facts,
    )


def _oldt_call_summary(engine: OLDTEngine):
    """Summarise OLDT tables as (pred, adornment, bound-args) call triples
    and per-(pred, adornment) answer tuple sets."""
    calls: set[tuple] = set()
    answer_facts: dict[tuple[str, str], set[tuple]] = {}
    for table in engine.tables.values():
        call = table.call
        adornment = query_adornment(call)
        bound = tuple(
            arg.value
            for arg, flag in zip(call.args, adornment)
            if flag == "b"
        )
        calls.add((call.predicate, adornment, bound))
        bucket = answer_facts.setdefault((call.predicate, adornment), set())
        for answer in table.answers:
            bucket.add(answer.ground_key())
    return (
        frozenset(calls),
        {key: frozenset(rows) for key, rows in answer_facts.items()},
    )


def _qsqr(
    program: Program,
    query: Atom,
    database: Database | None,
    planner=None,
    budget=None,
    executor=DEFAULT_EXECUTOR,
    scheduler=DEFAULT_SCHEDULER,
    storage=DEFAULT_STORAGE,
    workers=None,
) -> QueryResult:
    engine = QSQREngine(program, database, planner=planner, budget=budget)
    answers = _sorted_answers(query, engine.query(query))
    return QueryResult(
        strategy="qsqr", query=query, answers=answers, stats=engine.stats
    )


def _transform_strategy(name: str, transform, sips: Sips = left_to_right):
    def run(
        program: Program,
        query: Atom,
        database: Database | None,
        planner=None,
        budget=None,
        executor=DEFAULT_EXECUTOR,
        scheduler=DEFAULT_SCHEDULER,
        storage=DEFAULT_STORAGE,
        workers=None,
    ) -> QueryResult:
        stats = EvaluationStats()
        # One checkpoint spans the whole pipeline (lower-strata
        # materialisation plus the rewritten stratum's fixpoint), so a
        # wall-clock budget covers the run end to end rather than being
        # restarted per phase.
        checkpoint = ensure_checkpoint(budget, stats)
        # Convert once up front: lower strata then materialise straight
        # into the requested backend and the fixpoints below take the
        # cheap same-backend copy path.
        working = as_storage(database, storage)
        working.add_atoms(program.facts)
        rules_only = program.without_facts()

        if query.predicate not in rules_only.idb_predicates:
            # Purely extensional query: answer by lookup.
            matching = (
                atom
                for atom in working.atoms(query.predicate)
                if match_atom(query, atom) is not None
            ) if query.predicate in working else ()
            answers = _sorted_answers(query, matching)
            stats.answers = len(answers)
            return QueryResult(
                strategy=name, query=query, answers=answers, stats=stats
            )

        # Structured pipeline: materialise strata strictly below the query
        # predicate's, then rewrite its stratum against the rest as EDB.
        stratification = stratify(rules_only)
        query_stratum = None
        for index, stratum in enumerate(stratification.strata):
            if query.predicate in stratum.idb_predicates:
                query_stratum = index
                break
        if query_stratum is None:
            raise TransformError(
                f"query predicate {query.predicate} not defined in any stratum"
            )
        lower = Program(
            tuple(
                rule
                for stratum in stratification.strata[:query_stratum]
                for rule in stratum.rules
            )
        )
        if lower.proper_rules:
            working, _ = stratified_fixpoint(
                lower,
                working,
                stats,
                planner=planner,
                budget=checkpoint,
                executor=executor,
                scheduler=scheduler,
                storage=storage,
                workers=workers,
            )
        target = stratification.strata[query_stratum]
        edb = frozenset(
            (program.predicates | working.predicates()) - target.idb_predicates
        )
        transformed = transform(target, query, sips, edb)
        evaluation = transformed.evaluation_program()
        completed, _ = seminaive_fixpoint(
            evaluation,
            working,
            stats,
            planner=planner,
            budget=checkpoint,
            executor=executor,
            scheduler=scheduler,
            storage=storage,
            workers=workers,
        )

        goal = transformed.goal
        matching = (
            atom
            for atom in completed.atoms(goal.predicate)
            if match_atom(goal, atom) is not None
        )
        answers = _sorted_answers(query, matching)
        stats.answers = len(answers)
        calls, answer_facts = _transform_call_summary(transformed, completed)
        return QueryResult(
            strategy=name,
            query=query,
            answers=answers,
            stats=stats,
            calls=calls,
            answer_facts=answer_facts,
            transformed=transformed,
        )

    return run


def _transform_call_summary(
    transformed: TransformedProgram, completed: Database
):
    """Summarise call/magic facts and answer facts of a transformed run.

    Rows are decoded to raw values, so the summary is identical across
    storage backends (stored rows are interned ids under columnar).
    """
    decode = completed.decode_row
    calls: set[tuple] = set()
    for call_pred, (predicate, adornment) in transformed.call_predicates.items():
        for row in completed.rows(call_pred):
            calls.add((predicate, adornment, decode(row)))
    answer_facts: dict[tuple[str, str], frozenset[tuple]] = {}
    for ans_pred, (predicate, adornment) in transformed.answer_predicates.items():
        answer_facts[(predicate, adornment)] = frozenset(
            decode(row) for row in completed.rows(ans_pred)
        )
    return frozenset(calls), answer_facts


_STRATEGIES: dict[
    str,
    Callable[
        [Program, Atom, "Database | None", object, object, str], QueryResult
    ],
] = {
    "naive": _bottom_up("naive"),
    "seminaive": _bottom_up("seminaive"),
    "sld": _sld,
    "oldt": _oldt,
    "qsqr": _qsqr,
    "magic": _transform_strategy("magic", magic_sets),
    "supplementary": _transform_strategy("supplementary", supplementary_magic_sets),
    "alexander": _transform_strategy("alexander", alexander_templates),
}


def available_strategies() -> tuple[str, ...]:
    """The names accepted by :func:`run_strategy`, in canonical order."""
    return tuple(_STRATEGIES)


def run_strategy(
    name: str,
    program: Program,
    query: Atom,
    database: Database | None = None,
    sips: Sips | None = None,
    planner=None,
    budget: "EvaluationBudget | Checkpoint | None" = None,
    executor: str = DEFAULT_EXECUTOR,
    scheduler: str = DEFAULT_SCHEDULER,
    storage: str = DEFAULT_STORAGE,
    workers: "int | None" = None,
) -> QueryResult:
    """Evaluate *query* on *program* + *database* under strategy *name*.

    Args:
        sips: optional SIPS override, honoured by the transformation
            strategies only (A1 ablation).
        planner: optional join-planner spec (e.g. ``"greedy"``) enabling
            cost-based body ordering (:mod:`repro.engine.planner`); the
            ``sld`` strategy accepts and ignores it.
        budget: optional :class:`repro.engine.budget.EvaluationBudget`
            bounding the evaluation; every strategy honours it.  Passing a
            running :class:`~repro.engine.budget.Checkpoint` instead makes
            several strategy runs share one wall clock (the CI bench gate
            does this to bound its whole check suite).
        executor: ``"kernel"`` (default) or ``"interpreted"``, selecting
            the rule-body executor of every bottom-up fixpoint involved
            (:mod:`repro.engine.kernel`); the top-down strategies accept
            and ignore it.  Answers and counters are identical either way.
        scheduler: ``"scc"`` (default), ``"parallel"``, or ``"global"``,
            selecting component-wise, worker-pool
            (:mod:`repro.engine.parallel`), or monolithic fixpoint
            scheduling in every bottom-up fixpoint involved; the
            top-down strategies accept and ignore it.  Answers are
            identical in every mode.
        storage: ``"tuples"`` (default) or ``"columnar"``, selecting the
            working-database backend
            (:mod:`repro.engine.columnar`) of every bottom-up fixpoint
            involved; the top-down strategies accept and ignore it.
            Answers, counters, and call summaries are identical either
            way (answers and summaries are always raw values).
        workers: worker-pool size for ``scheduler="parallel"``
            (``None`` = one per CPU core); forwarded to every bottom-up
            fixpoint involved and ignored by the serial schedulers and
            the top-down strategies.
    """
    if name not in _STRATEGIES:
        raise ReproError(
            f"unknown strategy {name!r}; choose from {available_strategies()}"
        )
    if sips is not None and name in ("magic", "supplementary", "alexander"):
        transform = {
            "magic": magic_sets,
            "supplementary": supplementary_magic_sets,
            "alexander": alexander_templates,
        }[name]
        return _transform_strategy(name, transform, sips)(
            program, query, database, planner, budget, executor, scheduler,
            storage, workers,
        )
    return _STRATEGIES[name](
        program, query, database, planner, budget, executor, scheduler,
        storage, workers,
    )
