"""The strategy layer: unified querying, the engine facade, and the
Alexander/OLDT correspondence checker."""

from .compare import Correspondence, check_correspondence
from .engine import Engine
from .strategy import QueryResult, available_strategies, run_strategy

__all__ = [
    "Engine",
    "QueryResult",
    "available_strategies",
    "run_strategy",
    "Correspondence",
    "check_correspondence",
]
