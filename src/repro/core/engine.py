"""The top-level facade: load a program once, query it many ways.

This is the entry point a downstream user sees first::

    from repro import Engine

    engine = Engine.from_source('''
        par(a,b). par(b,c).
        anc(X,Y) :- par(X,Y).
        anc(X,Y) :- par(X,Z), anc(Z,Y).
    ''')
    result = engine.query("anc(a, X)?")            # Alexander by default
    result.answers                                  # (anc(a,b), anc(a,c))
    result.stats.inferences

    engine.query("anc(a, X)?", strategy="oldt")    # same answers, tabled
    engine.explain("anc(a, X)?")                   # strategy shoot-out
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..analysis.safety import require_safe
from ..datalog.atoms import Atom
from ..datalog.parser import parse_program, parse_query
from ..datalog.rules import Program
from ..engine.columnar import DEFAULT_STORAGE
from ..engine.kernel import DEFAULT_EXECUTOR
from ..engine.scheduler import DEFAULT_SCHEDULER
from ..facts.database import Database
from ..transform.sips import Sips, named_sips
from .strategy import QueryResult, available_strategies, run_strategy

__all__ = ["Engine"]

DEFAULT_STRATEGY = "alexander"


class Engine:
    """A loaded program + database, queryable under any strategy."""

    def __init__(
        self,
        program: Program,
        database: Database | None = None,
        check_safety: bool = True,
    ):
        """Wrap *program* and *database*.

        Args:
            program: rules (embedded ground facts are moved into the
                database).
            database: extensional facts; the engine keeps its own copy.
            check_safety: validate range restriction up front (recommended;
                unsafe rules would fail later with poorer messages).
        """
        if check_safety:
            require_safe(program)
        self._database = database.copy() if database is not None else Database()
        self._database.add_atoms(program.facts)
        self._program = program.without_facts()

    # --- constructors --------------------------------------------------------
    @classmethod
    def from_source(cls, text: str, check_safety: bool = True) -> "Engine":
        """Build an engine from Datalog source text."""
        return cls(parse_program(text), check_safety=check_safety)

    @classmethod
    def from_file(cls, path, check_safety: bool = True) -> "Engine":
        """Build an engine from a ``.dl`` file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_source(handle.read(), check_safety=check_safety)

    # --- accessors ------------------------------------------------------------
    @property
    def program(self) -> Program:
        return self._program

    @property
    def database(self) -> Database:
        return self._database

    def add_fact(self, atom: Atom | str) -> bool:
        """Insert one ground fact (atom or source text); True iff new."""
        if isinstance(atom, str):
            atom = parse_query(atom)
        return self._database.add_atom(atom)

    def add_facts(self, atoms: Iterable[Atom]) -> int:
        return self._database.add_atoms(atoms)

    def remove_fact(self, atom: Atom | str) -> bool:
        """Remove one ground fact (atom or source text); True iff stored.

        Removes from the engine's extensional database only — future
        queries see the change; previously prepared queries do not
        (their bases are snapshots).  For a continuously materialised
        model that absorbs deletions incrementally, see
        :meth:`incremental`.
        """
        if isinstance(atom, str):
            atom = parse_query(atom)
        if atom.predicate not in self._database:
            return False
        relation = self._database.relation(atom.predicate)
        return relation.discard(self._database.encode_row(atom.ground_key()))

    def incremental(
        self,
        planner: "str | None" = None,
        budget=None,
        executor: str = DEFAULT_EXECUTOR,
        storage: str = DEFAULT_STORAGE,
        maintenance: str = "recompute",
    ):
        """A continuously materialised view of this engine's program.

        Returns an :class:`repro.engine.incremental.IncrementalEngine`
        snapshot of the current program + database whose ``add_many`` /
        ``remove_many`` patch the materialised model in place.
        *maintenance* selects the deletion strategy: ``"recompute"``
        (default), ``"counting"`` (non-recursive programs), or
        ``"dred"`` (see :mod:`repro.engine.maintain` and
        ``docs/MAINTENANCE.md``).  Negation-free programs only.
        """
        from ..engine.incremental import IncrementalEngine

        return IncrementalEngine(
            self._program,
            self._database,
            planner=planner,
            budget=budget,
            executor=executor,
            storage=storage,
            maintenance=maintenance,
        )

    # --- querying ----------------------------------------------------------------
    def query(
        self,
        goal: Atom | str,
        strategy: str = DEFAULT_STRATEGY,
        sips: "Sips | str | None" = None,
        planner: "str | None" = None,
        budget=None,
        executor: str = DEFAULT_EXECUTOR,
        scheduler: str = DEFAULT_SCHEDULER,
        storage: str = DEFAULT_STORAGE,
        workers: "int | None" = None,
    ) -> QueryResult:
        """Evaluate *goal* under *strategy*.

        Args:
            goal: a query atom or its source text (``"anc(a, X)?"``).
            strategy: one of :func:`available_strategies`.
            sips: optional SIPS name or function for the transformation
                strategies.
            planner: optional join-planner spec (``"greedy"``) enabling
                cost-based body ordering; answers are identical, only
                the join work changes (see ``docs/ARCHITECTURE.md``).
            budget: optional :class:`repro.engine.budget.EvaluationBudget`
                bounding the evaluation; exhaustion raises
                :class:`repro.errors.BudgetExceededError` carrying the
                partial result computed so far.
            executor: ``"kernel"`` (default) or ``"interpreted"``, the
                rule-body executor of the bottom-up fixpoints involved;
                answers and counters are identical either way.
            scheduler: ``"scc"`` (default), ``"parallel"``, or
                ``"global"``, the fixpoint scheduling of the bottom-up
                evaluations involved (:mod:`repro.engine.scheduler`,
                :mod:`repro.engine.parallel`); answers are identical in
                every mode.
            storage: ``"tuples"`` (default) or ``"columnar"``, the
                relation backend of the bottom-up evaluations involved
                (:mod:`repro.engine.columnar`); answers and counters are
                identical either way.
            workers: worker-pool size for ``scheduler="parallel"``
                (``None`` = one per CPU core); ignored by the serial
                schedulers.
        """
        if isinstance(goal, str):
            goal = parse_query(goal)
        if isinstance(sips, str):
            sips = named_sips(sips)
        return run_strategy(
            strategy,
            self._program,
            goal,
            self._database,
            sips,
            planner=planner,
            budget=budget,
            executor=executor,
            scheduler=scheduler,
            storage=storage,
            workers=workers,
        )

    def prepare(
        self,
        goal: Atom | str,
        strategy: str = DEFAULT_STRATEGY,
        sips: "Sips | str | None" = None,
        planner: "str | None" = None,
        budget=None,
        executor: str = DEFAULT_EXECUTOR,
        scheduler: str = DEFAULT_SCHEDULER,
        storage: str = DEFAULT_STORAGE,
        workers: "int | None" = None,
        maintain: "str | None" = None,
    ):
        """Prepare *goal*'s shape for repeated execution.

        Runs the shape-dependent pipeline (stratify, transform, plan,
        compile) once and returns a
        :class:`repro.core.prepare.PreparedQuery` whose
        :meth:`~repro.core.prepare.PreparedQuery.execute` answers any
        goal with the same predicate and adornment — different constants
        included — without repeating any of that work.  Raises
        :class:`repro.errors.UnpreparableStrategyError` for the
        tuple-at-a-time strategies (``sld``, ``oldt``, ``qsqr``).

        The prepared query snapshots the engine's current database;
        facts added afterwards are not visible to it.  Pass *maintain*
        (``"recompute"``, ``"counting"``, or ``"dred"``; materialised
        strategies only) for a maintained shape whose
        :meth:`~repro.core.prepare.PreparedQuery.apply_update` patches
        the materialisation in place instead (``docs/MAINTENANCE.md``).
        """
        from .prepare import prepare_query

        return prepare_query(
            self._program,
            goal,
            self._database,
            strategy=strategy,
            sips=sips,
            planner=planner,
            budget=budget,
            executor=executor,
            scheduler=scheduler,
            storage=storage,
            workers=workers,
            maintain=maintain,
        )

    def ask(
        self,
        goal: Atom | str,
        strategy: str = DEFAULT_STRATEGY,
        budget=None,
    ) -> bool:
        """True iff *goal* has at least one answer."""
        return bool(self.query(goal, strategy, budget=budget).answers)

    def why(self, goal: Atom | str) -> str:
        """A proof tree for a ground goal, rendered as indented ASCII.

        Runs a provenance-tracking evaluation (first derivation of every
        fact is recorded) and reconstructs the goal's proof.  Returns a
        "not derivable" message when the goal does not hold.
        """
        from ..engine.provenance import format_proof, traced_fixpoint

        if isinstance(goal, str):
            goal = parse_query(goal)
        if not goal.is_ground():
            raise ValueError(f"why() needs a ground goal, got {goal}")
        traced = traced_fixpoint(self._program, self._database)
        proof = traced.proof(goal)
        if proof is None:
            return f"{goal} is not derivable"
        return format_proof(proof)

    def explain(
        self,
        goal: Atom | str,
        strategies: Iterable[str] | None = None,
        budget=None,
    ) -> Mapping[str, QueryResult]:
        """Run *goal* under several strategies and return all results.

        The results are keyed by strategy name; callers typically compare
        ``stats.inferences`` across them (the library's whole point).
        A *budget* applies to each strategy run independently.
        """
        chosen = tuple(strategies) if strategies is not None else (
            "seminaive",
            "magic",
            "supplementary",
            "alexander",
            "oldt",
            "qsqr",
        )
        return {name: self.query(goal, name, budget=budget) for name in chosen}

    @staticmethod
    def strategies() -> tuple[str, ...]:
        return available_strategies()
