"""Serialized prepared shapes: a versioned, pickle-free binary format.

The serving layer's prepared-query cache (:mod:`repro.serve.cache`)
lives inside one process.  This module is what lets prepared shapes
cross process boundaries — to worker processes of the multiprocess
server (:mod:`repro.serve.pool`), to an on-disk shape registry
(:mod:`repro.serve.registry`), and into
:mod:`multiprocessing.shared_memory` blocks that workers attach without
copying the byte payload.

Three design rules govern the format:

* **Pickle-free.**  Pickle would happily serialize a
  :class:`~repro.core.prepare.PreparedQuery`, but loading a pickle
  executes whatever the bytes say — unacceptable for an on-disk registry
  shared between processes, and brittle across refactors.  The format
  here is a versioned header (JSON, UTF-8) plus raw column blocks;
  loading never constructs anything but the library's own value types.
* **Bit-identity, not equivalence.**  A reloaded shape must answer
  byte-for-byte like the original: same answers, same enumeration order,
  same inference counters.  That is why the interner's value table is
  serialized *in id order* (rebuilt kernels re-intern rule constants to
  the identical ids), why relation rows are written in insertion order
  (enumeration order survives the trip), and why join plans are stored
  as explicit body permutations (reloading never re-runs the planner —
  ``planner.rules_planned`` and ``transform.rewritings`` stay flat).
* **Versioned, rejected loudly.**  The header carries a format version
  and an interner-encoding version; a mismatch on either — or a byte
  order / item size the reader cannot honour — raises
  :class:`SnapshotFormatError` with a clear message.  Garbage answers
  from a silently misread snapshot are the one failure mode this module
  must never have (``tests/test_snapshot.py`` pins the rejections).

Binary layout::

    b"RPQS" | u16 format | u16 interner-format | u32 header-length
    | header (UTF-8 JSON) | column blocks (array('q') bytes, in the
    order of the header's "blocks" manifest)

Column blocks are dumped and loaded through the buffer protocol —
``array.tobytes()`` on the way out, ``memoryview.cast("q")`` on the way
in — so a relation column never passes through per-value Python
encoding.  :func:`freeze_database` places the entire serialized image in
one :class:`multiprocessing.shared_memory.SharedMemory` block; workers
attach by name and decode straight out of the shared buffer.

Observability: ``snapshot.dumps`` / ``snapshot.loads`` /
``snapshot.bytes`` count serialization work, ``snapshot.shared.*`` the
shared-memory lifecycle.  Rehydrating a prepared shape re-lowers its
kernels (``kernel.rules_compiled`` moves) but runs **zero** transform,
planning, or fixpoint compilation — ``prepare.transforms`` and
``prepare.compiles`` stay flat, which is exactly what the cross-process
registry exists to buy.
"""

from __future__ import annotations

import hashlib
import json
import secrets
import struct
import sys
import threading
from array import array
from contextlib import contextmanager

from ..datalog.atoms import Atom
from ..datalog.intern import ConstantInterner
from ..datalog.parser import parse_program, parse_query
from ..datalog.rules import Program
from ..engine.columnar import ColumnarDatabase, ColumnarRelation, resolve_storage
from ..engine.counters import EvaluationStats
from ..engine.kernel import compile_executors, resolve_executor
from ..engine.matching import compile_rule_ordered
from ..engine.prepared import CompiledComponent, CompiledFixpoint
from ..engine.scheduler import build_schedule, resolve_scheduler
from ..engine.seminaive import _variant_positions
from ..errors import ReproError
from ..facts.database import Database
from ..obs import get_metrics
from ..transform.common import TransformedProgram

__all__ = [
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_FORMAT_VERSION",
    "INTERNER_FORMAT_VERSION",
    "SnapshotError",
    "SnapshotFormatError",
    "dump_database",
    "load_database",
    "dump_prepared",
    "load_prepared",
    "SharedSnapshot",
    "freeze_database",
    "database_fingerprint",
]

SNAPSHOT_MAGIC = b"RPQS"
SNAPSHOT_FORMAT_VERSION = 1
INTERNER_FORMAT_VERSION = 1

_ITEMSIZE = array("q").itemsize  # 8 on every supported platform
_PREFIX = struct.Struct("<4sHHI")


class SnapshotError(ReproError):
    """A value or shape this format cannot represent (e.g. a maintained
    shape, whose live engine has no serialized form)."""


class SnapshotFormatError(SnapshotError):
    """Bytes that are not a loadable snapshot: wrong magic, a bumped
    format or interner version, a foreign byte order, or truncation."""


# --- the interner value table ------------------------------------------------
#
# Constants are serialized as (tag, payload) pairs so the reader rebuilds
# *exactly* the value that was interned — JSON alone would collapse
# 1 / 1.0 / True into one number and lose the distinction the interner's
# dict equality already handled.  Floats go through repr() for exact
# round-tripping (including inf/-inf, which JSON cannot carry).

def _encode_value(value) -> list:
    if value is None:
        return ["n"]
    if isinstance(value, bool):
        return ["b", value]
    if isinstance(value, int):
        return ["i", value]
    if isinstance(value, float):
        return ["f", repr(value)]
    if isinstance(value, str):
        return ["s", value]
    raise SnapshotError(
        f"constant {value!r} of type {type(value).__name__} has no "
        "snapshot encoding (str, int, float, bool, None only)"
    )


def _decode_value(entry: list):
    tag = entry[0]
    if tag == "n":
        return None
    if tag == "b":
        return bool(entry[1])
    if tag == "i":
        return int(entry[1])
    if tag == "f":
        return float(entry[1])
    if tag == "s":
        return entry[1]
    raise SnapshotFormatError(f"unknown constant tag {tag!r} in snapshot")


def _interner_table(interner: ConstantInterner) -> list:
    return [_encode_value(value) for value in interner.table()]


def _restore_interner(table: list) -> ConstantInterner:
    try:
        return ConstantInterner.from_table(
            _decode_value(entry) for entry in table
        )
    except ValueError as exc:
        # Two table entries decoded to equal values — the writer could
        # never have produced that; the bytes are corrupt.
        raise SnapshotFormatError(f"snapshot interner table: {exc}")


def database_fingerprint(database: "Database | None") -> str:
    """An order-independent digest of a database's decoded fact set.

    Keys the cross-process shape registry together with the prepared
    cache key: two datasets with the same rules *and* the same facts may
    share serialized shapes, any difference must not.
    """
    digest = hashlib.sha256()
    if database is None:
        return digest.hexdigest()
    for name in sorted(database.predicates()):
        relation = database.relation(name)
        digest.update(f"{name}/{relation.arity}\x00".encode("utf-8"))
        for row in sorted(repr(database.decode_row(row)) for row in relation):
            digest.update(row.encode("utf-8"))
            digest.update(b"\x01")
    return digest.hexdigest()


# --- databases ---------------------------------------------------------------

def _relation_columns(
    relation, arity: int, intern_row
) -> "tuple[list[array], int]":
    """The live rows of *relation* as per-column ``array('q')`` blocks.

    A columnar relation with no dead rows hands its column arrays over
    directly (the buffer-protocol fast path — no per-row work at all);
    otherwise rows are re-encoded in insertion order, which both
    compacts dead cells away and translates tuple-backend rows into the
    snapshot's interner.
    """
    if (
        isinstance(relation, ColumnarRelation)
        and intern_row is None
        and relation._dead == 0
    ):
        return list(relation._columns), len(relation)
    columns = [array("q") for _ in range(arity)]
    count = 0
    for row in relation:
        encoded = row if intern_row is None else intern_row(row)
        for column, value in zip(columns, encoded):
            column.append(value)
        count += 1
    return columns, count


def _database_header(database: Database) -> tuple[dict, list[bytes]]:
    """The header fields and ordered column blocks describing *database*."""
    if isinstance(database, ColumnarDatabase):
        storage = "columnar"
        interner = database.interner
        intern_row = None
    else:
        storage = "tuples"
        # A transient interner dictionary-encodes the tuple backend's raw
        # rows so both backends share one block format; the reader
        # decodes straight back to raw values.
        interner = ConstantInterner()
        intern_row = interner.intern_row
    relations = []
    blocks: list[bytes] = []
    manifest = []
    for relation in database.relations():
        columns, rows = _relation_columns(relation, relation.arity, intern_row)
        relations.append(
            {"name": relation.name, "arity": relation.arity, "rows": rows}
        )
        for column_index, column in enumerate(columns):
            data = column.tobytes()
            manifest.append([relation.name, column_index, len(data)])
            blocks.append(data)
    header = {
        "storage": storage,
        "interner": _interner_table(interner),
        "relations": relations,
        "blocks": manifest,
    }
    return header, blocks


def _assemble(header: dict, blocks: list[bytes]) -> bytes:
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    prefix = _PREFIX.pack(
        SNAPSHOT_MAGIC,
        SNAPSHOT_FORMAT_VERSION,
        INTERNER_FORMAT_VERSION,
        len(header_bytes),
    )
    payload = b"".join([prefix, header_bytes, *blocks])
    obs = get_metrics()
    if obs.enabled:
        obs.incr("snapshot.dumps")
        obs.incr("snapshot.bytes", len(payload))
    return payload


def parse_snapshot(data) -> tuple[dict, memoryview]:
    """Split snapshot *data* into its header and block payload.

    Accepts ``bytes`` or any buffer (a shared-memory view); the returned
    memoryview aliases *data*, so blocks decode without an intermediate
    copy.  Raises :class:`SnapshotFormatError` on anything unreadable.
    """
    view = memoryview(data).cast("B")
    if len(view) < _PREFIX.size:
        raise SnapshotFormatError(
            f"snapshot truncated: {len(view)} bytes is shorter than the "
            f"{_PREFIX.size}-byte prefix"
        )
    magic, fmt, interner_fmt, header_len = _PREFIX.unpack_from(view, 0)
    if magic != SNAPSHOT_MAGIC:
        raise SnapshotFormatError(
            f"not a snapshot: expected magic {SNAPSHOT_MAGIC!r}, "
            f"got {bytes(magic)!r}"
        )
    if fmt != SNAPSHOT_FORMAT_VERSION:
        raise SnapshotFormatError(
            f"snapshot format version {fmt} is not supported (this build "
            f"reads version {SNAPSHOT_FORMAT_VERSION}); re-prepare and "
            "re-save the shape"
        )
    if interner_fmt != INTERNER_FORMAT_VERSION:
        raise SnapshotFormatError(
            f"snapshot interner encoding version {interner_fmt} is not "
            f"supported (this build reads version "
            f"{INTERNER_FORMAT_VERSION}); re-prepare and re-save the shape"
        )
    body_start = _PREFIX.size + header_len
    if len(view) < body_start:
        raise SnapshotFormatError(
            f"snapshot truncated: header claims {header_len} bytes, "
            f"only {len(view) - _PREFIX.size} present"
        )
    try:
        header = json.loads(bytes(view[_PREFIX.size:body_start]).decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise SnapshotFormatError(f"snapshot header is not valid JSON: {exc}")
    if not isinstance(header, dict):
        raise SnapshotFormatError("snapshot header must be a JSON object")
    if header.get("byteorder") != sys.byteorder:
        raise SnapshotFormatError(
            f"snapshot byte order {header.get('byteorder')!r} does not "
            f"match this host ({sys.byteorder!r})"
        )
    if header.get("itemsize") != _ITEMSIZE:
        raise SnapshotFormatError(
            f"snapshot item size {header.get('itemsize')!r} does not "
            f"match this host's array('q') ({_ITEMSIZE})"
        )
    total = sum(length for _, _, length in header.get("blocks", ()))
    if len(view) - body_start < total:
        raise SnapshotFormatError(
            f"snapshot truncated: blocks claim {total} bytes, "
            f"only {len(view) - body_start} present"
        )
    return header, view[body_start:]


def _decode_relations(
    header: dict, payload: memoryview, interner: "ConstantInterner | None"
) -> Database:
    """Rebuild the database described by *header* from *payload* blocks.

    With *interner* the result is columnar over that table (rows stay
    id-encoded); without, rows decode to raw values in a tuple-backend
    database.  Either way rows land in their original insertion order.
    """
    if interner is not None:
        database: Database = ColumnarDatabase(interner=interner)
    else:
        database = Database()
        values = [
            _decode_value(entry) for entry in header.get("interner", ())
        ]
    arities = {
        spec["name"]: spec["arity"] for spec in header.get("relations", ())
    }
    row_counts = {
        spec["name"]: spec["rows"] for spec in header.get("relations", ())
    }
    columns_by_relation: dict[str, list] = {name: [] for name in arities}
    offset = 0
    for name, column_index, length in header.get("blocks", ()):
        block = payload[offset:offset + length]
        offset += length
        if name not in arities:
            raise SnapshotFormatError(
                f"snapshot block references unknown relation {name!r}"
            )
        if length % _ITEMSIZE:
            raise SnapshotFormatError(
                f"snapshot block for {name!r} column {column_index} has "
                f"length {length}, not a multiple of {_ITEMSIZE}"
            )
        columns_by_relation[name].append(block.cast("q"))
    for name, arity in arities.items():
        relation = database.relation(name, arity)
        columns = columns_by_relation[name]
        rows = row_counts[name]
        if len(columns) != arity or any(len(c) != rows for c in columns):
            raise SnapshotFormatError(
                f"snapshot relation {name!r} expects {arity} columns of "
                f"{rows} rows; blocks do not agree"
            )
        if arity == 0:
            continue
        if interner is not None:
            for row in zip(*columns):
                relation.add(row)
        else:
            for row in zip(*columns):
                relation.add(tuple(values[ident] for ident in row))
    return database


def dump_database(database: Database, extra: "dict | None" = None) -> bytes:
    """Serialize *database* (either backend) to snapshot bytes.

    *extra* is an arbitrary JSON-able mapping stored under the header's
    ``"extra"`` key — the multiprocess server uses it to ship the
    dataset's program text, name, version, and data fingerprint in the
    same shared-memory block as the facts.
    """
    header, blocks = _database_header(database)
    header["kind"] = "database"
    header["byteorder"] = sys.byteorder
    header["itemsize"] = _ITEMSIZE
    if extra is not None:
        header["extra"] = extra
    return _assemble(header, blocks)


def load_database(data, storage: "str | None" = None) -> tuple[Database, dict]:
    """Decode snapshot *data* back into a database; returns ``(db, header)``.

    *storage* overrides the backend to materialise (``"tuples"`` decodes
    a columnar dump to raw rows and vice versa); by default the dump's
    own backend is rebuilt — columnar dumps get a fresh interner holding
    exactly the serialized table, in the serialized id order.
    """
    header, payload = parse_snapshot(data)
    if header.get("kind") not in ("database", "prepared"):
        raise SnapshotFormatError(
            f"snapshot kind {header.get('kind')!r} is not a database dump"
        )
    target = resolve_storage(storage or header.get("storage", "tuples"))
    interner = (
        _restore_interner(header.get("interner", []))
        if target == "columnar"
        else None
    )
    database = _decode_relations(header, payload, interner)
    obs = get_metrics()
    if obs.enabled:
        obs.incr("snapshot.loads")
    return database, header


# --- prepared queries --------------------------------------------------------

def _plan_permutations(fixpoint: CompiledFixpoint) -> list[list[int]]:
    """Each rule's compiled body order, as indices into its textual body.

    The permutation is recovered through ``CompiledLiteral.source`` —
    the compiler threads the original literal objects through, so an
    identity scan maps every compiled position back to its textual one.
    Storing the order explicitly is what lets :func:`load_prepared`
    rebuild identical join plans without re-running the planner.
    """
    pairs = (
        [pair for cc in fixpoint.components for pair in cc.executors]
        if fixpoint.scheduler != "global"
        else list(fixpoint.executors)
    )
    compiled_by_rule = {id(cr.rule): cr for cr, _ in pairs}
    permutations = []
    for rule in fixpoint.program.rules:
        compiled = compiled_by_rule.get(id(rule))
        if compiled is None:
            permutations.append(list(range(len(rule.body))))
            continue
        position_of = {id(literal): i for i, literal in enumerate(rule.body)}
        permutations.append(
            [position_of[id(cl.source)] for cl in compiled.body]
        )
    return permutations


def _rehydrate_fixpoint(
    program: Program,
    plans: list[list[int]],
    executor: str,
    scheduler: str,
    storage: str,
    interner: "ConstantInterner | None",
) -> CompiledFixpoint:
    """Rebuild a :class:`CompiledFixpoint` from serialized plans.

    Kernels are re-lowered (their closures cannot be serialized) against
    the restored interner, whose id assignments match the original
    table, so baked constant ids — and therefore every probe — are
    bit-identical.  No planner, no transform, no
    :func:`~repro.engine.prepared.compile_fixpoint` — the
    ``prepare.transforms`` / ``prepare.compiles`` counters stay flat.
    """
    resolve_executor(executor)
    mode = resolve_scheduler(scheduler)
    if len(plans) != len(program.rules):
        raise SnapshotFormatError(
            f"snapshot carries {len(plans)} join plans for "
            f"{len(program.rules)} rules"
        )
    compiled_by_rule = {}
    for rule, permutation in zip(program.rules, plans):
        if sorted(permutation) != list(range(len(rule.body))):
            raise SnapshotFormatError(
                f"snapshot join plan {permutation} is not a permutation "
                f"of the body of {rule}"
            )
        ordered = tuple(rule.body[index] for index in permutation)
        compiled_by_rule[rule] = compile_rule_ordered(rule, ordered)
    if mode != "global":
        components = []
        for component in build_schedule(program).components:
            compiled_rules = [
                compiled_by_rule[rule] for rule in component.rules
            ]
            components.append(
                CompiledComponent(
                    component,
                    tuple(
                        compile_executors(compiled_rules, executor, interner)
                    ),
                )
            )
        return CompiledFixpoint(
            program=program,
            executor=executor,
            scheduler=mode,
            storage=storage,
            interner=interner,
            components=tuple(components),
        )
    compiled_rules = [
        compiled_by_rule[rule] for rule in program.proper_rules
    ]
    executors = tuple(compile_executors(compiled_rules, executor, interner))
    derived = program.idb_predicates
    variants = tuple(
        (pair[0], pair[1], _variant_positions(pair[0], derived))
        for pair in executors
    )
    return CompiledFixpoint(
        program=program,
        executor=executor,
        scheduler=mode,
        storage=storage,
        interner=interner,
        executors=executors,
        variants=variants,
    )


def _predicate_map(mapping) -> dict:
    return {name: list(pair) for name, pair in mapping.items()}


def dump_prepared(prepared) -> bytes:
    """Serialize a :class:`~repro.core.prepare.PreparedQuery` to bytes.

    Transform and materialised shapes only: a maintained shape holds a
    live :class:`~repro.engine.incremental.IncrementalEngine` whose
    counting/DRed bookkeeping has no serialized form, so it raises
    :class:`SnapshotError` — callers (the shape registry) simply skip
    persisting those.
    """
    if prepared.mode == "maintained":
        raise SnapshotError(
            "maintained shapes hold a live incremental engine and cannot "
            "be serialized; re-prepare with maintain=None to snapshot"
        )
    header, blocks = _database_header(prepared.base)
    fixpoint = prepared.fixpoint
    if fixpoint is not None and fixpoint.interner is not None:
        # The base was re-encoded into the fixpoint's interner at prepare
        # time, so _database_header already serialized that exact table;
        # rebuilding from it re-creates both in one pass.
        assert prepared.base.interner is fixpoint.interner
    meta = {
        "strategy": prepared.strategy,
        "mode": prepared.mode,
        "query": str(prepared.query),
        "adornment": prepared.adornment,
        "key": list(prepared.key),
        "prepare_stats": prepared.prepare_stats.as_dict(),
    }
    if prepared.transformed is not None:
        transformed = prepared.transformed
        meta["transformed"] = {
            "kind": transformed.kind,
            "rules": [str(rule) for rule in transformed.program.rules],
            "goal": str(transformed.goal),
            "seeds": [str(seed) for seed in transformed.seeds],
            "answer_predicate": transformed.answer_predicate,
            "call_predicates": _predicate_map(transformed.call_predicates),
            "answer_predicates": _predicate_map(transformed.answer_predicates),
            "original_query": str(transformed.original_query),
        }
    if fixpoint is not None:
        meta["fixpoint"] = {
            "executor": fixpoint.executor,
            "scheduler": fixpoint.scheduler,
            "storage": fixpoint.storage,
            "plans": _plan_permutations(fixpoint),
        }
    header["kind"] = "prepared"
    header["byteorder"] = sys.byteorder
    header["itemsize"] = _ITEMSIZE
    header["prepared"] = meta
    return _assemble(header, blocks)


def load_prepared(data):
    """Rebuild a :class:`~repro.core.prepare.PreparedQuery` from bytes.

    The result is bit-identical to the shape that was dumped: same base
    fact set in the same insertion order, same interner id assignments,
    same join plans, same cache key — so ``execute()`` returns the same
    answers with the same counters (pinned over seeded random programs
    by ``tests/test_snapshot.py``).
    """
    from .prepare import PreparedQuery  # local: prepare imports engine layers

    header, payload = parse_snapshot(data)
    if header.get("kind") != "prepared":
        raise SnapshotFormatError(
            f"snapshot kind {header.get('kind')!r} is not a prepared shape"
        )
    meta = header.get("prepared")
    if not isinstance(meta, dict):
        raise SnapshotFormatError("prepared snapshot is missing its metadata")
    fixpoint_meta = meta.get("fixpoint")
    storage = header.get("storage", "tuples")
    interner = (
        _restore_interner(header.get("interner", []))
        if storage == "columnar"
        else None
    )
    base = _decode_relations(header, payload, interner)
    transformed = None
    if meta.get("transformed") is not None:
        spec = meta["transformed"]
        program = parse_program("\n".join(spec["rules"]))
        transformed = TransformedProgram(
            program=program,
            goal=parse_query(spec["goal"]),
            seeds=tuple(parse_query(text) for text in spec["seeds"]),
            answer_predicate=spec["answer_predicate"],
            call_predicates={
                name: tuple(pair)
                for name, pair in spec["call_predicates"].items()
            },
            answer_predicates={
                name: tuple(pair)
                for name, pair in spec["answer_predicates"].items()
            },
            original_query=parse_query(spec["original_query"]),
            kind=spec["kind"],
        )
    fixpoint = None
    if fixpoint_meta is not None:
        if transformed is None:
            raise SnapshotFormatError(
                "prepared snapshot has a fixpoint but no transformed program"
            )
        fixpoint = _rehydrate_fixpoint(
            transformed.program,
            fixpoint_meta["plans"],
            fixpoint_meta["executor"],
            fixpoint_meta["scheduler"],
            fixpoint_meta["storage"],
            interner,
        )
    stats = EvaluationStats(**meta.get("prepare_stats", {}))
    prepared = PreparedQuery(
        strategy=meta["strategy"],
        mode=meta["mode"],
        query=parse_query(meta["query"]),
        adornment=meta["adornment"],
        base=base,
        key=tuple(meta["key"]),
        transformed=transformed,
        fixpoint=fixpoint,
        prepare_stats=stats,
    )
    obs = get_metrics()
    if obs.enabled:
        obs.incr("snapshot.loads")
    return prepared


# --- shared memory -----------------------------------------------------------

class SharedSnapshot:
    """A serialized snapshot resident in one shared-memory block.

    The parent process :meth:`create`\\ s the block (one copy of the
    serialized bytes into the shared buffer); workers :meth:`attach` by
    name and hand :attr:`data` — a memoryview directly over the shared
    buffer — to :func:`load_database` / :func:`load_prepared`, so the
    byte payload itself is never copied between processes.

    Lifetime discipline: the creator owns :meth:`unlink`; attachers only
    ever :meth:`close`.  Attaching deliberately unregisters the segment
    from the process-local :mod:`multiprocessing.resource_tracker` —
    otherwise a worker's tracker would *unlink the parent's live block*
    when that worker exits (the tracker assumes whoever registered a
    segment owns it), destroying the dataset under every other process.
    """

    __slots__ = ("_shm", "_size", "_owner")

    def __init__(self, shm, size: int, owner: bool):
        self._shm = shm
        self._size = size
        self._owner = owner

    @classmethod
    def create(cls, data: bytes, name: "str | None" = None) -> "SharedSnapshot":
        from multiprocessing import shared_memory

        name = name or f"repro-{secrets.token_hex(6)}"
        shm = shared_memory.SharedMemory(name=name, create=True, size=len(data))
        shm.buf[: len(data)] = data
        obs = get_metrics()
        if obs.enabled:
            obs.incr("snapshot.shared.created")
            obs.incr("snapshot.shared.bytes", len(data))
        return cls(shm, len(data), owner=True)

    @classmethod
    def attach(cls, name: str, size: int) -> "SharedSnapshot":
        from multiprocessing import shared_memory

        try:
            with _attach_untracked():
                shm = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            raise SnapshotError(
                f"shared snapshot {name!r} no longer exists (retired by a "
                "newer dataset version?)"
            )
        obs = get_metrics()
        if obs.enabled:
            obs.incr("snapshot.shared.attached")
        return cls(shm, size, owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def size(self) -> int:
        return self._size

    @property
    def data(self) -> memoryview:
        """The serialized snapshot bytes, aliasing the shared buffer.

        Shared-memory blocks round up to the allocation granularity, so
        the view is trimmed to the exact serialized length recorded at
        create/attach time.
        """
        return self._shm.buf[: self._size]

    def close(self) -> None:
        try:
            self._shm.close()
        except BufferError:
            # A decoded view still aliases the buffer; the OS reclaims
            # the mapping at process exit either way.
            pass

    def unlink(self) -> None:
        if not self._owner:
            return
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        obs = get_metrics()
        if obs.enabled:
            obs.incr("snapshot.shared.unlinked")

    def __repr__(self) -> str:
        return f"SharedSnapshot({self.name!r}, {self._size} bytes)"


_TRACKER_LOCK = threading.Lock()


@contextmanager
def _attach_untracked():
    """Suppress resource-tracker registration for the duration.

    ``SharedMemory(name=...)`` registers the segment with the process's
    resource tracker, which assumes the registrant owns it and unlinks
    it when the process exits — so a restarting worker would destroy
    the dispatcher's live block (bpo-39959).  Worse, spawn children
    share the parent's tracker daemon, so even a polite ``unregister``
    after the fact removes the *parent's* registration and turns the
    parent's own unlink into a tracker-side traceback.  Attachers are
    never owners here, so the clean fix is to keep the tracker out of
    the attach entirely.  (Python 3.13+ has ``track=False`` for exactly
    this; this shim covers the older runtimes.)
    """
    try:
        from multiprocessing import resource_tracker
    except ImportError:  # pragma: no cover - platform without tracker
        yield
        return
    with _TRACKER_LOCK:
        original = resource_tracker.register

        def register(name, rtype):
            if rtype != "shared_memory":
                original(name, rtype)

        resource_tracker.register = register
        try:
            yield
        finally:
            resource_tracker.register = original


def freeze_database(
    database: Database, extra: "dict | None" = None
) -> SharedSnapshot:
    """Serialize *database* into a fresh shared-memory block.

    The returned snapshot is immutable by convention: the serving layer
    treats dataset databases as frozen once published, and workers only
    ever read the block.  The caller owns the block's lifetime
    (:meth:`SharedSnapshot.unlink` when the dataset version retires).
    """
    return SharedSnapshot.create(dump_database(database, extra=extra))
