"""The call/answer correspondence checker — Seki's Theorem 1, executable.

The paper's central claim is that bottom-up evaluation of the
Alexander-transformed program and OLDT resolution generate the *same*
subqueries and the *same* answers.  :func:`check_correspondence` runs both
strategies on a (program, query, database) triple and compares:

* **calls** — Alexander ``call_*`` facts vs OLDT tabled subgoals, both
  normalised to ``(predicate, adornment, bound-argument tuple)`` triples;
* **answers** — Alexander ``ans_*`` facts vs the union of OLDT table
  answers, per ``(predicate, adornment)``.

Caveat (documented in DESIGN.md): OLDT tables are keyed by *variants*, so
a call pattern with a repeated variable (``p(X, X)``) is a distinct table
that the positional adornment normalisation cannot express.  Such bodies
do not occur in the standard workload suite; the checker reports any
mismatch honestly rather than normalising it away.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.atoms import Atom
from ..datalog.rules import Program
from ..engine.columnar import DEFAULT_STORAGE
from ..engine.counters import EvaluationStats
from ..engine.kernel import DEFAULT_EXECUTOR
from ..engine.scheduler import DEFAULT_SCHEDULER
from ..facts.database import Database
from .strategy import QueryResult, run_strategy

__all__ = ["Correspondence", "check_correspondence"]


@dataclass(frozen=True)
class Correspondence:
    """The outcome of one Alexander-vs-OLDT comparison.

    ``calls_*`` hold ``(predicate, adornment, bound-args)`` triples;
    ``answers_*`` hold ``(predicate, adornment, row)`` triples.
    """

    query: Atom
    calls_matched: frozenset[tuple]
    calls_only_alexander: frozenset[tuple]
    calls_only_oldt: frozenset[tuple]
    answers_matched: frozenset[tuple]
    answers_only_alexander: frozenset[tuple]
    answers_only_oldt: frozenset[tuple]
    alexander_stats: EvaluationStats
    oldt_stats: EvaluationStats
    alexander_result: QueryResult
    oldt_result: QueryResult

    @property
    def calls_agree(self) -> bool:
        return not self.calls_only_alexander and not self.calls_only_oldt

    @property
    def answers_agree(self) -> bool:
        return not self.answers_only_alexander and not self.answers_only_oldt

    @property
    def exact(self) -> bool:
        """True iff calls and answers coincide (the paper's Theorem 1)."""
        return self.calls_agree and self.answers_agree

    @property
    def inference_ratio(self) -> float:
        """Alexander inferences per OLDT inference (Theorem 2's constant).

        Infinity when OLDT recorded zero inferences but Alexander did not.
        """
        if self.oldt_stats.inferences == 0:
            return 0.0 if self.alexander_stats.inferences == 0 else float("inf")
        return self.alexander_stats.inferences / self.oldt_stats.inferences

    def summary(self) -> str:
        lines = [
            f"query: {self.query}",
            f"calls:   {len(self.calls_matched)} shared, "
            f"{len(self.calls_only_alexander)} Alexander-only, "
            f"{len(self.calls_only_oldt)} OLDT-only",
            f"answers: {len(self.answers_matched)} shared, "
            f"{len(self.answers_only_alexander)} Alexander-only, "
            f"{len(self.answers_only_oldt)} OLDT-only",
            f"inferences: alexander={self.alexander_stats.inferences} "
            f"oldt={self.oldt_stats.inferences} "
            f"ratio={self.inference_ratio:.2f}",
            f"exact: {self.exact}",
        ]
        return "\n".join(lines)


def _answer_triples(result: QueryResult) -> frozenset[tuple]:
    triples = set()
    for (predicate, adornment), rows in result.answer_facts.items():
        for row in rows:
            triples.add((predicate, adornment, row))
    return frozenset(triples)


def check_correspondence(
    program: Program,
    query: Atom,
    database: Database | None = None,
    planner=None,
    budget=None,
    executor: str = DEFAULT_EXECUTOR,
    scheduler: str = DEFAULT_SCHEDULER,
    storage: str = DEFAULT_STORAGE,
) -> Correspondence:
    """Run Alexander (bottom-up) and OLDT on the same query and compare.

    Args:
        planner: optional join-planner spec (e.g. ``"greedy"``) applied to
            *both* sides.  Planning must not disturb the correspondence:
            bottom-up it only reorders joins within a rule body, top-down
            it only permutes runs of extensional literals, so the
            call/answer sets are provably unchanged — running the checker
            with a planner pins exactly that.
        budget: optional :class:`repro.engine.budget.EvaluationBudget`,
            applied to *each side independently* — every run gets the
            budget's full allowance, so all four limits stay meaningful
            (a shared clock would leave the counter limits watching the
            wrong side's statistics).
        executor: rule-body executor for the Alexander side's bottom-up
            fixpoints (OLDT ignores it).  The kernel/interpreted choice
            must not disturb the correspondence either — both enumerate
            the same matches — and running the checker with
            ``executor="kernel"`` pins that.
        scheduler: fixpoint scheduling for the Alexander side's
            bottom-up evaluations (OLDT accepts and ignores it).
            Scheduling changes *when* facts are derived, never *which*,
            so the call/answer sets are unchanged — running the checker
            with ``scheduler="scc"`` (the default) pins that.
        storage: relation backend for the Alexander side's bottom-up
            evaluations (OLDT accepts and ignores it).  Call/answer
            summaries are always reported in raw values, so the
            correspondence is backend-independent — running the checker
            with ``storage="columnar"`` pins that.
    """
    alexander = run_strategy(
        "alexander",
        program,
        query,
        database,
        planner=planner,
        budget=budget,
        executor=executor,
        scheduler=scheduler,
        storage=storage,
    )
    oldt = run_strategy(
        "oldt",
        program,
        query,
        database,
        planner=planner,
        budget=budget,
        scheduler=scheduler,
    )

    alexander_calls = alexander.calls
    oldt_calls = oldt.calls
    alexander_answers = _answer_triples(alexander)
    oldt_answers = _answer_triples(oldt)

    return Correspondence(
        query=query,
        calls_matched=frozenset(alexander_calls & oldt_calls),
        calls_only_alexander=frozenset(alexander_calls - oldt_calls),
        calls_only_oldt=frozenset(oldt_calls - alexander_calls),
        answers_matched=frozenset(alexander_answers & oldt_answers),
        answers_only_alexander=frozenset(alexander_answers - oldt_answers),
        answers_only_oldt=frozenset(oldt_answers - alexander_answers),
        alexander_stats=alexander.stats,
        oldt_stats=oldt.stats,
        alexander_result=alexander,
        oldt_result=oldt,
    )
