"""Prepared queries: run the query pipeline once, execute it many times.

Every call to :func:`repro.core.strategy.run_strategy` re-parses,
re-adorns, re-transforms, re-plans, and re-compiles — work that depends
only on the *shape* of the query (predicate + binding pattern), not on
its constants.  This module is the pure "prepare" half of that pipeline:

* :func:`prepare_query` runs everything shape-dependent — stratification,
  lower-strata materialisation, the Alexander/magic/supplementary
  rewriting, join planning, rule compilation, kernel lowering — and
  returns an immutable-ish :class:`PreparedQuery`.
* :meth:`PreparedQuery.execute` evaluates a compatible goal (same
  predicate, same adornment, any constants) by injecting a fresh seed
  fact and running the precompiled fixpoint
  (:mod:`repro.engine.prepared`).  No parse, no adorn, no transform, no
  plan, no compile — observable as flat ``transform.*`` / ``planner.*`` /
  ``kernel.*`` counters across executions.
* :func:`prepared_cache_key` canonicalises the identity the query
  service caches on: (program fingerprint, strategy, SIPS, planner,
  executor, scheduler, storage, goal predicate, goal adornment).

Three preparation modes cover the strategy spectrum:

* **transform** (``alexander``, ``magic``, ``supplementary``) — the full
  pipeline above.  Strata strictly below the query predicate's are
  materialised once at prepare time and the completed database is kept
  as the execution base (valid as long as the underlying database is
  unchanged — the serving layer versions its datasets and re-prepares
  after every load).
* **materialised** (``naive``, ``seminaive``, and any purely extensional
  goal) — bottom-up evaluation is query-independent, so preparation
  materialises the full model once and execution is a lookup.
* **unpreparable** (``sld``, ``oldt``, ``qsqr``) — tuple-at-a-time
  engines have no reusable compiled form;
  :class:`repro.errors.UnpreparableStrategyError` tells callers to fall
  back to direct execution.

A materialised shape can additionally be prepared **maintained**
(``maintain="counting" | "dred" | "recompute"``): the full model is held
by an :class:`repro.engine.incremental.IncrementalEngine` instead of a
frozen database, and :meth:`PreparedQuery.apply_update` patches it in
place under base-fact churn (batched removals then insertions, one
fixpoint continuation each) — so the serving layer can absorb updates
without re-preparing the world.  Execution is still a lookup; answer
sets stay identical to a fresh materialisation because the maintenance
modes are bit-identical to recomputation (``tests/
test_maintenance_differential.py``).

Answer sets are identical to the direct path by construction: the
rewriting is adornment-determined, so rebinding constants only moves the
seed fact, exactly as re-transforming would (pinned across strategies
and constants by ``tests/test_prepare.py``).
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field

from ..analysis.stratify import stratify
from ..datalog.atoms import Atom
from ..datalog.parser import parse_query
from ..datalog.rules import Program
from ..datalog.terms import Constant
from ..datalog.unify import match_atom
from ..engine.budget import Checkpoint, EvaluationBudget
from ..engine.columnar import DEFAULT_STORAGE, as_storage, resolve_storage
from ..engine.counters import EvaluationStats
from ..engine.incremental import IncrementalEngine
from ..engine.kernel import DEFAULT_EXECUTOR, resolve_executor
from ..engine.maintain import resolve_maintenance
from ..engine.prepared import CompiledFixpoint, compile_fixpoint, run_fixpoint
from ..engine.scheduler import DEFAULT_SCHEDULER, resolve_scheduler
from ..engine.stratified import stratified_fixpoint
from ..errors import ReproError, TransformError, UnpreparableStrategyError
from ..facts.database import Database
from ..obs import get_metrics
from ..transform.adorn import query_adornment
from ..transform.alexander import alexander_templates
from ..transform.common import TransformedProgram, bound_args
from ..transform.magic import magic_sets
from ..transform.sips import Sips, left_to_right, named_sips
from ..transform.supplementary import supplementary_magic_sets
from .strategy import QueryResult, _sorted_answers, _transform_call_summary

__all__ = [
    "PreparedQuery",
    "prepare_query",
    "prepared_cache_key",
    "program_fingerprint",
    "TRANSFORM_STRATEGIES",
    "MATERIALISED_STRATEGIES",
    "UNPREPARABLE_STRATEGIES",
]

TRANSFORM_STRATEGIES = frozenset({"alexander", "magic", "supplementary"})
MATERIALISED_STRATEGIES = frozenset({"naive", "seminaive"})
UNPREPARABLE_STRATEGIES = frozenset({"sld", "oldt", "qsqr"})

_TRANSFORMS = {
    "alexander": alexander_templates,
    "magic": magic_sets,
    "supplementary": supplementary_magic_sets,
}


def program_fingerprint(program: Program) -> str:
    """A stable hex digest of *program*'s canonical rule text.

    Rule order is preserved (it is semantically irrelevant but keeps the
    fingerprint cheap and deterministic); two programs with the same
    rules in the same order always collide, which is exactly the reuse
    the prepared-query cache wants.
    """
    text = "\n".join(str(rule) for rule in program.rules)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _sips_label(sips: "Sips | str | None") -> str:
    if sips is None:
        return "default"
    if isinstance(sips, str):
        return sips
    return getattr(sips, "__name__", repr(sips))


def prepared_cache_key(
    program: Program,
    goal: Atom,
    strategy: str,
    sips: "Sips | str | None" = None,
    planner: "str | None" = None,
    executor: str = DEFAULT_EXECUTOR,
    scheduler: str = DEFAULT_SCHEDULER,
    storage: str = DEFAULT_STORAGE,
    maintain: "str | None" = None,
) -> tuple:
    """The identity a prepared query is reusable under.

    For the transform strategies the goal contributes its *shape* only —
    predicate and adornment, never its constants — so ``anc(a, X)?`` and
    ``anc(b, X)?`` share one cache entry.  For the materialised
    strategies the model is query-independent, so the goal contributes
    nothing (``*``/``*``) and every goal shares one entry per
    (program, config).  A maintained shape is a distinct entry from its
    frozen counterpart (the *maintain* component, ``""`` when absent).
    """
    if strategy in MATERIALISED_STRATEGIES:
        predicate, adornment = "*", "*"
    else:
        predicate, adornment = goal.predicate, query_adornment(goal)
    return (
        program_fingerprint(program),
        strategy,
        _sips_label(sips),
        planner or "",
        executor,
        scheduler,
        storage,
        maintain or "",
        predicate,
        adornment,
    )


@dataclass
class PreparedQuery:
    """One query shape, compiled and ready for repeated execution.

    Attributes:
        strategy: strategy name the results report.
        mode: ``"transform"``, ``"materialised"``, or ``"maintained"``
            (see module docstring).
        query: the template goal the shape was prepared from.
        adornment: the template's binding pattern; every executed goal
            must reproduce it.
        base: the execution base — EDB plus program facts, with lower
            strata (transform mode) or the full model (materialised and
            maintained modes) already completed.  Shared across
            executions and copied per run; treated as immutable except
            through :meth:`apply_update`.
        transformed: the rewriting (transform mode only).
        fixpoint: the compiled evaluation plan of the rewritten stratum
            (transform mode only).
        engine: the live incremental engine (maintained mode only);
            ``base`` aliases its materialised database.
        key: the :func:`prepared_cache_key` tuple.
        prepare_stats: counters accumulated while preparing (lower-strata
            or full materialisation); execution stats never include them.
    """

    strategy: str
    mode: str
    query: Atom
    adornment: str
    base: Database
    key: tuple
    transformed: "TransformedProgram | None" = None
    fixpoint: "CompiledFixpoint | None" = None
    engine: "IncrementalEngine | None" = None
    prepare_stats: EvaluationStats = field(default_factory=EvaluationStats)
    _update_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    # --- compatibility --------------------------------------------------------
    def compatible(self, goal: Atom) -> bool:
        """True iff *goal* can be executed by this prepared shape.

        Materialised and maintained shapes hold the full model and
        answer any goal by lookup — matching the ``*``/``*`` cache key
        all goals share — so every goal is compatible.  Transform shapes
        are specialised to one predicate/arity/adornment.
        """
        if self.mode != "transform":
            return True
        return (
            goal.predicate == self.query.predicate
            and goal.arity == self.query.arity
            and query_adornment(goal) == self.adornment
        )

    def _require_compatible(self, goal: Atom) -> None:
        if not self.compatible(goal):
            raise ReproError(
                f"goal {goal} does not fit prepared shape "
                f"{self.query.predicate}/{self.query.arity} "
                f"adornment {self.adornment!r}"
            )

    def _rebind(self, goal: Atom) -> tuple[tuple[Atom, ...], Atom]:
        """The seed facts and transformed goal atom for *goal*.

        Seed arguments are the goal's bound constants in adornment
        order — the same construction every transform uses — so moving
        the constants moves the seed and nothing else.
        """
        assert self.transformed is not None
        bound = bound_args(goal, self.adornment)
        if not all(isinstance(arg, Constant) for arg in bound):
            raise TransformError(
                f"goal {goal} has a non-constant bound argument"
            )
        seeds = tuple(
            Atom(seed.predicate, bound) for seed in self.transformed.seeds
        )
        return seeds, Atom(self.transformed.goal.predicate, goal.args)

    # --- execution ------------------------------------------------------------
    def execute(
        self,
        goal: "Atom | str | None" = None,
        budget: "EvaluationBudget | Checkpoint | None" = None,
        workers: "int | None" = None,
    ) -> QueryResult:
        """Evaluate *goal* (default: the template) with zero re-preparation.

        Args:
            goal: atom or source text; defaults to the template goal.
            budget: optional per-execution budget.
            workers: worker-pool size when the shape was prepared with
                ``scheduler="parallel"`` (``None`` = one per CPU core);
                an execution-time knob, deliberately *not* part of the
                cache key — any worker count reuses the same compiled
                fixpoint and produces the same answers.

        Raises:
            ReproError: when *goal* does not match the prepared shape, or
                when a maintained shape's engine is poisoned (an
                interrupted update left its materialisation
                inconsistent).
            BudgetExceededError: when *budget* trips; the error carries
                the sound partial working database —
                :meth:`partial_answers` extracts the goal's answers from
                it.
        """
        if goal is None:
            goal = self.query
        elif isinstance(goal, str):
            goal = parse_query(goal)
        self._require_compatible(goal)
        obs = get_metrics()
        if obs.enabled:
            obs.incr("prepare.executions")
        stats = EvaluationStats()
        if self.mode != "transform":
            if self.engine is not None and self.engine.poisoned:
                # An interrupted apply_update left the maintained
                # materialisation inconsistent; serving lookups from it
                # would silently return a half-mutated model.
                raise ReproError(
                    "maintained shape's engine is poisoned (an "
                    "interrupted update left its materialisation "
                    "inconsistent); drop the shape and re-prepare"
                )
            answers = self._matching(self.base, goal)
            stats.answers = len(answers)
            return QueryResult(
                strategy=self.strategy, query=goal, answers=answers,
                stats=stats,
            )
        seeds, transformed_goal = self._rebind(goal)
        completed, _ = run_fixpoint(
            self.fixpoint,
            self.base,
            stats=stats,
            budget=budget,
            extra_facts=seeds,
            workers=workers,
        )
        answers = self._matching(completed, goal, transformed_goal)
        stats.answers = len(answers)
        calls, answer_facts = _transform_call_summary(
            self.transformed, completed
        )
        return QueryResult(
            strategy=self.strategy,
            query=goal,
            answers=answers,
            stats=stats,
            calls=calls,
            answer_facts=answer_facts,
            transformed=self.transformed,
        )

    def partial_answers(self, partial: "Database | None", goal: "Atom | str | None" = None) -> tuple[Atom, ...]:
        """The goal's answers present in a budget-trip *partial* database.

        Bottom-up evaluation is inflationary, so every answer found is
        genuinely derivable — the sound-partial contract the serving
        layer reports to clients instead of failing their request.
        """
        if goal is None:
            goal = self.query
        elif isinstance(goal, str):
            goal = parse_query(goal)
        self._require_compatible(goal)
        if partial is None:
            return ()
        if self.mode != "transform":
            return self._matching(partial, goal)
        _, transformed_goal = self._rebind(goal)
        return self._matching(partial, goal, transformed_goal)

    # --- maintenance ----------------------------------------------------------
    def apply_update(
        self,
        add: "tuple | list" = (),
        remove: "tuple | list" = (),
    ) -> tuple[frozenset, frozenset]:
        """Patch a maintained shape's materialisation in place.

        Removals are applied first (batched, one deletion pass in the
        engine's maintenance mode), then insertions (batched, one
        fixpoint continuation).  Returns ``(added, removed)`` — the facts
        that became newly derivable and the base facts actually removed,
        as raw ``(predicate, values)`` pairs.  Thread-safe per shape;
        executions observe either the old or the new materialisation.

        Raises:
            ReproError: on a non-maintained shape — frozen bases cannot
                be patched; re-prepare against the new dataset version.
        """
        if self.mode != "maintained" or self.engine is None:
            raise ReproError(
                "prepared shape is not maintained (mode="
                f"{self.mode!r}); re-prepare against the updated dataset"
            )
        with self._update_lock:
            removed = (
                self.engine.remove_many(remove) if remove else frozenset()
            )
            added = self.engine.add_many(add) if add else frozenset()
            # Recompute-mode deletions rebuild into a fresh database
            # object; re-alias so executions see the patched model.
            self.base = self.engine.database
        obs = get_metrics()
        if obs.enabled:
            obs.incr("prepare.updates")
        return added, removed

    @staticmethod
    def _matching(
        database: Database, goal: Atom, pattern: "Atom | None" = None
    ) -> tuple[Atom, ...]:
        pattern = pattern if pattern is not None else goal
        if pattern.predicate not in database:
            return ()
        matching = (
            atom
            for atom in database.atoms(pattern.predicate)
            if match_atom(pattern, atom) is not None
        )
        return _sorted_answers(goal, matching)


def prepare_query(
    program: Program,
    goal: "Atom | str",
    database: "Database | None" = None,
    strategy: str = "alexander",
    sips: "Sips | str | None" = None,
    planner: "str | None" = None,
    executor: str = DEFAULT_EXECUTOR,
    scheduler: str = DEFAULT_SCHEDULER,
    budget: "EvaluationBudget | Checkpoint | None" = None,
    storage: str = DEFAULT_STORAGE,
    workers: "int | None" = None,
    maintain: "str | None" = None,
) -> PreparedQuery:
    """Prepare *goal*'s shape on *program* + *database* for reuse.

    Args:
        program: rules (embedded ground facts become part of the base).
        goal: template query atom or source text; its constants pick the
            shape's adornment but later executions may use any constants.
        database: extensional facts the shape is prepared against; the
            caller promises not to mutate it afterwards (the serving
            layer enforces this by versioning datasets).
        strategy: any transform or bottom-up strategy name; the top-down
            names raise :class:`UnpreparableStrategyError`.
        sips: optional SIPS name or function for the transform
            strategies.
        planner / executor / scheduler / storage: the evaluation
            configuration the compiled plan is specialised to (all four
            are part of the cache key).  With ``storage="columnar"`` the
            execution base is converted into the compiled fixpoint's
            interner at prepare time, so executions take the cheap
            same-interner copy path.
        budget: optional budget bounding *preparation itself* (the
            lower-strata or full materialisation); execution budgets are
            passed to :meth:`PreparedQuery.execute` per run.
        workers: worker-pool size used by the *preparation* evaluations
            when ``scheduler="parallel"``; not part of the cache key
            (execution worker counts are passed to ``execute`` per run).
        maintain: when set (``"counting"``, ``"dred"``, or
            ``"recompute"``), the shape is prepared **maintained**: the
            model lives in an incremental engine and
            :meth:`PreparedQuery.apply_update` patches it under
            base-fact churn.  Materialised strategies only (a transform
            shape's base is adornment-specialised, not maintainable),
            negation-free programs only, and part of the cache key.
    """
    if isinstance(goal, str):
        goal = parse_query(goal)
    if maintain is not None:
        resolve_maintenance(maintain)
        if strategy not in MATERIALISED_STRATEGIES:
            raise ReproError(
                f"maintained preparation requires a materialised strategy "
                f"({sorted(MATERIALISED_STRATEGIES)}), got {strategy!r}"
            )
    if strategy in UNPREPARABLE_STRATEGIES:
        raise UnpreparableStrategyError(
            f"strategy {strategy!r} has no reusable compiled form; "
            f"execute it directly via run_strategy()"
        )
    if strategy not in TRANSFORM_STRATEGIES | MATERIALISED_STRATEGIES:
        raise ReproError(
            f"unknown strategy {strategy!r}; prepare supports "
            f"{sorted(TRANSFORM_STRATEGIES | MATERIALISED_STRATEGIES)}"
        )
    if isinstance(sips, str):
        sips_fn = named_sips(sips)
    else:
        sips_fn = sips if sips is not None else left_to_right
    resolve_executor(executor)
    resolve_scheduler(scheduler)
    resolve_storage(storage)

    key = prepared_cache_key(
        program, goal, strategy, sips, planner, executor, scheduler, storage,
        maintain,
    )
    obs = get_metrics()
    prepare_stats = EvaluationStats()
    with obs.timer("prepare"):
        working = database.copy() if database is not None else Database()
        working.add_atoms(program.facts)
        rules_only = program.without_facts()
        adornment = query_adornment(goal)

        if maintain is not None:
            # The model lives in an incremental engine; the preparation
            # *is* the engine's initial materialisation.  The engine
            # keeps the budget as its per-operation allowance, covering
            # the build now and every apply_update later.
            engine = IncrementalEngine(
                program,
                database,
                planner=planner,
                budget=budget,
                executor=executor,
                storage=storage,
                maintenance=maintain,
            )
            prepare_stats.merge(engine.stats)
            prepared = PreparedQuery(
                strategy=strategy,
                mode="maintained",
                query=goal,
                adornment=adornment,
                base=engine.database,
                key=key,
                engine=engine,
                prepare_stats=prepare_stats,
            )
        elif strategy in MATERIALISED_STRATEGIES:
            if rules_only.proper_rules:
                working, _ = stratified_fixpoint(
                    rules_only,
                    working,
                    prepare_stats,
                    engine=strategy,
                    planner=planner,
                    budget=budget,
                    executor=executor,
                    scheduler=scheduler,
                    storage=storage,
                    workers=workers,
                )
            prepared = PreparedQuery(
                strategy=strategy,
                mode="materialised",
                query=goal,
                adornment=adornment,
                base=working,
                key=key,
                prepare_stats=prepare_stats,
            )
        elif goal.predicate not in rules_only.idb_predicates:
            # Purely extensional goal: the base answers by lookup.
            prepared = PreparedQuery(
                strategy=strategy,
                mode="materialised",
                query=goal,
                adornment=adornment,
                base=working,
                key=key,
                prepare_stats=prepare_stats,
            )
        else:
            prepared = _prepare_transform(
                strategy, rules_only, goal, working, sips_fn, planner,
                executor, scheduler, storage, budget, key, prepare_stats,
                edb_extra=program.predicates, workers=workers,
            )
    if obs.enabled:
        obs.incr("prepare.builds")
        obs.incr(f"prepare.mode.{prepared.mode}")
    return prepared


def _prepare_transform(
    strategy: str,
    rules_only: Program,
    goal: Atom,
    working: Database,
    sips_fn: Sips,
    planner,
    executor: str,
    scheduler: str,
    storage: str,
    budget,
    key: tuple,
    prepare_stats: EvaluationStats,
    edb_extra: frozenset[str],
    workers: "int | None" = None,
) -> PreparedQuery:
    """The structured transform pipeline, stopped just short of running.

    Mirrors :func:`repro.core.strategy._transform_strategy` exactly —
    materialise strata strictly below the goal predicate's, rewrite its
    stratum against the rest as EDB — but compiles the rewritten stratum
    instead of evaluating it.
    """
    stratification = stratify(rules_only)
    query_stratum = None
    for index, stratum in enumerate(stratification.strata):
        if goal.predicate in stratum.idb_predicates:
            query_stratum = index
            break
    if query_stratum is None:
        raise TransformError(
            f"query predicate {goal.predicate} not defined in any stratum"
        )
    lower = Program(
        tuple(
            rule
            for stratum in stratification.strata[:query_stratum]
            for rule in stratum.rules
        )
    )
    if lower.proper_rules:
        working, _ = stratified_fixpoint(
            lower,
            working,
            prepare_stats,
            planner=planner,
            budget=budget,
            executor=executor,
            scheduler=scheduler,
            storage=storage,
            workers=workers,
        )
    target = stratification.strata[query_stratum]
    edb = frozenset(
        (edb_extra | working.predicates()) - target.idb_predicates
    )
    transformed = _TRANSFORMS[strategy](target, goal, sips_fn, edb)
    obs = get_metrics()
    if obs.enabled:
        # Like prepare.compiles: flat across cache hits *and* across
        # registry loads of serialized shapes (snapshot rehydration
        # reuses the serialized rewriting instead of re-transforming).
        obs.incr("prepare.transforms")
    fixpoint = compile_fixpoint(
        transformed.program,
        working,
        planner=planner,
        executor=executor,
        scheduler=scheduler,
        storage=storage,
    )
    if fixpoint.interner is not None:
        # Re-encode the base into the fixpoint's own interner once, here,
        # so each execute() takes run_fixpoint's same-interner copy path.
        working = as_storage(working, storage, interner=fixpoint.interner)
    return PreparedQuery(
        strategy=strategy,
        mode="transform",
        query=goal,
        adornment=query_adornment(goal),
        base=working,
        key=key,
        transformed=transformed,
        fixpoint=fixpoint,
        prepare_stats=prepare_stats,
    )
