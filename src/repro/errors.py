"""Exception hierarchy for the repro library.

Every error raised deliberately by this package derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class ParseError(ReproError):
    """Raised when Datalog source text cannot be parsed.

    Attributes:
        line: 1-based line number of the offending token, when known.
        column: 1-based column number of the offending token, when known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}" + (f", column {column}" if column is not None else "")
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class UnificationError(ReproError):
    """Raised when two terms or atoms cannot be unified and the caller
    requested an exception instead of a ``None`` result."""


class ProgramError(ReproError):
    """Raised for structurally invalid programs (e.g. a rule whose head is
    a negative literal, or an EDB predicate that also appears in a head)."""


class StratificationError(ProgramError):
    """Raised when a program that requires stratified negation is not
    stratifiable (it has a cycle through negation)."""


class SafetyError(ProgramError):
    """Raised when a rule is unsafe: a head or negative-literal variable
    does not occur in any positive body literal."""


class EvaluationError(ReproError):
    """Raised when evaluation cannot proceed (e.g. an SLD derivation
    exceeds its step or depth budget, or a non-ground negative literal is
    selected)."""


class BudgetExceededError(EvaluationError):
    """Raised when a resource budget is exhausted before evaluation
    completes — by the governed engines polling an
    :class:`repro.engine.budget.Checkpoint`, and by plain SLD's built-in
    step/depth bounds.

    The error carries everything a caller needs for graceful degradation:

    Attributes:
        limit: which limit tripped — ``"wall_clock"``, ``"iterations"``,
            ``"facts"``, ``"attempts"`` (checkpoint limits), or
            ``"steps"`` / ``"depth"`` / ``"recursion"`` (SLD's own
            bounds).  ``None`` for legacy raisers that did not say.
        partial: the partial :class:`repro.facts.database.Database`
            computed before the trip (a sound prefix of the full model),
            when the engine had one to report; ``None`` otherwise.
        stats: the :class:`repro.engine.counters.EvaluationStats`
            accumulated so far, so benchmark code can still report
            "exceeded N steps" rows — itself a result the paper's
            comparison cares about (plain top-down evaluation diverges on
            cyclic data).
    """

    def __init__(self, message: str, stats=None, limit: str | None = None, partial=None):
        super().__init__(message)
        self.stats = stats
        self.limit = limit
        self.partial = partial


class TransformError(ReproError):
    """Raised when a query transformation (adornment, magic sets, Alexander
    templates) cannot be applied to the given program/query pair."""


class UnpreparableStrategyError(ReproError):
    """Raised by :func:`repro.core.prepare.prepare_query` for strategies
    with no reusable compiled form (the tuple-at-a-time top-down engines:
    ``sld``, ``oldt``, ``qsqr``).  Callers — the query service above all —
    fall back to direct :func:`repro.core.strategy.run_strategy` execution."""
