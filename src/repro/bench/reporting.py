"""ASCII rendering of benchmark tables and series.

The benchmark scripts print the same rows/series the experiment index in
DESIGN.md describes; this module keeps the formatting in one place so the
output of every bench looks alike (and EXPERIMENTS.md can quote it
verbatim).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["render_table", "render_series", "render_kv"]


def _stringify(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned, pipe-separated table."""
    materialised = [[_stringify(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        padded = [
            cell.ljust(widths[index]) if index == 0 else cell.rjust(widths[index])
            for index, cell in enumerate(cells)
        ]
        return " | ".join(padded)

    lines = []
    if title:
        lines.append(title)
    lines.append(format_row(list(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    for row in materialised:
        lines.append(format_row(row))
    return "\n".join(lines)


def render_series(
    title: str,
    x_label: str,
    series: Mapping[str, Sequence[tuple[object, object]]],
) -> str:
    """Render several (x, y) series as one table with x as the first column.

    Missing points render as ``-``.  This is the textual stand-in for the
    paper-style scaling figures.
    """
    xs: list[object] = []
    for points in series.values():
        for x, _ in points:
            if x not in xs:
                xs.append(x)
    headers = [x_label] + list(series)
    lookup = {
        name: {x: y for x, y in points} for name, points in series.items()
    }
    rows = []
    for x in xs:
        row: list[object] = [x]
        for name in series:
            row.append(lookup[name].get(x, "-"))
        rows.append(row)
    return render_table(headers, rows, title=title)


def render_kv(title: str, pairs: Mapping[str, object]) -> str:
    """Render a key/value block."""
    width = max((len(key) for key in pairs), default=0)
    lines = [title]
    for key, value in pairs.items():
        lines.append(f"  {key.ljust(width)} : {_stringify(value)}")
    return "\n".join(lines)
