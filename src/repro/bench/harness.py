"""The experiment harness: run strategies over scenarios, collect counters.

Every benchmark in ``benchmarks/`` is a thin wrapper around
:func:`measure`, :func:`sweep`, or :func:`scaling_series`; the harness
handles divergence (plain SLD on cyclic data), answer cross-checking, and
uniform row construction so the printed tables always carry the same
columns.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..core.strategy import QueryResult, run_strategy
from ..engine.columnar import DEFAULT_STORAGE
from ..engine.kernel import DEFAULT_EXECUTOR
from ..engine.scheduler import DEFAULT_SCHEDULER
from ..errors import BudgetExceededError
from ..workloads.programs import Scenario

__all__ = [
    "Measurement",
    "measure",
    "measurement_record",
    "sweep",
    "scaling_series",
    "assert_same_answers",
]

DIVERGED = "diverged"


@dataclass(frozen=True)
class Measurement:
    """One (scenario, query, strategy) data point."""

    scenario: str
    query: str
    strategy: str
    answers: int | str
    inferences: int | str
    attempts: int | str
    facts: int | str
    calls: int | str
    diverged: bool
    result: QueryResult | None
    seconds: float = 0.0

    def row(self) -> tuple:
        return (
            self.scenario,
            self.query,
            self.strategy,
            self.answers,
            self.inferences,
            self.attempts,
            self.facts,
            self.calls,
            f"{self.seconds * 1e3:.2f}",
        )

    @staticmethod
    def headers() -> tuple[str, ...]:
        return (
            "scenario",
            "query",
            "strategy",
            "answers",
            "inferences",
            "attempts",
            "facts",
            "calls",
            "ms",
        )


def measure(
    scenario: Scenario,
    strategy: str,
    query_index: int = 0,
    planner=None,
    budget=None,
    executor: str = DEFAULT_EXECUTOR,
    scheduler: str = DEFAULT_SCHEDULER,
    storage: str = DEFAULT_STORAGE,
    workers: "int | None" = None,
) -> Measurement:
    """Run one strategy on one scenario query; divergence becomes a row.

    Wall-clock time (``seconds``, monotonic) is measured around the
    strategy call — for diverged runs it covers the time until the budget
    tripped.

    Args:
        planner: optional join-planner spec forwarded to
            :func:`repro.core.strategy.run_strategy` (the A7 ablation
            flips this between ``None`` and ``"greedy"``).
        budget: optional :class:`repro.engine.budget.EvaluationBudget`
            (or a running :class:`~repro.engine.budget.Checkpoint`, which
            lets one wall clock bound a whole sweep — the CI gate does
            this).  Exhaustion is reported like any other divergence: a
            DIVERGED row, never an exception.
        executor: rule-body executor for the bottom-up fixpoints (the A8
            ablation flips this between ``"kernel"`` and
            ``"interpreted"``).
        scheduler: fixpoint scheduling for the bottom-up fixpoints (the
            A9 ablation flips this between ``"scc"`` and ``"global"``).
        storage: relation backend for the bottom-up fixpoints (the A10
            ablation flips this between ``"columnar"`` and ``"tuples"``).
        workers: worker-pool size for ``scheduler="parallel"`` (the A11
            benchmark sweeps this; ``None`` = one per CPU core).
    """
    query = scenario.query(query_index)
    start = time.perf_counter()
    try:
        result = run_strategy(
            strategy,
            scenario.program,
            query,
            scenario.database,
            planner=planner,
            budget=budget,
            executor=executor,
            scheduler=scheduler,
            storage=storage,
            workers=workers,
        )
    except BudgetExceededError:
        return Measurement(
            scenario=scenario.name,
            query=str(query),
            strategy=strategy,
            answers=DIVERGED,
            inferences=DIVERGED,
            attempts=DIVERGED,
            facts=DIVERGED,
            calls=DIVERGED,
            diverged=True,
            result=None,
            seconds=time.perf_counter() - start,
        )
    elapsed = time.perf_counter() - start
    stats = result.stats
    return Measurement(
        scenario=scenario.name,
        query=str(query),
        strategy=strategy,
        answers=len(result.answers),
        inferences=stats.inferences,
        attempts=stats.attempts,
        facts=stats.facts_derived,
        calls=stats.calls if stats.calls else len(result.calls),
        diverged=False,
        result=result,
        seconds=elapsed,
    )


def measurement_record(measurement: Measurement) -> dict:
    """A :class:`Measurement` as a JSON-ready bench-artifact entry.

    The ``id`` is ``<scenario>/<query>/<strategy>`` — unique within one
    benchmark's sweep.
    """
    return {
        "id": f"{measurement.scenario}/{measurement.query}/{measurement.strategy}",
        "scenario": measurement.scenario,
        "query": measurement.query,
        "strategy": measurement.strategy,
        "answers": measurement.answers,
        "inferences": measurement.inferences,
        "attempts": measurement.attempts,
        "facts": measurement.facts,
        "calls": measurement.calls,
        "diverged": measurement.diverged,
        "seconds": measurement.seconds,
    }


def sweep(
    scenarios: Iterable[Scenario],
    strategies: Sequence[str],
    query_index: int = 0,
    check_agreement: bool = True,
    budget=None,
) -> list[Measurement]:
    """Cross product of scenarios × strategies.

    Args:
        check_agreement: when set, every non-divergent strategy must
            return the same answer set as the first non-divergent one
            (raises AssertionError otherwise) — benches double as
            correctness checks.
        budget: optional per-measurement budget (see :func:`measure`).
    """
    measurements: list[Measurement] = []
    for scenario in scenarios:
        per_scenario = [
            measure(scenario, strategy, query_index, budget=budget)
            for strategy in strategies
        ]
        if check_agreement:
            assert_same_answers(per_scenario)
        measurements.extend(per_scenario)
    return measurements


def assert_same_answers(measurements: Sequence[Measurement]) -> None:
    """Every completed measurement must agree on the answer set."""
    reference: frozenset | None = None
    reference_strategy = ""
    for measurement in measurements:
        if measurement.diverged or measurement.result is None:
            continue
        rows = measurement.result.answer_rows
        if reference is None:
            reference = rows
            reference_strategy = measurement.strategy
        elif rows != reference:
            raise AssertionError(
                f"{measurement.strategy} disagrees with {reference_strategy} "
                f"on {measurement.scenario} / {measurement.query}: "
                f"{sorted(rows)} != {sorted(reference)}"
            )


def scaling_series(
    make_scenario: Callable[[int], Scenario],
    sizes: Sequence[int],
    strategies: Sequence[str],
    query_index: int = 0,
    metric: str = "inferences",
) -> dict[str, list[tuple[int, object]]]:
    """Inference-count (or other metric) series per strategy over a size sweep.

    Returns ``{strategy: [(size, value), ...]}`` ready for
    :func:`repro.bench.reporting.render_series`.
    """
    series: dict[str, list[tuple[int, object]]] = {name: [] for name in strategies}
    for size in sizes:
        scenario = make_scenario(size)
        per_size = [
            measure(scenario, strategy, query_index) for strategy in strategies
        ]
        assert_same_answers(per_size)
        for measurement in per_size:
            value = getattr(measurement, metric)
            series[measurement.strategy].append((size, value))
    return series
