"""Benchmark harness: measurement, sweeps, and ASCII reporting."""

from .harness import (
    DIVERGED,
    Measurement,
    assert_same_answers,
    measure,
    scaling_series,
    sweep,
)
from .reporting import render_kv, render_series, render_table

__all__ = [
    "DIVERGED",
    "Measurement",
    "measure",
    "sweep",
    "scaling_series",
    "assert_same_answers",
    "render_table",
    "render_series",
    "render_kv",
]
