"""Compiled rule kernels: slot-based, non-recursive body execution.

:func:`repro.engine.matching.match_body` enumerates rule-body matches with
recursive generators over ``dict[Variable, value]`` bindings, copying the
binding dict for every probed row.  That copy is pure overhead: once the
body order is fixed (by :func:`~repro.engine.matching.compile_rule`, with
or without a planner), which variables are bound at each position is known
*statically*.  This module lowers a :class:`~repro.engine.matching.CompiledRule`
into a :class:`RuleKernel`:

* bindings become one fixed-size **slot array** (a plain list indexed by a
  per-rule variable numbering computed at compile time);
* each positive literal becomes a :class:`SlotScan` — a precomputed probe
  program of ``(column, value)`` constants and ``(column, slot)`` reads,
  plus the slot writes and within-row equality checks to run per row;
* each test literal (negative or built-in) becomes a :class:`SlotTest` —
  an inline argument template evaluated against the slots;
* the head becomes a template that builds the derived tuple straight from
  the slots, so no binding dict ever exists.

:func:`execute_kernel` then runs the body as a flat iterator stack — no
recursion, no per-row allocation beyond the probe dict — and yields head
tuples directly.

The kernel is an *executor*, not a new semantics: it enumerates exactly
the rows :func:`match_body` enumerates, in the same order, charging
``stats.attempts`` and polling the budget checkpoint at exactly the same
points.  The interpreted matcher is kept as the differential-testing
oracle (``tests/test_kernel_differential.py`` pins bit-identical fact
sets, counters, and budget-trip behaviour), and every engine accepts
``executor="interpreted"`` to fall back to it.  See
``docs/ARCHITECTURE.md``, "The rule-kernel compiler".
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from bisect import bisect_left
from itertools import repeat

from ..datalog.builtins import evaluate_builtin
from ..datalog.intern import ConstantInterner
from ..errors import SafetyError
from ..facts.relation import Relation
from ..obs import get_metrics
from .columnar import ColumnarPrefix, ColumnarRelation
from .counters import EvaluationStats
from .matching import CompiledLiteral, CompiledRule, RelationView, match_body

__all__ = [
    "EXECUTORS",
    "DEFAULT_EXECUTOR",
    "SlotScan",
    "SlotTest",
    "RuleKernel",
    "compile_kernel",
    "execute_kernel",
    "execute_batch",
    "compile_executors",
    "head_rows",
    "resolve_executor",
]

EXECUTORS = ("kernel", "interpreted")
DEFAULT_EXECUTOR = "kernel"

# Sentinel distinguishing "iterator exhausted" from any row value.
_DONE = object()


@dataclass(frozen=True, slots=True)
class SlotScan:
    """One positive body literal as a slot-probe program.

    Attributes:
        position: body position (for the :data:`RelationView` protocol).
        predicate: relation to probe.
        const_probe: (column, value) pairs bound to constants.
        bound_probe: (column, slot) pairs bound by earlier literals.
        writes: (column, slot) pairs this literal binds (first global
            occurrence of the variable).
        checks: (column, slot) within-row equality checks (the variable
            occurred earlier in this same literal).
    """

    position: int
    predicate: str
    const_probe: tuple[tuple[int, object], ...]
    bound_probe: tuple[tuple[int, int], ...]
    writes: tuple[tuple[int, int], ...]
    checks: tuple[tuple[int, int], ...]


@dataclass(frozen=True, slots=True)
class SlotTest:
    """One test literal (negative or built-in) as an inline slot check.

    ``values`` holds one ``(is_const, payload)`` entry per argument
    column: a constant value, or the slot index carrying the argument.
    """

    position: int
    predicate: str
    positive: bool
    builtin: bool
    values: tuple[tuple[bool, object], ...]


@dataclass(frozen=True, slots=True)
class RuleKernel:
    """A rule lowered to slot form, ready for flat execution.

    Attributes:
        compiled: the source compiled rule (diagnostics, oracle runs).
        head_predicate: relation the head tuples belong to.
        slot_count: size of the slot array (distinct body variables).
        prelude: tests placed before the first scan (ground negatives or
            constant built-ins) — checked once per execution.
        levels: one ``(scan, trailing tests)`` pair per positive literal,
            in body order.
        head: ``(is_const, payload)`` template building the head tuple.
        head_builder: the template compiled to a ``slots -> tuple``
            callable (an ``itemgetter`` for all-variable heads).
        interner: the constant table the kernel was compiled against, or
            ``None`` for the tuple backend.  When set, every relation
            constant in the probe programs, negative tests, and the head
            template is already id-encoded (built-in tests keep raw
            constants and decode slot reads at evaluation time), and the
            batch executor is available.
    """

    compiled: CompiledRule
    head_predicate: str
    slot_count: int
    prelude: tuple[SlotTest, ...]
    levels: tuple[tuple[SlotScan, tuple[SlotTest, ...]], ...]
    head: tuple[tuple[bool, object], ...]
    head_builder: Callable[[list], tuple]
    interner: ConstantInterner | None = None


def _compile_test(
    position: int,
    literal: CompiledLiteral,
    slots: dict,
    interner: ConstantInterner | None,
) -> SlotTest:
    arity = len(literal.source.args)
    values: list[tuple[bool, object] | None] = [None] * arity
    for column, value in literal.constants:
        if interner is not None and not literal.builtin:
            # Negative tests probe id-encoded relations; built-ins
            # evaluate on raw values and decode slots at check time.
            value = interner.intern(value)
        values[column] = (True, value)
    for column, var in literal.binders + literal.filters:
        slot = slots.get(var)
        if slot is None:
            raise SafetyError(
                f"test literal {literal.source} reached the kernel compiler "
                f"with unbound variable {var.name}"
            )
        values[column] = (False, slot)
    return SlotTest(
        position=position,
        predicate=literal.predicate,
        positive=literal.positive,
        builtin=literal.builtin,
        values=tuple(values),  # type: ignore[arg-type]
    )


def _compile_scan(
    position: int,
    literal: CompiledLiteral,
    slots: dict,
    interner: ConstantInterner | None,
) -> SlotScan:
    bound_probe: list[tuple[int, int]] = []
    writes: list[tuple[int, int]] = []
    for column, var in literal.binders:
        slot = slots.get(var)
        if slot is None:
            slots[var] = slot = len(slots)
            writes.append((column, slot))
        else:
            bound_probe.append((column, slot))
    checks = tuple((column, slots[var]) for column, var in literal.filters)
    const_probe = literal.constants
    if interner is not None:
        const_probe = tuple(
            (column, interner.intern(value)) for column, value in const_probe
        )
    return SlotScan(
        position=position,
        predicate=literal.predicate,
        const_probe=const_probe,
        bound_probe=tuple(bound_probe),
        writes=tuple(writes),
        checks=checks,
    )


def _head_builder(
    head: tuple[tuple[bool, object], ...]
) -> Callable[[list], tuple]:
    """Compile the head template to one callable per shape.

    All-variable heads — the overwhelmingly common case — become a bare
    ``operator.itemgetter`` over the slot array (C-speed, no generator
    frame per derived tuple); constant-only heads a preallocated tuple;
    mixed heads keep the generic comprehension.
    """
    if not head:
        empty = ()
        return lambda slots: empty
    if all(not is_const for is_const, _ in head):
        indices = tuple(payload for _, payload in head)
        if len(indices) == 1:
            index = indices[0]
            return lambda slots: (slots[index],)
        return operator.itemgetter(*indices)
    if all(is_const for is_const, _ in head):
        row = tuple(payload for _, payload in head)
        return lambda slots: row
    return lambda slots: tuple(
        payload if is_const else slots[payload] for is_const, payload in head
    )


def compile_kernel(
    compiled: CompiledRule, interner: ConstantInterner | None = None
) -> RuleKernel:
    """Lower *compiled* to slot form.

    The body order is taken as-is (the planner already ran, if any), so
    which variables are bound at each position — the information
    :func:`~repro.engine.matching.match_body` rediscovers per row with
    ``var in binding`` — is resolved here, once.

    With *interner* (the columnar backend), relation constants in probe
    programs, negative tests, and the head template are id-encoded at
    compile time, so execution never translates per row.
    """
    slots: dict = {}
    prelude: list[SlotTest] = []
    levels: list[tuple[SlotScan, list[SlotTest]]] = []
    for position, literal in enumerate(compiled.body):
        if literal.is_test:
            test = _compile_test(position, literal, slots, interner)
            if levels:
                levels[-1][1].append(test)
            else:
                prelude.append(test)
        else:
            levels.append((_compile_scan(position, literal, slots, interner), []))
    head: list[tuple[bool, object]] = []
    for kind, payload in compiled.head_pattern:
        if kind == "c":
            value = payload if interner is None else interner.intern(payload)
            head.append((True, value))
        else:
            head.append((False, slots[payload]))
    head_pattern = tuple(head)
    kernel = RuleKernel(
        compiled=compiled,
        head_predicate=compiled.head_predicate,
        slot_count=len(slots),
        prelude=tuple(prelude),
        levels=tuple((scan, tuple(tests)) for scan, tests in levels),
        head=head_pattern,
        head_builder=_head_builder(head_pattern),
        interner=interner,
    )
    obs = get_metrics()
    if obs.enabled:
        obs.incr("kernel.rules_compiled")
        obs.observe("kernel.slots", kernel.slot_count)
    return kernel


def _check_test(
    test: SlotTest,
    slots: list,
    view: RelationView,
    interner: ConstantInterner | None = None,
) -> bool:
    """Evaluate one test against the slots; True iff the branch survives."""
    if test.builtin:
        # Built-ins compare raw values; under the columnar backend the
        # slots carry ids, so slot reads are decoded here (constants were
        # kept raw at compile time).
        if interner is None:
            values = tuple(
                payload if is_const else slots[payload]
                for is_const, payload in test.values
            )
        else:
            value_of = interner.value_of
            values = tuple(
                payload if is_const else value_of(slots[payload])
                for is_const, payload in test.values
            )
        holds = evaluate_builtin(test.predicate, values)
        return holds if test.positive else not holds
    values = tuple(
        payload if is_const else slots[payload]
        for is_const, payload in test.values
    )
    relation = view(test.position, test.predicate)
    if relation is None:
        return True
    return values not in relation


def _scan_rows(scan: SlotScan, slots: list, view: RelationView):
    """The row iterator of one scan level under the current slots."""
    relation = view(scan.position, scan.predicate)
    if relation is None:
        return iter(())
    const_probe = scan.const_probe
    bound_probe = scan.bound_probe
    rtype = type(relation)
    if rtype is Relation or rtype is ColumnarRelation:
        # Concrete relations expose snapshot tuples for the two probe
        # shapes that dominate rule bodies (full scan, single column);
        # the shape is static per scan, so no probe dict is built at all.
        # Contents and order match lookup() exactly (pinned by the
        # differential tests), so attempts charging is unchanged.
        if not const_probe:
            if not bound_probe:
                return iter(relation.scan())
            if len(bound_probe) == 1:
                column, slot = bound_probe[0]
                return iter(relation.probe(column, slots[slot]))
        elif not bound_probe and len(const_probe) == 1:
            column, value = const_probe[0]
            return iter(relation.probe(column, value))
    # Probe construction mirrors the interpreted matcher exactly —
    # constants first, then bound variables in binder order — so the
    # lookup's cheapest-posting tie-breaking (and with it the enumeration
    # order and attempt count) is identical under both executors.
    probe: dict[int, object] = dict(const_probe)
    for column, slot in bound_probe:
        probe[column] = slots[slot]
    return relation.lookup(probe)


def execute_kernel(
    kernel: RuleKernel,
    view: RelationView,
    stats: EvaluationStats,
    checkpoint=None,
) -> Iterator[tuple]:
    """Enumerate the head tuples *kernel* derives under *view*.

    Charging contract (identical to :func:`match_body` +
    ``CompiledRule.head_tuple``): one ``stats.attempts`` per probed row
    and per test evaluation, one ``checkpoint.poll()`` per probed row.
    The caller charges ``stats.inferences`` per yielded head tuple, as it
    did per yielded binding.
    """
    slots: list = [None] * kernel.slot_count
    interner = kernel.interner
    for test in kernel.prelude:
        stats.attempts += 1
        if not _check_test(test, slots, view, interner):
            return
    levels = kernel.levels
    build = kernel.head_builder
    if not levels:
        yield build(slots)
        return
    poll = checkpoint.poll if checkpoint is not None else None
    if len(levels) == 1:
        # Single-literal bodies (the common delta-variant shape) run as a
        # flat loop: no iterator stack, no next() indirection per row.
        scan, tests = levels[0]
        writes = scan.writes
        checks = scan.checks
        for row in _scan_rows(scan, slots, view):
            stats.attempts += 1
            if poll is not None:
                poll()
            for column, slot in writes:
                slots[slot] = row[column]
            ok = True
            for column, slot in checks:
                if slots[slot] != row[column]:
                    ok = False
                    break
            if ok:
                for test in tests:
                    stats.attempts += 1
                    if not _check_test(test, slots, view, interner):
                        ok = False
                        break
            if ok:
                yield build(slots)
        return
    last = len(levels) - 1
    iters: list = [None] * len(levels)
    iters[0] = _scan_rows(levels[0][0], slots, view)
    depth = 0
    while depth >= 0:
        row = next(iters[depth], _DONE)
        if row is _DONE:
            iters[depth] = None
            depth -= 1
            continue
        scan, tests = levels[depth]
        stats.attempts += 1
        if poll is not None:
            poll()
        for column, slot in scan.writes:
            slots[slot] = row[column]
        ok = True
        for column, slot in scan.checks:
            if slots[slot] != row[column]:
                ok = False
                break
        if ok:
            for test in tests:
                stats.attempts += 1
                if not _check_test(test, slots, view, interner):
                    ok = False
                    break
        if not ok:
            continue
        if depth == last:
            yield build(slots)
        else:
            depth += 1
            iters[depth] = _scan_rows(levels[depth][0], slots, view)


def _batch_compress(slot_vals: list, keep: list[int]) -> None:
    """Filter every live slot column down to the positions in *keep*."""
    for index, vals in enumerate(slot_vals):
        if vals is not None:
            slot_vals[index] = [vals[i] for i in keep]


def _batch_probe(
    base: ColumnarRelation, boundary: int | None, items: list[tuple[int, int]]
) -> Sequence[int]:
    """Row indices matching every ``(column, id)`` pair of *items*.

    Mirrors :meth:`ColumnarRelation.lookup` exactly — smallest posting
    wins, first wins ties in item order, remaining columns filter — but
    stays in index space and applies the prefix *boundary* as a bisect
    slice instead of a per-row stamp check.
    """
    best_column = None
    best_posting: Sequence[int] | None = None
    for column, value in items:
        posting = base.postings(column).get(value, ())
        if best_posting is None or len(posting) < len(best_posting):
            best_column, best_posting = column, posting
            if not posting:
                return ()
    if boundary is not None:
        best_posting = best_posting[: bisect_left(best_posting, boundary)]
    remaining = [(c, v) for c, v in items if c != best_column]
    if not remaining:
        return best_posting
    filters = [(base.column(c), v) for c, v in remaining]
    result = []
    append = result.append
    for index in best_posting:
        for col, value in filters:
            if col[index] != value:
                break
        else:
            append(index)
    return result


def execute_batch(
    kernel: RuleKernel, view: RelationView, stats: EvaluationStats
) -> list | None:
    """Enumerate *kernel*'s head tuples block-at-a-time over columnar data.

    The batch counterpart of :func:`execute_kernel` for kernels compiled
    against an interner: instead of walking an iterator stack row by row,
    each scan level joins the *whole* block of partial matches against the
    relation's postings at once — per-block column reads build the slot
    columns, repeated-variable checks and trailing tests are vectorized
    comprehension filters, and the head tuples fall out of one ``zip``.

    Charging is bulk but exact: ``stats.attempts`` grows by the same
    total the per-row path accumulates (rows probed per scan level, test
    evaluations with first-failing-test semantics), so counters stay
    bit-identical.  Budget polling is *not* performed — callers only
    dispatch here when no checkpoint governs the evaluation, which keeps
    budget-trip points identical to the per-row path by construction.

    Returns the list of head tuples, or ``None`` (before charging
    anything) when some scanned relation is not columnar — the caller
    falls back to :func:`execute_kernel`.
    """
    levels = kernel.levels
    resolved: list = []
    for scan, _tests in levels:
        relation = view(scan.position, scan.predicate)
        if relation is None:
            resolved.append(None)
            continue
        rtype = type(relation)
        if rtype is ColumnarRelation:
            resolved.append((relation, None))
        elif rtype is ColumnarPrefix:
            resolved.append((relation.relation, relation.boundary()))
        else:
            return None
    interner = kernel.interner
    obs = get_metrics()
    if obs.enabled:
        obs.incr("kernel.batch_executions")
    init = [None] * kernel.slot_count
    for test in kernel.prelude:
        stats.attempts += 1
        if not _check_test(test, init, view, interner):
            return []
    if not levels:
        return [kernel.head_builder(init)]
    slot_vals: list = [None] * kernel.slot_count
    n = 0
    first = True
    for (scan, tests), source in zip(levels, resolved):
        if source is None:
            return []
        base, boundary = source
        const_probe = scan.const_probe
        bound_probe = scan.bound_probe
        parent_idx: list[int] | None = None
        if not bound_probe:
            # Probe independent of the current block: a full scan or a
            # constants-only probe (level 0, or a cross product).
            if not const_probe:
                indices = base.live_indices()
                if boundary is not None:
                    indices = indices[: bisect_left(indices, boundary)]
            else:
                indices = _batch_probe(base, boundary, list(const_probe))
            if first:
                child_idx = indices
            else:
                m = len(indices)
                child_idx = list(indices) * n
                parent_idx = []
                extend = parent_idx.extend
                for i in range(n):
                    extend([i] * m)
        elif len(bound_probe) == 1 and not const_probe:
            # The dominant join shape: one column bound by the block.
            column, slot = bound_probe[0]
            vals = slot_vals[slot]
            pget = base.postings(column).get
            parent_idx = []
            child_idx = []
            pext = parent_idx.extend
            cext = child_idx.extend
            if boundary is None:
                for i, value in enumerate(vals):
                    posting = pget(value)
                    if posting:
                        cext(posting)
                        pext([i] * len(posting))
            else:
                for i, value in enumerate(vals):
                    posting = pget(value)
                    if posting:
                        posting = posting[: bisect_left(posting, boundary)]
                        if posting:
                            cext(posting)
                            pext([i] * len(posting))
        else:
            # General probe: constants plus several bound columns.
            items = list(const_probe)
            parent_idx = []
            child_idx = []
            pext = parent_idx.extend
            cext = child_idx.extend
            for i in range(n):
                probe = items + [(c, slot_vals[s][i]) for c, s in bound_probe]
                posting = _batch_probe(base, boundary, probe)
                if posting:
                    cext(posting)
                    pext([i] * len(posting))
        total = len(child_idx)
        stats.attempts += total
        if not total:
            return []
        if parent_idx is not None and not first:
            _batch_compress(slot_vals, parent_idx)
        for column, slot in scan.writes:
            slot_vals[slot] = base.column_block(column, child_idx)
        n = total
        if scan.checks:
            keep: list[int] | None = None
            for column, slot in scan.checks:
                col_vals = base.column_block(column, child_idx)
                target = slot_vals[slot]
                if keep is None:
                    keep = [
                        i for i in range(total) if col_vals[i] == target[i]
                    ]
                else:
                    keep = [i for i in keep if col_vals[i] == target[i]]
            if len(keep) != total:
                if not keep:
                    return []
                _batch_compress(slot_vals, keep)
            n = len(keep)
        for test in tests:
            stats.attempts += n
            arg_cols: list = []
            has_slot = False
            for is_const, payload in test.values:
                if is_const:
                    arg_cols.append(None)
                else:
                    has_slot = True
                    arg_cols.append(slot_vals[payload])
            if not has_slot:
                # Ground test: one evaluation decides the whole block.
                if not _check_test(test, init, view, interner):
                    return []
                continue
            positive = test.positive
            if test.builtin:
                columns = []
                for (is_const, payload), col in zip(test.values, arg_cols):
                    if col is None:
                        columns.append(repeat(payload, n))
                    elif interner is not None:
                        value_of = interner.value_of
                        columns.append([value_of(v) for v in col])
                    else:
                        columns.append(col)
                predicate = test.predicate
                keep = [
                    i
                    for i, vals in enumerate(zip(*columns))
                    if bool(evaluate_builtin(predicate, vals)) == positive
                ]
            else:
                target = view(test.position, test.predicate)
                if target is None:
                    continue
                columns = [
                    repeat(payload, n) if col is None else col
                    for (is_const, payload), col in zip(test.values, arg_cols)
                ]
                keep = [
                    i
                    for i, vals in enumerate(zip(*columns))
                    if vals not in target
                ]
            if len(keep) != n:
                if not keep:
                    return []
                _batch_compress(slot_vals, keep)
                n = len(keep)
        first = False
    head = kernel.head
    if not head:
        return [()] * n
    parts = [
        repeat(payload, n) if is_const else slot_vals[payload]
        for is_const, payload in head
    ]
    if len(parts) == 1:
        return [(value,) for value in parts[0]]
    return list(zip(*parts))


def resolve_executor(executor: str) -> str:
    """Validate an ``executor=`` argument (every engine accepts one)."""
    if executor not in EXECUTORS:
        raise ValueError(
            f"unknown executor {executor!r}; choose from {EXECUTORS}"
        )
    return executor


def compile_executors(
    compiled_rules: Sequence[CompiledRule],
    executor: str,
    interner: ConstantInterner | None = None,
) -> list[tuple[CompiledRule, RuleKernel | None]]:
    """Pair each compiled rule with its kernel (or ``None``, interpreted).

    The pair list is what the bottom-up engines iterate: the compiled
    rule keeps serving the structural queries (delta-variant positions,
    head predicate), the kernel — when present — does the enumeration.
    Pass *interner* when the working database is columnar, so kernel
    constants are id-encoded at compile time.
    """
    resolve_executor(executor)
    if executor == "interpreted":
        if interner is not None:
            raise ValueError(
                "the interpreted executor evaluates raw values and cannot "
                "run over columnar storage; use executor='kernel'"
            )
        return [(compiled, None) for compiled in compiled_rules]
    return [
        (compiled, compile_kernel(compiled, interner))
        for compiled in compiled_rules
    ]


def head_rows(
    compiled: CompiledRule,
    kernel: RuleKernel | None,
    view: RelationView,
    stats: EvaluationStats,
    checkpoint=None,
    batch: bool = False,
) -> Iterator[tuple] | list[tuple]:
    """Head tuples of one rule under either executor.

    The single place the executor knob is dispatched: engines call this
    in their match loops and stay executor-agnostic.  Returns the
    executor's iterator directly (no wrapper generator frame), or — when
    *batch* is requested, the kernel was compiled against an interner,
    and no checkpoint governs the run — the fully materialised block
    from :func:`execute_batch`.  Callers may only pass ``batch=True``
    when they collect head rows before inserting them (the batch
    materialises every row up front, so a rule that could observe its
    own inserts mid-enumeration must stay on the per-row path).
    """
    if kernel is not None:
        if batch and checkpoint is None and kernel.interner is not None:
            rows = execute_batch(kernel, view, stats)
            if rows is not None:
                return rows
        return execute_kernel(kernel, view, stats, checkpoint)
    return _interpreted_rows(compiled, view, stats, checkpoint)


def _interpreted_rows(
    compiled: CompiledRule,
    view: RelationView,
    stats: EvaluationStats,
    checkpoint=None,
) -> Iterator[tuple]:
    head_tuple = compiled.head_tuple
    for binding in match_body(compiled, view, stats, checkpoint=checkpoint):
        yield head_tuple(binding)
