"""The columnar relation backend: dictionary-encoded, array-of-int storage.

The tuple backend (:class:`repro.facts.relation.Relation`) stores rows as
Python tuples of raw constant values.  This module provides the opt-in
``storage="columnar"`` alternative behind the same contract:

* every constant is interned once to a dense int id
  (:class:`repro.datalog.intern.ConstantInterner`, one shared per
  :class:`ColumnarDatabase` and all its copies);
* a :class:`ColumnarRelation` stores one ``array('q')`` **column** of ids
  per argument position, plus postings (column → id → ascending row
  indices) for probes, insertion round-stamps for the semi-naive
  zero-copy "old" views, and the live statistics the join planner costs
  with;
* the rule kernels gain a **batch mode** (:func:`repro.engine.kernel.
  execute_batch`) that joins whole blocks against the postings at once
  instead of looping per row.

**Encoded vs raw space.**  The engines shuttle rows as opaque tuples, so
under the columnar backend every row-level method of
:class:`ColumnarRelation` (``add``, ``lookup``, ``probe``, membership,
iteration, ``rows()``) speaks tuples of *ids*.  Translation to and from
raw constant values happens only at the atom boundary of
:class:`ColumnarDatabase` (``add_atom``, ``atoms``, ``has_fact``) — plus
one deliberate exception: :meth:`ColumnarRelation.postings_size` accepts a
**raw** value, because its only caller is the join planner, which probes
with constants straight out of the rule text.  The planner therefore sees
identical statistics (sizes, distinct counts, posting sizes) under both
backends and produces identical plans.

**Bit-identity.**  The tuple backend enumerates in insertion order (its
tuple set is an insertion-ordered dict) and so does this backend; probes
pick the smallest posting with the same tie-breaking; the interner's
equality is plain dict equality, exactly the tuple set's.  The combination
makes ``storage="columnar"`` bit-identical to ``storage="tuples"`` — fact
sets, inference counters, enumeration order, budget-trip points — pinned
by ``tests/test_storage_differential.py``.  See ``docs/STORAGE.md``.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Iterable, Iterator, Mapping

from ..datalog.atoms import Atom
from ..datalog.intern import ConstantInterner
from ..facts.database import Database
from ..facts.relation import Relation
from ..obs import get_metrics

__all__ = [
    "STORAGES",
    "DEFAULT_STORAGE",
    "resolve_storage",
    "ColumnarRelation",
    "ColumnarPrefix",
    "ColumnarDatabase",
    "as_storage",
]

STORAGES = ("tuples", "columnar")
DEFAULT_STORAGE = "tuples"


def resolve_storage(storage: str) -> str:
    """Validate a ``storage=`` argument (every engine accepts one)."""
    if storage not in STORAGES:
        raise ValueError(
            f"unknown storage {storage!r}; choose from {STORAGES}"
        )
    return storage


class ColumnarRelation:
    """A relation of id-encoded rows stored column-wise.

    Mirrors the :class:`~repro.facts.relation.Relation` contract method
    for method, in encoded space.  Row indices are append-only: a row
    keeps its index until discarded, re-insertion assigns a fresh index
    at the end — so ascending index order *is* insertion order, postings
    stay sorted by construction, and round stamps are monotone in the
    index, which is what makes the prefix views pure ``bisect`` slices.
    """

    __slots__ = (
        "name",
        "arity",
        "interner",
        "_columns",
        "_rows",
        "_rowlist",
        "_stamps",
        "_postings",
        "_distinct",
        "_version",
        "_round",
        "_scan_cache",
        "_scan_version",
        "_live_cache",
        "_live_version",
        "_dead",
    )

    def __init__(
        self,
        name: str,
        arity: int,
        interner: ConstantInterner,
        tuples: Iterable[tuple] = (),
    ):
        self.name = name
        self.arity = arity
        self.interner = interner
        # One array('q') of ids per argument position (dead rows keep
        # their cells; postings and the row map never point at them).
        self._columns: list[array] = [array("q") for _ in range(arity)]
        # Encoded row -> index; insertion-ordered, live rows only.
        self._rows: dict[tuple, int] = {}
        # Index -> encoded row (None when discarded).
        self._rowlist: list[tuple | None] = []
        # Index -> insertion round (monotone, dead cells retained).
        self._stamps = array("q")
        # column -> id -> ascending live row indices (lazy, incremental).
        self._postings: dict[int, dict[int, list[int]]] = {}
        # column -> set of distinct ids (lazy, incremental on add).
        self._distinct: dict[int, set[int]] = {}
        self._version = 0
        self._round = 0
        self._scan_cache: tuple | None = None
        self._scan_version = -1
        self._live_cache: list[int] | None = None
        self._live_version = -1
        self._dead = 0
        for row in tuples:
            self.add(row)

    # --- mutation ------------------------------------------------------------
    def add(self, row: tuple) -> bool:
        """Insert an encoded *row*; returns True iff it was new."""
        rows = self._rows
        if row in rows:
            return False
        if len(row) != self.arity:
            raise ValueError(
                f"relation {self.name}/{self.arity} given a tuple of "
                f"length {len(row)}: {row!r}"
            )
        rowlist = self._rowlist
        index = len(rowlist)
        rows[row] = index
        rowlist.append(row)
        self._stamps.append(self._round)
        for column_array, value in zip(self._columns, row):
            column_array.append(value)
        if self._postings:
            for column, postings in self._postings.items():
                postings.setdefault(row[column], []).append(index)
        if self._distinct:
            for column, values in self._distinct.items():
                values.add(row[column])
        self._version += 1
        return True

    def add_all(self, rows: Iterable[tuple]) -> int:
        """Insert many encoded rows; returns the number that were new."""
        added = 0
        for row in rows:
            if self.add(row):
                added += 1
        return added

    def discard(self, row: tuple) -> bool:
        """Remove an encoded *row* if present; True iff it was present.

        Postings and distinct sets follow the tuple backend's discipline:
        materialised postings are maintained in place (a distinct id
        disappears when its posting empties), distinct sets over columns
        with no live posting index are dropped and rebuilt lazily.  The
        row's column cells and stamp stay behind as dead weight — cheap,
        and it keeps indices stable for every live row.
        """
        index = self._rows.pop(row, None)
        if index is None:
            return False
        self._rowlist[index] = None
        self._dead += 1
        for column, postings in self._postings.items():
            value = row[column]
            posting = postings.get(value)
            if posting is None:
                continue
            try:
                posting.remove(index)
            except ValueError:  # pragma: no cover - postings track adds exactly
                pass
            if not posting:
                del postings[value]
                distinct = self._distinct.get(column)
                if distinct is not None:
                    distinct.discard(value)
        for column in list(self._distinct):
            if column not in self._postings:
                del self._distinct[column]
        self._version += 1
        return True

    def clear(self) -> None:
        if self._rows:
            self._version += 1
        self._rows.clear()
        self._rowlist.clear()
        self._stamps = array("q")
        self._columns = [array("q") for _ in range(self.arity)]
        self._postings.clear()
        self._distinct.clear()
        self._round = 0
        self._scan_cache = None
        self._scan_version = -1
        self._live_cache = None
        self._live_version = -1
        self._dead = 0

    # --- round stamping -------------------------------------------------------
    @property
    def round(self) -> int:
        """The round newly added rows are stamped with (0 = initial load)."""
        return self._round

    def mark_round(self, round: int) -> None:
        """Stamp subsequent :meth:`add` calls with *round* (monotone).

        Raises:
            ValueError: if *round* regresses.  The columnar backend
                *relies* on monotone stamps — :meth:`rows_before` resolves
                a cutoff with one ``bisect`` over the stamp array, which
                is only a prefix if stamps never decrease.
        """
        if round < self._round:
            raise ValueError(
                f"mark_round({round}) would regress relation "
                f"{self.name!r} from round {self._round}; rounds must "
                f"not decrease within one evaluation"
            )
        self._round = round

    def stamp_of(self, row: tuple) -> int:
        """The insertion round of *row* (0 when unstamped or absent)."""
        index = self._rows.get(row)
        return self._stamps[index] if index is not None else 0

    def rows_before(self, cutoff: int) -> "ColumnarPrefix":
        """A zero-copy view of the rows stamped strictly before *cutoff*.

        Stamps are monotone in the row index, so the view is a prefix:
        every probe reduces to one ``bisect`` and a slice.
        """
        return ColumnarPrefix(self, cutoff)

    def stamp_boundary(self, cutoff: int) -> int:
        """The first row index whose stamp is >= *cutoff*."""
        return bisect_left(self._stamps, cutoff)

    # --- queries --------------------------------------------------------------
    def __contains__(self, row: tuple) -> bool:
        return row in self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    def rows(self) -> frozenset[tuple]:
        """An immutable snapshot of the current encoded rows."""
        return frozenset(self._rows)

    def _posting_index(self, column: int) -> Mapping[int, list[int]]:
        postings = self._postings.get(column)
        if postings is None:
            postings = {}
            for row, index in self._rows.items():
                postings.setdefault(row[column], []).append(index)
            # _rows iterates in insertion order = ascending index order,
            # so every posting list is born sorted.
            self._postings[column] = postings
        return postings

    def _scan_snapshot(self) -> tuple:
        if self._scan_version != self._version:
            self._scan_cache = tuple(self._rows)
            self._scan_version = self._version
        return self._scan_cache  # type: ignore[return-value]

    def scan(self) -> tuple:
        """All rows as a snapshot tuple (cached per :attr:`version`)."""
        return self._scan_snapshot()

    def probe(self, column: int, value: int) -> tuple:
        """Rows holding id *value* in *column*, as a snapshot tuple."""
        posting = self._posting_index(column).get(value)
        if not posting:
            return ()
        rowlist = self._rowlist
        return tuple(rowlist[index] for index in posting)

    def lookup(self, bound: Mapping[int, int]) -> Iterator[tuple]:
        """Yield encoded rows matching the bound columns.

        Identical strategy and tie-breaking to the tuple backend: probe
        the single bound column with the smallest posting, filter the
        rest, yield from a snapshot taken at probe time.
        """
        if not bound:
            yield from self._scan_snapshot()
            return
        best_column = None
        best_posting: list[int] | None = None
        for column, value in bound.items():
            posting = self._posting_index(column).get(value, [])
            if best_posting is None or len(posting) < len(best_posting):
                best_column, best_posting = column, posting
                if not posting:
                    return
        rowlist = self._rowlist
        snapshot = [rowlist[index] for index in best_posting]
        remaining = [(c, v) for c, v in bound.items() if c != best_column]
        if not remaining:
            yield from snapshot
            return
        for row in snapshot:
            if all(row[column] == value for column, value in remaining):
                yield row

    def count(self, bound: Mapping[int, int] | None = None) -> int:
        """Number of rows matching the encoded *bound* (all when omitted)."""
        if not bound:
            return len(self._rows)
        if len(bound) == 1:
            ((column, value),) = bound.items()
            return len(self._posting_index(column).get(value, ()))
        return sum(1 for _ in self.lookup(bound))

    # --- batch protocol -------------------------------------------------------
    def column(self, column: int) -> array:
        """The raw id array of *column* (dead cells included)."""
        return self._columns[column]

    def live_indices(self) -> list[int]:
        """All live row indices, ascending (cached per :attr:`version`)."""
        if self._live_version != self._version:
            self._live_cache = list(self._rows.values())
            self._live_version = self._version
        return self._live_cache  # type: ignore[return-value]

    def postings(self, column: int) -> Mapping[int, list[int]]:
        """The posting index of *column* (id → ascending live indices)."""
        return self._posting_index(column)

    def column_block(self, column: int, indices: list[int]) -> list:
        """The ids of *column* at *indices*, as one list (a block read).

        When *indices* is the relation's own live-index cache (a full
        scan of a never-deleted-from relation, the dominant delta shape)
        the block is one C-level ``tolist`` — no per-row indexing at all.
        """
        col = self._columns[column]
        if indices is self._live_cache and self._dead == 0:
            return col.tolist()
        return [col[i] for i in indices]

    # --- statistics -----------------------------------------------------------
    @property
    def version(self) -> int:
        """A counter bumped on every effective mutation."""
        return self._version

    def distinct_count(self, column: int) -> int:
        """Number of distinct ids in *column* (== distinct raw values)."""
        if not 0 <= column < self.arity:
            raise IndexError(
                f"relation {self.name}/{self.arity} has no column {column}"
            )
        values = self._distinct.get(column)
        if values is None:
            values = {row[column] for row in self._rows}
            self._distinct[column] = values
        return len(values)

    def postings_size(self, column: int, value: object) -> int:
        """Exact number of rows holding raw *value* in *column*.

        This is the one row-level method in **raw** space: its caller is
        the join planner, which probes with constants from the rule text.
        A value the interner has never seen has no postings.
        """
        ident = self.interner.id_of(value)
        if ident is None:
            return 0
        return len(self._posting_index(column).get(ident, ()))

    def statistics(self) -> dict:
        """A JSON-ready snapshot, same shape as the tuple backend's."""
        return {
            "name": self.name,
            "arity": self.arity,
            "size": len(self._rows),
            "version": self._version,
            "distinct": {
                str(column): self.distinct_count(column)
                for column in range(self.arity)
            },
        }

    def copy(self) -> "ColumnarRelation":
        """A fresh relation with the same rows (same interner, compacted).

        Mirrors the tuple backend: the version is carried over (staleness
        detection), stamps are not (a copy is the next evaluation's
        starting state, every row reads as round 0).
        """
        clone = ColumnarRelation(self.name, self.arity, self.interner)
        rowlist = clone._rowlist
        stamps = clone._stamps
        columns = clone._columns
        rows = clone._rows
        for row in self._rows:
            rows[row] = len(rowlist)
            rowlist.append(row)
            stamps.append(0)
            for column in range(self.arity):
                columns[column].append(row[column])
        clone._version = self._version
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ColumnarRelation):
            return NotImplemented
        return (
            self.name == other.name
            and self.arity == other.arity
            and self._rows.keys() == other._rows.keys()
        )

    def __repr__(self) -> str:
        return (
            f"ColumnarRelation({self.name}/{self.arity}, "
            f"{len(self._rows)} rows)"
        )


class ColumnarPrefix:
    """A read-only view of a :class:`ColumnarRelation` below a round cutoff.

    The columnar counterpart of :class:`~repro.facts.relation.StampedView`
    — same filtering semantics probe for probe — plus the batch protocol,
    where the monotone stamps turn the filter into a ``bisect`` slice.
    """

    __slots__ = ("_relation", "_cutoff")

    def __init__(self, relation: ColumnarRelation, cutoff: int):
        self._relation = relation
        self._cutoff = cutoff

    @property
    def name(self) -> str:
        return self._relation.name

    @property
    def arity(self) -> int:
        return self._relation.arity

    @property
    def cutoff(self) -> int:
        return self._cutoff

    @property
    def relation(self) -> ColumnarRelation:
        return self._relation

    def lookup(self, bound: Mapping[int, int]) -> Iterator[tuple]:
        relation = self._relation
        stamps = relation._stamps
        rows = relation._rows
        cutoff = self._cutoff
        for row in relation.lookup(bound):
            index = rows.get(row)
            stamp = stamps[index] if index is not None else 0
            if stamp < cutoff:
                yield row

    def __contains__(self, row: tuple) -> bool:
        return (
            row in self._relation
            and self._relation.stamp_of(row) < self._cutoff
        )

    def __iter__(self) -> Iterator[tuple]:
        return self.lookup({})

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def __bool__(self) -> bool:
        return any(True for _ in self)

    def rows(self) -> frozenset[tuple]:
        return frozenset(self)

    # --- batch protocol -------------------------------------------------------
    def boundary(self) -> int:
        """The first row index outside the view (stamps are monotone)."""
        return self._relation.stamp_boundary(self._cutoff)

    def __repr__(self) -> str:
        return (
            f"ColumnarPrefix({self._relation.name}/{self._relation.arity}, "
            f"stamp<{self._cutoff})"
        )


class ColumnarDatabase(Database):
    """A database whose relations are columnar and share one interner.

    Relation-level methods stay in encoded space (the engines' view);
    the atom-level methods inherited from :class:`Database` translate at
    the boundary via :meth:`encode_row`/:meth:`decode_row`.  Copies share
    the interner, so row encodings remain comparable across the working
    copies every engine makes.
    """

    __slots__ = ("interner",)

    def __init__(
        self,
        relations: Mapping[str, ColumnarRelation] | None = None,
        interner: ConstantInterner | None = None,
    ):
        super().__init__(relations)
        self.interner = interner if interner is not None else ConstantInterner()

    # --- the raw/encoded boundary ---------------------------------------------
    def encode_row(self, row: tuple) -> tuple:
        return self.interner.intern_row(row)

    def decode_row(self, row: tuple) -> tuple:
        return self.interner.extern_row(row)

    def has_fact(self, atom: Atom) -> bool:
        relation = self._relations.get(atom.predicate)
        if relation is None:
            return False
        # Encode without growing the table: an atom over constants the
        # database never stored cannot be a fact of it.
        id_of = self.interner.id_of
        encoded = []
        for value in atom.ground_key():
            ident = id_of(value)
            if ident is None:
                return False
            encoded.append(ident)
        return tuple(encoded) in relation

    # --- relation management ----------------------------------------------------
    def relation(self, predicate: str, arity: int | None = None) -> ColumnarRelation:
        existing = self._relations.get(predicate)
        if existing is not None:
            if arity is not None and existing.arity != arity:
                raise ValueError(
                    f"predicate {predicate} has arity {existing.arity}, "
                    f"requested {arity}"
                )
            return existing
        if arity is None:
            raise KeyError(f"unknown predicate {predicate} (no arity given)")
        created = ColumnarRelation(predicate, arity, self.interner)
        self._relations[predicate] = created
        return created

    def spawn(self, name: str, arity: int) -> ColumnarRelation:
        """A free-standing relation of this database's storage backend."""
        return ColumnarRelation(name, arity, self.interner)

    # --- structural -------------------------------------------------------------
    def copy(self) -> "ColumnarDatabase":
        return ColumnarDatabase(
            {name: relation.copy() for name, relation in self._relations.items()},
            interner=self.interner,
        )

    def restrict(self, predicates: Iterable[str]) -> "ColumnarDatabase":
        keep = set(predicates)
        return ColumnarDatabase(
            {
                name: relation.copy()
                for name, relation in self._relations.items()
                if name in keep
            },
            interner=self.interner,
        )

    def freeze(self, extra: "dict | None" = None):
        """An immutable shared-memory snapshot of this database.

        Serializes the relations (column blocks via the buffer protocol)
        and the interner table into one
        :class:`multiprocessing.shared_memory` block that worker
        processes attach without copying the payload — see
        :class:`repro.core.snapshot.SharedSnapshot`.  The caller owns
        the block (``unlink()`` it when retired); this database remains
        usable and is not itself frozen.
        """
        from ..core.snapshot import freeze_database

        return freeze_database(self, extra=extra)

    def merge(self, other: Database) -> int:
        if (
            isinstance(other, ColumnarDatabase)
            and other.interner is self.interner
        ):
            return super().merge(other)
        # Different interner (or the tuple backend): translate per row.
        added = 0
        for relation in other.relations():
            target = self.relation(relation.name, relation.arity)
            decode = other.decode_row
            encode = self.encode_row
            for row in relation:
                if target.add(encode(decode(row))):
                    added += 1
        return added

    def __eq__(self, other: object) -> bool:
        if (
            isinstance(other, ColumnarDatabase)
            and other.interner is self.interner
        ):
            return super().__eq__(other)
        if not isinstance(other, Database):
            return NotImplemented
        mine = {
            name: frozenset(self.decode_row(row) for row in rel)
            for name, rel in self._relations.items()
            if rel
        }
        theirs = {
            name: frozenset(other.decode_row(row) for row in rel)
            for name, rel in other._relations.items()
            if rel
        }
        return mine == theirs

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}/{relation.arity}:{len(relation)}"
            for name, relation in sorted(self._relations.items())
        )
        return f"ColumnarDatabase({inner})"


def as_storage(
    database: Database | None,
    storage: str,
    interner: ConstantInterner | None = None,
) -> Database:
    """A fresh working copy of *database* under the requested backend.

    This is the single conversion point the engines call where they used
    to call ``database.copy()``: same-backend input degenerates to a
    plain copy, cross-backend input is translated row by row in insertion
    order (so enumeration order survives the trip).  ``None`` yields an
    empty database of the requested backend.  Pass *interner* to encode
    against an existing table — prepared fixpoints bake interned
    constants into their kernels, so re-encoding the base database for a
    later execution must reuse the compile-time interner.
    """
    resolve_storage(storage)
    if database is None:
        if storage == "tuples":
            return Database()
        return ColumnarDatabase(interner=interner)
    if storage == "tuples":
        if not isinstance(database, ColumnarDatabase):
            return database.copy()
        decoded = Database()
        for relation in database.relations():
            target = decoded.relation(relation.name, relation.arity)
            decode = database.decode_row
            for row in relation:
                target.add(decode(row))
            target._version = relation.version
        return decoded
    if isinstance(database, ColumnarDatabase):
        if interner is None or interner is database.interner:
            return database.copy()
        source_interner = database.interner
    else:
        source_interner = None
    obs = get_metrics()
    encoded = ColumnarDatabase(interner=interner)
    intern_row = encoded.interner.intern_row
    converted = 0
    for relation in database.relations():
        target = encoded.relation(relation.name, relation.arity)
        if source_interner is not None:
            decode = source_interner.extern_row
            for row in relation:
                target.add(intern_row(decode(row)))
                converted += 1
        else:
            for row in relation:
                target.add(intern_row(row))
                converted += 1
        target._version = relation.version
    if obs.enabled:
        obs.incr("storage.convert")
        obs.incr("storage.converted_rows", converted)
    return encoded


def relation_types() -> tuple[type, ...]:
    """The concrete relation classes (fast-path type checks in kernels)."""
    return (Relation, ColumnarRelation)
