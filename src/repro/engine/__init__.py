"""Bottom-up evaluation engines: naive, semi-naive, stratified, traced."""

from .budget import Checkpoint, EvaluationBudget, ensure_checkpoint
from .counters import EvaluationStats
from .incremental import IncrementalEngine
from .naive import naive_fixpoint
from .planner import JoinPlan, JoinPlanner, resolve_planner
from .provenance import (
    Derivation,
    ProofNode,
    TracedEvaluation,
    format_proof,
    traced_fixpoint,
)
from .seminaive import seminaive_fixpoint
from .wellfounded import WellFoundedModel, alternating_fixpoint
from .stratified import stratified_fixpoint

__all__ = [
    "EvaluationBudget",
    "Checkpoint",
    "ensure_checkpoint",
    "EvaluationStats",
    "naive_fixpoint",
    "seminaive_fixpoint",
    "stratified_fixpoint",
    "traced_fixpoint",
    "TracedEvaluation",
    "Derivation",
    "ProofNode",
    "format_proof",
    "alternating_fixpoint",
    "WellFoundedModel",
    "IncrementalEngine",
    "JoinPlan",
    "JoinPlanner",
    "resolve_planner",
]
