"""Resource-governed evaluation: budgets and cooperative checkpoints.

Every engine in the library runs a fixpoint (or a resolution search) that
is unbounded by construction — a non-linear rule set or a hostile query
can pin a worker indefinitely.  This module makes termination a
first-class, *cooperative* concern:

* :class:`EvaluationBudget` declares the limits a caller is willing to
  spend: wall-clock seconds, fixpoint iterations (scheduler steps for the
  top-down engines), derived facts, and match attempts.  All limits are
  optional; an all-``None`` budget is equivalent to no budget.
* :class:`Checkpoint` is the live monitor engines poll.  Engines call
  :meth:`Checkpoint.check_round` at round boundaries (every limit is
  checked exactly) and :meth:`Checkpoint.poll` inside long match loops
  (a strided check of the wall clock and the attempt count, so a single
  never-ending join cannot outrun round-boundary governance).

Exhaustion raises :class:`repro.errors.BudgetExceededError` carrying
*which* limit tripped, the **partial database** computed so far (a sound
prefix of the full model — bottom-up evaluation is inflationary, so every
fact present is genuinely derivable), and the :class:`EvaluationStats`
accumulated to that point.  Callers get graceful degradation instead of a
lost worker; the bench harness turns trips into ``diverged`` rows.

Nested evaluations (stratified → per-stratum fixpoint, transformation
strategies → semi-naive) share one checkpoint so the budget governs the
*whole* evaluation: engine entry points accept either an
:class:`EvaluationBudget` (a fresh checkpoint is started) or an
already-running :class:`Checkpoint` (the clock and counters keep
accumulating); :func:`ensure_checkpoint` implements that contract.

With no budget supplied every hook is a ``checkpoint is None`` test, and
derived fact sets are bit-identical to ungoverned evaluation (pinned by
``tests/test_budget.py``).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..errors import BudgetExceededError
from ..obs import get_metrics

if TYPE_CHECKING:  # pragma: no cover
    from ..facts.database import Database
    from .counters import EvaluationStats

__all__ = ["EvaluationBudget", "Checkpoint", "ensure_checkpoint"]

# How many poll() calls pass between strided wall-clock/attempt checks.
# Must be a power of two (poll uses a bitmask, not a modulo).
POLL_STRIDE = 1024


@dataclass(frozen=True)
class EvaluationBudget:
    """Declarative resource limits for one evaluation.

    Attributes:
        wall_clock_seconds: abort after this much elapsed (monotonic)
            time.  Checked at round boundaries and every
            :data:`POLL_STRIDE` match attempts, so precision is
            cooperative, not preemptive.
        max_iterations: fixpoint rounds (bottom-up) or scheduler steps /
            outer rounds (top-down) allowed.
        max_facts: distinct derived facts (``stats.facts_derived``)
            allowed.
        max_attempts: candidate match probes (``stats.attempts``)
            allowed — the finest-grained work measure the engines share.

    ``None`` means unlimited.  A budget with every field ``None`` is
    valid and never trips.
    """

    wall_clock_seconds: float | None = None
    max_iterations: int | None = None
    max_facts: int | None = None
    max_attempts: int | None = None

    def __post_init__(self) -> None:
        for name in (
            "wall_clock_seconds",
            "max_iterations",
            "max_facts",
            "max_attempts",
        ):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"budget limit {name} must be positive, got {value!r}")

    @property
    def unlimited(self) -> bool:
        """True iff no limit is set (the budget can never trip)."""
        return (
            self.wall_clock_seconds is None
            and self.max_iterations is None
            and self.max_facts is None
            and self.max_attempts is None
        )

    def start(self, stats: "EvaluationStats") -> "Checkpoint":
        """A running :class:`Checkpoint` monitoring *stats* (clock starts now)."""
        return Checkpoint(self, stats)


class _TripGate:
    """The once-only trip latch a checkpoint shares with its worker views.

    Parallel evaluation polls one logical budget from many threads.  The
    gate makes the trip a single event: the first worker to exhaust a
    limit wins the lock, builds the :class:`BudgetExceededError` (and
    counts ``budget.exceeded`` exactly once); every later tripper — and
    every subsequent :meth:`Checkpoint.poll` on any sibling view — raises
    the *stored* error and unwinds cooperatively, so the partial database
    keeps its prefix property.
    """

    __slots__ = ("lock", "error")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.error: BudgetExceededError | None = None


class Checkpoint:
    """The live monitor one governed evaluation polls.

    One checkpoint spans the whole evaluation, across nested engines: the
    wall clock starts at construction and the limits are checked against
    the single :class:`EvaluationStats` record the evaluation accumulates
    into.  Engines :meth:`bind` the working database (or a callable
    producing one) so a trip can carry the partial result out.

    Parallel evaluation adds one wrinkle: the default ``Metrics`` stack
    and the poll stride are single-threaded by design, so concurrent
    workers must not share one checkpoint instance.  Each worker instead
    polls a :meth:`worker_view` — its own poll stride and its own
    worker-local stats, sharing the parent's budget, clock, partial
    binding, and a single :class:`_TripGate` so the whole evaluation
    trips at most once.  A view checks limits against
    ``root stats + worker-local stats``; sibling workers' in-flight
    counts are invisible until merged, so parallel trip *points* are
    approximate (never early — completed runs are unaffected), while the
    trip itself stays exact and single.
    """

    __slots__ = (
        "budget", "stats", "_deadline", "_polls", "_partial", "_gate", "_root",
    )

    def __init__(self, budget: EvaluationBudget, stats: "EvaluationStats"):
        self.budget = budget
        self.stats = stats
        self._deadline = (
            time.monotonic() + budget.wall_clock_seconds
            if budget.wall_clock_seconds is not None
            else None
        )
        self._polls = 0
        self._partial: "Database | Callable[[], Database] | None" = None
        self._gate = _TripGate()
        self._root: "Checkpoint | None" = None

    def bind(self, partial: "Database | Callable[[], Database]") -> "Checkpoint":
        """Attach the evaluation's working database (or a thunk building
        one) so a later trip can report the partial result; returns self.

        Engines rebind as evaluation proceeds (e.g. per stratum); the most
        recent binding wins, which is also the most complete state.
        """
        self._partial = partial
        return self

    def worker_view(self, stats: "EvaluationStats") -> "Checkpoint":
        """A sibling checkpoint for one parallel worker.

        The view shares this checkpoint's budget, deadline, partial
        binding, and trip gate, but accumulates its polls against the
        worker-local *stats* record (merged into the root's stats by the
        coordinator).  Views of views chain back to the one root.
        """
        root = self._root if self._root is not None else self
        view = Checkpoint.__new__(Checkpoint)
        view.budget = self.budget
        view.stats = stats
        view._deadline = self._deadline
        view._polls = 0
        view._partial = None
        view._gate = self._gate
        view._root = root
        return view

    @property
    def tripped(self) -> "BudgetExceededError | None":
        """The stored trip error, if any worker already tripped the gate."""
        return self._gate.error

    def _count(self, name: str) -> int:
        """A limit counter, including the root's already-merged share."""
        value = getattr(self.stats, name)
        root = self._root
        return value if root is None else value + getattr(root.stats, name)

    # --- checks ---------------------------------------------------------------
    def check_round(self) -> None:
        """Full check at a round boundary: every limit, exactly.

        Raises:
            BudgetExceededError: when any limit is exhausted.
        """
        error = self._gate.error
        if error is not None:
            raise error
        budget = self.budget
        if budget.max_iterations is not None:
            iterations = self._count("iterations")
            if iterations >= budget.max_iterations:
                self._trip(
                    "iterations",
                    f"evaluation reached {iterations} fixpoint "
                    f"iterations (budget: {budget.max_iterations})",
                )
        if budget.max_facts is not None:
            facts = self._count("facts_derived")
            if facts >= budget.max_facts:
                self._trip(
                    "facts",
                    f"evaluation derived {facts} facts "
                    f"(budget: {budget.max_facts})",
                )
        self._check_work()

    def poll(self) -> None:
        """Cheap strided check for long match loops.

        Call once per match attempt; every :data:`POLL_STRIDE` calls the
        wall clock and the attempt count are checked (iterations and facts
        only move at round boundaries, where :meth:`check_round` covers
        them).  A sibling worker's trip is noticed on *every* call — the
        gate test is one attribute load — so parallel workers unwind
        within one attempt of the first trip.
        """
        error = self._gate.error
        if error is not None:
            raise error
        self._polls += 1
        if self._polls & (POLL_STRIDE - 1):
            return
        self._check_work()

    def _check_work(self) -> None:
        budget = self.budget
        if budget.max_attempts is not None:
            attempts = self._count("attempts")
            if attempts >= budget.max_attempts:
                self._trip(
                    "attempts",
                    f"evaluation made {attempts} match attempts "
                    f"(budget: {budget.max_attempts})",
                )
        if self._deadline is not None and time.monotonic() >= self._deadline:
            self._trip(
                "wall_clock",
                f"evaluation exceeded its wall-clock budget of "
                f"{budget.wall_clock_seconds}s",
            )

    # --- tripping -------------------------------------------------------------
    def _partial_database(self) -> "Database | None":
        owner = self._root if self._root is not None else self
        partial = owner._partial
        if partial is None:
            return None
        return partial() if callable(partial) else partial

    def _trip(self, limit: str, message: str) -> None:
        gate = self._gate
        with gate.lock:
            if gate.error is None:
                # First (usually only) tripper: count the trip exactly
                # once and build the error every sibling will raise.  The
                # error carries the *root* stats record by reference, so
                # by the time a parallel coordinator re-raises it the
                # merged totals are visible to the caller.
                obs = get_metrics()
                if obs.enabled:
                    obs.incr("budget.exceeded")
                    obs.incr(f"budget.exceeded.{limit}")
                    if self.budget.wall_clock_seconds is not None:
                        obs.observe(
                            "budget.remaining_s",
                            max(self._deadline - time.monotonic(), 0.0)
                            if self._deadline is not None
                            else 0.0,
                        )
                owner = self._root if self._root is not None else self
                gate.error = BudgetExceededError(
                    message,
                    stats=owner.stats,
                    limit=limit,
                    partial=self._partial_database(),
                )
        raise gate.error


def ensure_checkpoint(
    budget: "EvaluationBudget | Checkpoint | None",
    stats: "EvaluationStats",
) -> Checkpoint | None:
    """Resolve a caller-supplied budget into a running checkpoint.

    * ``None`` (or an all-``None`` budget) → ``None``: the evaluation runs
      ungoverned and every hook reduces to a ``checkpoint is None`` test.
    * an :class:`EvaluationBudget` → a fresh :class:`Checkpoint` over
      *stats* (the clock starts here, at the evaluation's entry point).
    * an already-running :class:`Checkpoint` → returned unchanged, so
      nested engines inherit the ancestor's clock and counters.
    """
    if budget is None:
        return None
    if isinstance(budget, Checkpoint):
        return budget
    if budget.unlimited:
        return None
    return budget.start(stats)
