"""Uniform evaluation statistics.

Every engine in the library — bottom-up (naive, semi-naive, stratified) and
top-down (SLD, OLDT, QSQR) — reports its work through a single
:class:`EvaluationStats` record, so the benchmark harness can compare
"inference counts" across strategies the way the paper's theorems do.

Counter semantics (normative; see DESIGN.md "Metrics"):

* ``inferences``   — successful rule applications: a full body match that
  produces a head instantiation (bottom-up), or a resolution step that
  succeeds in unifying (top-down).  This is the quantity Seki's
  inference-count theorems bound.
* ``attempts``     — candidate matches probed, successful or not (join
  probes bottom-up; clause-head or answer-clause unification attempts
  top-down).
* ``facts_derived``— *distinct new* facts added to the IDB, or distinct
  answers added to a table.
* ``calls``        — magic/call facts derived (transformed programs) or
  tabled subgoals created (OLDT); 0 for engines without a call concept.
* ``answers``      — answers produced for the query predicate.
* ``iterations``   — fixpoint rounds (bottom-up) or scheduler steps
  (top-down worklist).
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["EvaluationStats"]


@dataclass
class EvaluationStats:
    """Mutable counters accumulated during one evaluation."""

    inferences: int = 0
    attempts: int = 0
    facts_derived: int = 0
    calls: int = 0
    answers: int = 0
    iterations: int = 0

    def merge(self, other: "EvaluationStats") -> "EvaluationStats":
        """Accumulate *other* into self (used for nested sub-evaluations)."""
        for spec in fields(self):
            setattr(self, spec.name, getattr(self, spec.name) + getattr(other, spec.name))
        return self

    def as_dict(self) -> dict[str, int]:
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    def copy(self) -> "EvaluationStats":
        return EvaluationStats(**self.as_dict())

    def __str__(self) -> str:
        parts = ", ".join(f"{key}={value}" for key, value in self.as_dict().items())
        return f"EvaluationStats({parts})"
