"""Well-founded semantics via the alternating fixpoint (Van Gelder 1989).

The stratified engines reject programs with negative cycles (the win/lose
game).  The well-founded semantics assigns such programs a three-valued
model — true / false / undefined — computed here by Van Gelder's
alternating fixpoint, the construction presented in the same PODS 1989
session as the reproduced paper:

* ``Γ(S)`` = the least fixpoint of the program where a negative literal
  ``not q(t)`` succeeds iff ``q(t) ∉ S`` (negation consults the fixed
  oracle *S*, not the set being derived).
* Starting from the empty underestimate, ``U ← Γ(Γ(U))`` is monotone
  increasing and ``O = Γ(U)`` monotone decreasing; at the joint fixpoint,
  ``U`` holds the well-founded *true* facts and ``O \\ U`` the
  *undefined* ones.

For stratified programs the undefined set is empty and the result
coincides with :func:`repro.engine.stratified.stratified_fixpoint`
(tested), so this module strictly extends the engine family.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.atoms import Atom
from ..datalog.rules import Program
from ..datalog.terms import Constant
from ..facts.database import Database
from ..facts.relation import Relation
from ..obs import get_metrics
from .budget import Checkpoint, EvaluationBudget, ensure_checkpoint
from .columnar import DEFAULT_STORAGE, as_storage
from .counters import EvaluationStats
from .kernel import DEFAULT_EXECUTOR, compile_executors, head_rows
from .matching import compile_rule
from .planner import JoinPlanner, resolve_planner
from .scheduler import (
    DEFAULT_SCHEDULER,
    Schedule,
    build_schedule,
    component_planner,
    resolve_scheduler,
)

__all__ = ["WellFoundedModel", "alternating_fixpoint"]

Fact = tuple[str, tuple]


@dataclass(frozen=True)
class WellFoundedModel:
    """The three-valued well-founded model of a program.

    Attributes:
        true: the completed database of well-founded-true facts
            (including the EDB).
        undefined: facts with no truth value — ``(predicate, row)`` pairs.
        stats: evaluation counters accumulated over all Γ iterations.
    """

    true: Database
    undefined: frozenset[Fact]
    stats: EvaluationStats

    def value_of(self, atom: Atom) -> str:
        """'true', 'false', or 'undefined' for a ground atom."""
        if self.true.has_fact(atom):
            return "true"
        if (atom.predicate, atom.ground_key()) in self.undefined:
            return "undefined"
        return "false"

    def is_total(self) -> bool:
        """True iff nothing is undefined (a two-valued model)."""
        return not self.undefined

    def undefined_atoms(self) -> list[Atom]:
        return [
            Atom(predicate, tuple(Constant(value) for value in row))
            for predicate, row in sorted(self.undefined, key=repr)
        ]


def _gamma(
    program: Program,
    base: Database,
    oracle: Database,
    stats: EvaluationStats,
    planner: "JoinPlanner | str | None" = None,
    checkpoint: Checkpoint | None = None,
    executor: str = DEFAULT_EXECUTOR,
    schedule: Schedule | None = None,
) -> Database:
    """Γ(oracle): least fixpoint with negation decided against *oracle*.

    Negative literals are stable within the whole computation (the
    oracle is fixed), so no stratification is needed.  When *schedule*
    is given (scc scheduling), components are closed in dependency
    order — one pass per non-recursive component, a local inflationary
    loop per recursive one; the least fixpoint is order-independent, so
    Γ's *output* is identical, but ``inferences`` totals differ from
    the global loop (naive-style rounds re-enumerate, and how often
    depends on the round structure).
    """
    working = base.copy()
    interner = getattr(working, "interner", None)
    arities = program.arities
    derived = program.idb_predicates
    for predicate in derived:
        working.relation(predicate, arities[predicate])

    def make_view(compiled):
        body = compiled.body

        def view(position: int, predicate: str) -> Relation | None:
            if not body[position].positive:
                try:
                    return oracle.relation(predicate)
                except KeyError:
                    return None
            try:
                return working.relation(predicate)
            except KeyError:
                return None

        return view

    # (In both modes the checkpoint is polled but NOT bound to this
    # working copy: an intermediate Γ overestimate may hold facts that
    # are not well-founded-true, so the caller binds its underestimate
    # instead — the partial result it can stand behind.)
    if schedule is not None:
        for component in schedule.components:
            active_planner = component_planner(planner, working, component)
            compiled_rules = [
                compile_rule(rule, active_planner) for rule in component.rules
            ]
            executors = compile_executors(compiled_rules, executor, interner)
            changed = True
            while changed:
                if checkpoint is not None:
                    checkpoint.check_round()
                stats.iterations += 1
                changed = False
                for compiled, kernel in executors:
                    view = make_view(compiled)
                    for row in head_rows(
                        compiled, kernel, view, stats, checkpoint
                    ):
                        stats.inferences += 1
                        if working.add(compiled.head_predicate, row):
                            stats.facts_derived += 1
                            changed = True
                if not component.recursive:
                    break  # one pass closes a non-recursive component
        return working

    active_planner = resolve_planner(planner, working, program)
    compiled_rules = [
        compile_rule(rule, active_planner) for rule in program.proper_rules
    ]
    executors = compile_executors(compiled_rules, executor, interner)
    # Plain inflationary rounds (naive); adequate because Γ is called a
    # bounded number of times and each round is cheap at these scales.
    # Both Γ loops stay on the per-row path (no batch=True): heads are
    # inserted mid-enumeration, so a batch could observe its own output.
    changed = True
    while changed:
        if checkpoint is not None:
            checkpoint.check_round()
        stats.iterations += 1
        changed = False
        for compiled, kernel in executors:
            view = make_view(compiled)
            for row in head_rows(compiled, kernel, view, stats, checkpoint):
                stats.inferences += 1
                if working.add(compiled.head_predicate, row):
                    stats.facts_derived += 1
                    changed = True
    return working


def alternating_fixpoint(
    program: Program,
    database: Database | None = None,
    planner: "str | None" = None,
    budget: "EvaluationBudget | Checkpoint | None" = None,
    executor: str = DEFAULT_EXECUTOR,
    scheduler: str = DEFAULT_SCHEDULER,
    storage: str = DEFAULT_STORAGE,
) -> WellFoundedModel:
    """Compute the well-founded model of *program* over *database*.

    Args:
        program: the (possibly non-stratifiable) program.
        database: extensional facts; copied, never mutated.
        planner: optional join-planner spec (e.g. ``"greedy"``) forwarded
            to every Γ computation; each Γ plans against its own working
            database.
        budget: optional :class:`repro.engine.budget.EvaluationBudget`
            (or a running checkpoint) spanning the whole alternation.  On
            a trip the partial database attached to the error is the
            latest *underestimate* — every fact in it is well-founded
            true (the underestimates increase monotonically toward the
            true set), so the partial result is sound.
        executor: forwarded to every Γ computation (``"kernel"`` default,
            ``"interpreted"`` for the oracle matcher).
        scheduler: ``"scc"`` (default) closes each Γ component-by-
            component in dependency order (the schedule is condensed
            once and reused by every Γ call); ``"global"`` iterates all
            rules together.  The model — true facts and undefined set —
            and ``facts_derived`` are identical either way, but Γ's
            rounds are naive-style (re-enumerating), so ``inferences``/
            ``attempts``/``iterations`` legitimately differ between
            schedulers.
        storage: ``"tuples"`` (default) or ``"columnar"`` — the backend
            of every Γ working database (:mod:`repro.engine.columnar`).
            The model and every counter are identical either way; the
            ``undefined`` set is always reported in raw values.
    """
    stats = EvaluationStats()
    obs = get_metrics()
    base = as_storage(database, storage)
    base.add_atoms(program.facts)
    rules_only = program.without_facts()
    # Γ's overlay views interleave base and overestimate state, so the
    # "parallel" mode evaluates here exactly like "scc" (the schedule is
    # what parallelism would need anyway; Γ itself stays serial).
    schedule = (
        build_schedule(rules_only)
        if resolve_scheduler(scheduler) != "global"
        else None
    )

    underestimate = base.copy()
    checkpoint = ensure_checkpoint(budget, stats)
    alternations = 0
    with obs.timer("wellfounded"):
        while True:
            alternations += 1
            if checkpoint is not None:
                checkpoint.bind(underestimate)
            with obs.timer("gamma"):
                overestimate = _gamma(
                    rules_only,
                    base,
                    underestimate,
                    stats,
                    planner=planner,
                    checkpoint=checkpoint,
                    executor=executor,
                    schedule=schedule,
                )
            with obs.timer("gamma"):
                next_underestimate = _gamma(
                    rules_only,
                    base,
                    overestimate,
                    stats,
                    planner=planner,
                    checkpoint=checkpoint,
                    executor=executor,
                    schedule=schedule,
                )
            if next_underestimate == underestimate:
                break
            underestimate = next_underestimate
    if obs.enabled:
        obs.observe("wellfounded.alternations", alternations)

    # Undefined facts are reported in raw-value space so value_of() and
    # undefined_atoms() are backend-independent (stored rows are interned
    # ids under columnar storage; both databases share one interner, so
    # the encoded comparison below is exact).
    undefined: set[Fact] = set()
    for relation in overestimate.relations():
        true_rows = underestimate.rows(relation.name)
        for row in relation:
            if row not in true_rows:
                undefined.add((relation.name, overestimate.decode_row(row)))
    return WellFoundedModel(
        true=underestimate, undefined=frozenset(undefined), stats=stats
    )
