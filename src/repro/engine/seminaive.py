"""Semi-naive (differential) bottom-up fixpoint evaluation.

This is the engine the Alexander method is designed for: the transformed
program is evaluated by the standard delta discipline so that no rule body
instantiation is recomputed in later rounds.

The implementation follows the classical formulation (Balbin &
Ramamohanarao; Abiteboul–Hull–Vianu §13.1).  For each rule and each body
position *j* holding a derived (IDB) predicate, a *delta variant* is
evaluated each round with:

* positions ``i < j``  reading the **full** current relation,
* position  ``j``      reading the **delta** of the previous round,
* positions ``i > j``  reading the **old** relation (full minus delta),

which enumerates exactly the new instantiations — each joint instantiation
of derived literals is produced at exactly one variant (the one whose
delta position is the *first* literal instantiated by a previous-round
fact).

The "old" view is **zero-copy**: every merged row carries an insertion
stamp (:meth:`repro.facts.relation.Relation.mark_round`), and old reads
are :meth:`~repro.facts.relation.Relation.rows_before` views that filter
probes by stamp.  Earlier versions rebuilt an ``old`` snapshot relation
per IDB predicate per round — O(|full|) work that grew with the model,
not the delta, undercutting the "no recomputation" property the delta
discipline exists for.  Per-round overhead is now O(|delta|).

Negative literals read the full view: within a stratum they only mention
relations completed by earlier strata, so their contents never change
during the fixpoint (enforced by :mod:`repro.engine.stratified`).
"""

from __future__ import annotations

from typing import Mapping

from ..datalog.rules import Program
from ..facts.database import Database
from ..facts.relation import Relation, StampedView
from ..obs import get_metrics
from .budget import Checkpoint, EvaluationBudget, ensure_checkpoint
from .columnar import DEFAULT_STORAGE, as_storage
from .counters import EvaluationStats
from .kernel import DEFAULT_EXECUTOR, compile_executors, head_rows
from .matching import CompiledRule, compile_rule
from .planner import JoinPlanner, resolve_planner
from .scheduler import DEFAULT_SCHEDULER, resolve_scheduler

__all__ = ["seminaive_fixpoint", "run_global_rounds"]


def _variant_positions(compiled: CompiledRule, derived: frozenset[str]) -> list[int]:
    """Body positions holding a positive literal of a derived predicate."""
    return [
        index
        for index, literal in enumerate(compiled.body)
        if literal.positive and literal.predicate in derived
    ]


class _RoundView:
    """The three-way full/delta/old relation view for one delta variant."""

    __slots__ = ("database", "delta_position", "delta_relation", "old", "derived")

    def __init__(
        self,
        database: Database,
        delta_position: int,
        delta_relation: Relation,
        old: Mapping[str, StampedView],
        derived: frozenset[str],
    ):
        self.database = database
        self.delta_position = delta_position
        self.delta_relation = delta_relation
        self.old = old
        self.derived = derived

    def __call__(self, position: int, predicate: str):
        if position == self.delta_position:
            return self.delta_relation
        if position > self.delta_position and predicate in self.derived:
            return self.old.get(predicate)
        try:
            return self.database.relation(predicate)
        except KeyError:
            return None


def seminaive_fixpoint(
    program: Program,
    database: Database | None = None,
    stats: EvaluationStats | None = None,
    planner: "JoinPlanner | str | None" = None,
    budget: "EvaluationBudget | Checkpoint | None" = None,
    executor: str = DEFAULT_EXECUTOR,
    scheduler: str = DEFAULT_SCHEDULER,
    storage: str = DEFAULT_STORAGE,
    workers: "int | None" = None,
) -> tuple[Database, EvaluationStats]:
    """Evaluate *program* to fixpoint with the semi-naive delta discipline.

    Args:
        program: rules to evaluate; embedded ground facts are loaded too.
        database: extensional facts; copied, never mutated.
        stats: optional counter record to accumulate into.
        planner: optional join planner (``"greedy"`` or a
            :class:`repro.engine.planner.JoinPlanner`); rule bodies are
            compiled in its cost-based order.  Delta variants are built
            over the *planned* body positions, so the discipline's
            exactly-once guarantee is unaffected.
        budget: optional :class:`repro.engine.budget.EvaluationBudget`
            (or an already-running checkpoint, for nested evaluation);
            checked at every round boundary and inside match loops.
            Exhaustion raises
            :class:`repro.errors.BudgetExceededError` carrying the
            partial database, whose facts are a sound prefix of the full
            model (the iteration is inflationary).
        executor: ``"kernel"`` (default) runs rule bodies as compiled
            slot kernels (:mod:`repro.engine.kernel`); ``"interpreted"``
            uses the recursive matcher.  Fact sets and counters are
            identical either way.
        scheduler: ``"scc"`` (default) evaluates the program
            component-by-component in dependency order with local
            fixpoints and a delta agenda
            (:mod:`repro.engine.scheduler`); ``"parallel"`` runs the
            same component discipline with independent components on a
            worker pool and hash-partitioned delta rounds
            (:mod:`repro.engine.parallel`); ``"global"`` runs the
            single monolithic loop below, kept as the differential
            oracle.  Fact sets, ``facts_derived``, and ``inferences``
            are identical in all modes (scc and parallel additionally
            match on ``attempts`` and ``iterations``); ``iterations``
            counts local component passes under scc/parallel and global
            rounds otherwise, so those two are not comparable 1:1.
        storage: ``"tuples"`` (default) keeps facts as tuples of raw
            values; ``"columnar"`` interns constants and evaluates over
            the dictionary-encoded columnar backend with batch kernels
            (:mod:`repro.engine.columnar`).  Fact sets, counters,
            enumeration order, and budget-trip points are identical
            either way (the tuple backend is the differential oracle).
            Columnar storage requires ``executor="kernel"``.
        workers: worker-pool size for ``scheduler="parallel"``
            (``None`` = one per CPU core); accepted and ignored by the
            serial schedulers.

    Returns:
        The completed database and the statistics record.
    """
    mode = resolve_scheduler(scheduler)
    if mode == "parallel":
        from .parallel import parallel_seminaive_fixpoint

        return parallel_seminaive_fixpoint(
            program, database, stats, planner=planner, budget=budget,
            executor=executor, storage=storage, workers=workers,
        )
    if mode == "scc":
        from .scheduler import scc_seminaive_fixpoint

        return scc_seminaive_fixpoint(
            program, database, stats, planner=planner, budget=budget,
            executor=executor, storage=storage,
        )
    stats = stats if stats is not None else EvaluationStats()
    working = as_storage(database, storage)
    working.add_atoms(program.facts)
    derived = program.idb_predicates
    arities = program.arities
    for predicate in derived:
        working.relation(predicate, arities[predicate])
    active_planner = resolve_planner(planner, working, program)
    compiled_rules = [
        compile_rule(rule, active_planner) for rule in program.proper_rules
    ]
    executors = compile_executors(
        compiled_rules, executor, getattr(working, "interner", None)
    )
    # Variant positions are a static property of the compiled body;
    # compute them once rather than per rule per round.
    variants = [
        (compiled, kernel, _variant_positions(compiled, derived))
        for compiled, kernel in executors
    ]
    checkpoint = ensure_checkpoint(budget, stats)
    if checkpoint is not None:
        checkpoint.bind(working)
    run_global_rounds(
        executors, variants, derived, arities, working, stats, checkpoint
    )
    return working, stats


def run_global_rounds(
    executors,
    variants,
    derived: frozenset[str],
    arities: Mapping[str, int],
    working: Database,
    stats: EvaluationStats,
    checkpoint: "Checkpoint | None",
) -> None:
    """The global-loop round discipline over already-compiled rules.

    This is the run half of the compile/run split: everything
    query-shape-specific (planning, rule compilation, kernel lowering,
    variant positions) happened before this call, so a prepared query
    (:mod:`repro.engine.prepared`) can execute it repeatedly against
    fresh working databases with zero recompilation.  *working* is
    mutated in place and must already hold every derived relation.
    """
    obs = get_metrics()

    def full_view(position: int, predicate: str) -> Relation | None:
        try:
            return working.relation(predicate)
        except KeyError:
            return None

    with obs.timer("seminaive"):
        # --- round 0: one T_P application on the initial database ----------
        # Facts are merged only at the round boundary; merging mid-round
        # would let later rules consume this round's facts and then
        # recompute the same instantiation from the delta in round 1.
        if checkpoint is not None:
            checkpoint.check_round()
        stats.iterations += 1
        # Deltas are spawned from the working database so they share its
        # storage backend (columnar deltas for a columnar working set).
        delta: dict[str, Relation] = {
            predicate: working.spawn(predicate, arities[predicate])
            for predicate in derived
        }
        # Rows merged at the end of round k carry stamp k+1; the "old"
        # view of round k+1 is then exactly the rows stamped <= k, read
        # through a zero-copy rows_before() filter.
        stamp = 1
        with obs.timer("round"):
            for compiled, kernel in executors:
                target = working.relation(compiled.head_predicate)
                for row in head_rows(
                    compiled, kernel, full_view, stats, checkpoint, batch=True
                ):
                    stats.inferences += 1
                    if row not in target:
                        delta[compiled.head_predicate].add(row)
            for predicate in derived:
                working.relation(predicate).mark_round(stamp)
                for row in delta[predicate]:
                    if working.add(predicate, row):
                        stats.facts_derived += 1
        if obs.enabled:
            obs.observe(
                "seminaive.delta_rows",
                sum(len(delta[predicate]) for predicate in derived),
            )

        # --- delta rounds ---------------------------------------------------
        while any(delta[predicate] for predicate in derived):
            if checkpoint is not None:
                checkpoint.check_round()
            stats.iterations += 1
            with obs.timer("round"):
                # old = full minus current delta (the state before the last
                # merge): a stamped view per IDB predicate, O(1) to build.
                old: dict[str, StampedView] = {
                    predicate: working.relation(predicate).rows_before(stamp)
                    for predicate in derived
                }
                new_delta: dict[str, Relation] = {
                    predicate: working.spawn(predicate, arities[predicate])
                    for predicate in derived
                }
                for compiled, kernel, positions in variants:
                    for position in positions:
                        literal = compiled.body[position]
                        delta_relation = delta[literal.predicate]
                        if not delta_relation:
                            continue
                        view = _RoundView(working, position, delta_relation, old, derived)
                        target = working.relation(compiled.head_predicate)
                        for row in head_rows(
                            compiled, kernel, view, stats, checkpoint,
                            batch=True,
                        ):
                            stats.inferences += 1
                            if row not in target:
                                new_delta[compiled.head_predicate].add(row)
                # Merge after the round so all variants of the round read a
                # consistent full view.
                stamp += 1
                for predicate in derived:
                    working.relation(predicate).mark_round(stamp)
                    for row in new_delta[predicate]:
                        if working.add(predicate, row):
                            stats.facts_derived += 1
            if obs.enabled:
                obs.incr("seminaive.stamped_rounds")
                obs.observe(
                    "seminaive.delta_rows",
                    sum(len(new_delta[predicate]) for predicate in derived),
                )
            delta = new_delta
    if obs.enabled:
        obs.incr("seminaive.runs")
        obs.observe("seminaive.iterations", stats.iterations)
