"""Provenance-tracking evaluation: proof trees for derived facts.

The engines answer *what* is derivable; this module also records *why*.
:func:`traced_fixpoint` runs a stratified semi-naive evaluation that
remembers, for every derived fact, its **first derivation** — the rule
instance and the body facts that fired it.  Because the semi-naive delta
discipline only ever consumes facts from strictly earlier rounds (and the
stratified driver only consumes completed lower strata), the recorded
derivation graph is acyclic, so proof trees can be reconstructed without
cycle checks.

``repro-datalog why program.dl "anc(a, c)"`` prints these trees from the
command line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..analysis.stratify import stratify
from ..datalog.atoms import Atom
from ..datalog.rules import Program, Rule
from ..datalog.terms import Constant
from ..facts.database import Database
from ..facts.relation import Relation
from .counters import EvaluationStats
from .matching import CompiledRule, compile_rule, match_body

__all__ = ["Derivation", "ProofNode", "TracedEvaluation", "traced_fixpoint", "format_proof"]

Fact = tuple[str, tuple]  # (predicate, value tuple)


@dataclass(frozen=True)
class Derivation:
    """One recorded rule firing.

    Attributes:
        rule: the source rule.
        positive: the positive body facts consumed, in body order.
        negative: the negative body facts checked absent (NAF leaves).
    """

    rule: Rule
    positive: tuple[Fact, ...]
    negative: tuple[Fact, ...]


@dataclass
class ProofNode:
    """A node of a reconstructed proof tree."""

    fact: Fact
    rule: Rule | None  # None => extensional (or asserted) fact
    children: list["ProofNode"] = field(default_factory=list)
    negative: tuple[Fact, ...] = ()

    @property
    def is_leaf(self) -> bool:
        return self.rule is None

    def atom(self) -> Atom:
        predicate, row = self.fact
        return Atom(predicate, tuple(Constant(value) for value in row))

    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children)


class TracedEvaluation:
    """The result of a traced run: the completed database plus, for each
    derived fact, its first derivation."""

    def __init__(
        self,
        database: Database,
        derivations: Mapping[Fact, Derivation],
        edb_facts: frozenset[Fact],
        stats: EvaluationStats,
    ):
        self.database = database
        self._derivations = dict(derivations)
        self._edb_facts = edb_facts
        self.stats = stats

    def holds(self, atom: Atom) -> bool:
        return self.database.has_fact(atom)

    def derivation_of(self, atom: Atom) -> Derivation | None:
        return self._derivations.get((atom.predicate, atom.ground_key()))

    def proof(self, atom: Atom) -> ProofNode | None:
        """The proof tree of a ground atom, or None when it does not hold."""
        fact = (atom.predicate, atom.ground_key())
        if fact in self._edb_facts and fact not in self._derivations:
            return ProofNode(fact=fact, rule=None)
        if fact not in self._derivations:
            return None
        return self._build(fact)

    def _build(self, fact: Fact) -> ProofNode:
        derivation = self._derivations.get(fact)
        if derivation is None:
            return ProofNode(fact=fact, rule=None)
        children = [self._build(child) for child in derivation.positive]
        return ProofNode(
            fact=fact,
            rule=derivation.rule,
            children=children,
            negative=derivation.negative,
        )


def _literal_fact(literal, binding) -> Fact:
    row = [None] * (
        len(literal.constants) + len(literal.binders) + len(literal.filters)
    )
    for column, value in literal.constants:
        row[column] = value
    for column, var in literal.binders + literal.filters:
        row[column] = binding[var]
    return (literal.predicate, tuple(row))


def traced_fixpoint(
    program: Program, database: Database | None = None
) -> TracedEvaluation:
    """Stratified semi-naive evaluation that records first derivations.

    Uses per-round snapshots like :mod:`repro.engine.seminaive`; the
    recorded derivation of each fact only references facts from earlier
    rounds or lower strata, so proofs are well-founded.
    """
    stats = EvaluationStats()
    working = database.copy() if database is not None else Database()
    working.add_atoms(program.facts)
    edb_facts = frozenset(
        (atom.predicate, atom.ground_key()) for atom in working.all_atoms()
    )
    derivations: dict[Fact, Derivation] = {}
    arities = program.arities
    stratification = stratify(program)
    for stratum in stratification.strata:
        _trace_stratum(stratum, working, derivations, arities, stats)
    return TracedEvaluation(working, derivations, edb_facts, stats)


def _trace_stratum(
    stratum: Program,
    working: Database,
    derivations: dict[Fact, Derivation],
    arities: Mapping[str, int],
    stats: EvaluationStats,
) -> None:
    derived = stratum.idb_predicates
    for predicate in derived:
        working.relation(predicate, arities[predicate])
    compiled_rules = [compile_rule(rule) for rule in stratum.proper_rules]

    def full_view(position: int, predicate: str) -> Relation | None:
        try:
            return working.relation(predicate)
        except KeyError:
            return None

    def record(compiled: CompiledRule, binding, head_fact: Fact) -> None:
        if head_fact in derivations:
            return
        positive = []
        negative = []
        for literal in compiled.body:
            fact = _literal_fact(literal, binding)
            if literal.positive:
                positive.append(fact)
            else:
                negative.append(fact)
        derivations[head_fact] = Derivation(
            rule=compiled.rule,
            positive=tuple(positive),
            negative=tuple(negative),
        )

    # Round 0 (one T_P application), then delta rounds; facts are merged
    # only at round boundaries so the recorded derivations reference
    # earlier rounds exclusively.
    delta: dict[str, Relation] = {
        predicate: Relation(predicate, arities[predicate])
        for predicate in derived
    }
    stats.iterations += 1
    for compiled in compiled_rules:
        for binding in match_body(compiled, full_view, stats):
            stats.inferences += 1
            row = compiled.head_tuple(binding)
            head_fact = (compiled.head_predicate, row)
            if row not in working.relation(compiled.head_predicate):
                delta[compiled.head_predicate].add(row)
                record(compiled, binding, head_fact)
    for predicate in derived:
        for row in delta[predicate]:
            if working.add(predicate, row):
                stats.facts_derived += 1

    while any(delta[predicate] for predicate in derived):
        stats.iterations += 1
        old: dict[str, Relation] = {}
        for predicate in derived:
            snapshot = Relation(predicate, arities[predicate])
            delta_rows = delta[predicate].rows()
            for row in working.relation(predicate):
                if row not in delta_rows:
                    snapshot.add(row)
            old[predicate] = snapshot
        new_delta: dict[str, Relation] = {
            predicate: Relation(predicate, arities[predicate])
            for predicate in derived
        }
        for compiled in compiled_rules:
            positions = [
                index
                for index, literal in enumerate(compiled.body)
                if literal.positive and literal.predicate in derived
            ]
            for position in positions:
                literal = compiled.body[position]
                delta_relation = delta[literal.predicate]
                if not delta_relation:
                    continue

                def view(pos: int, predicate: str) -> Relation | None:
                    if pos == position:
                        return delta_relation
                    if pos > position and predicate in derived:
                        return old.get(predicate)
                    return full_view(pos, predicate)

                for binding in match_body(compiled, view, stats):
                    stats.inferences += 1
                    row = compiled.head_tuple(binding)
                    head_fact = (compiled.head_predicate, row)
                    if row not in working.relation(compiled.head_predicate):
                        new_delta[compiled.head_predicate].add(row)
                        record(compiled, binding, head_fact)
        for predicate in derived:
            for row in new_delta[predicate]:
                if working.add(predicate, row):
                    stats.facts_derived += 1
        delta = new_delta


def format_proof(node: ProofNode, indent: str = "") -> str:
    """Render a proof tree as indented ASCII."""
    lines = []
    label = str(node.atom())
    if node.rule is None:
        lines.append(f"{indent}{label}   [fact]")
    else:
        lines.append(f"{indent}{label}   [rule: {node.rule}]")
    child_indent = indent + "  "
    for child in node.children:
        lines.append(format_proof(child, child_indent))
    for predicate, row in node.negative:
        atom = Atom(predicate, tuple(Constant(value) for value in row))
        lines.append(f"{child_indent}not {atom}   [absent]")
    return "\n".join(lines)
