"""Incremental view maintenance: counting and DRed deletion fast paths.

:class:`repro.engine.incremental.IncrementalEngine` materialises a
positive program's fixpoint and patches it under fact insertion by
continuing the semi-naive iteration from a seed delta.  This module holds
the machinery that makes *deletion* incremental too — the two textbook
algorithms, both driven through the same compiled rule kernels as the
insertion path:

* **counting** (Gupta–Mumick–Subrahmanian) — every fact carries its
  derivation count: the number of distinct rule-body instantiations that
  derive it, plus one *external* support when the fact was asserted
  directly (EDB facts, or IDB facts inserted through ``add``).  The
  semi-naive delta discipline enumerates each body instantiation exactly
  once, so counts fall out of the ordinary insertion loop for free.  A
  deletion enumerates exactly the instantiations *lost* (those using at
  least one deleted fact, via the inverse delta discipline below),
  decrements their heads, and cascades only where a count reaches zero.
  Exact for **non-recursive** programs; with recursion, cyclically
  supported facts keep positive counts, so recursive programs are
  rejected at engine construction.
* **DRed** (delete and re-derive, Gupta–Mumick–Subrahmanian / Staudt–
  Jarke) — over-delete the whole cone reachable from the deleted facts
  (anything with *some* lost derivation), then re-derive survivors: each
  over-deleted fact is checked for a one-step derivation from the
  surviving database (a backward head-bound probe), and the facts that
  pass are re-inserted and propagated forward with the ordinary
  semi-naive continuation.  Sound and complete for any negation-free
  program, recursion included.

Deletion enumeration — the inverse delta discipline
---------------------------------------------------
Insertion enumerates each *new* instantiation once by reading the delta
at one position, full at earlier positions, and pre-delta at later ones.
Deletion mirrors it: at round *k* with deletion delta ``D_k`` (facts
leaving the database this round, still physically present while the
round enumerates), position *j* reads ``D_k``, positions *i < j* read
the survivors ``working − D_k`` (a :class:`SubtractView`), and positions
*i > j* read ``working`` unchanged.  An instantiation is therefore
enumerated at exactly one (round, position): the round its first fact is
deleted, at the first position holding such a fact — the same
exactly-once guarantee the insertion discipline gives, inverted.

Deletion passes stay on the per-row kernel path (:class:`SubtractView`
is not a columnar relation, so the batch executor declines and
:func:`~repro.engine.kernel.head_rows` falls back); the insertion and
re-derivation propagation uses the batch path whenever no budget
checkpoint governs the operation, exactly like ``add``.

``EvaluationStats`` semantics (documented contract): maintenance
operations charge ``inferences`` for every *enumerated derivation
event* — new instantiations on insert, lost instantiations on delete —
``attempts`` per probed row as always, ``iterations`` per delta round
(insert rounds, cascade rounds, and re-derivation rounds each count),
and ``facts_derived`` for every fact entering the working database
(including DRed re-insertions).  Fact sets are bit-identical to the
full-recompute oracle; the counters measure the *maintenance* work,
which is the whole point of the fast path.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from ..engine.budget import Checkpoint
from ..errors import ProgramError
from ..facts.database import Database
from ..facts.relation import Relation
from ..obs import get_metrics
from .counters import EvaluationStats
from .kernel import RuleKernel, head_rows
from .matching import CompiledRule

__all__ = [
    "MAINTENANCE_MODES",
    "DEFAULT_MAINTENANCE",
    "resolve_maintenance",
    "SubtractView",
    "propagate",
    "delete_counting",
    "delete_dred",
]

MAINTENANCE_MODES = ("recompute", "counting", "dred")
DEFAULT_MAINTENANCE = "recompute"

Executors = "list[tuple[CompiledRule, RuleKernel | None]]"
EncodedFact = tuple[str, tuple]


def resolve_maintenance(mode: str) -> str:
    """Validate a ``maintenance=`` argument."""
    if mode not in MAINTENANCE_MODES:
        raise ProgramError(
            f"unknown maintenance mode {mode!r}; choose from "
            f"{MAINTENANCE_MODES}"
        )
    return mode


class SubtractView:
    """A relation minus an in-flight deletion delta, zero-copy.

    Deletion rounds enumerate lost instantiations *before* physically
    removing the delta rows, so "the survivors" is the stored relation
    filtered against the (small) delta set.  Supports exactly the
    surface the per-row executors touch: :meth:`lookup` for probes and
    ``in`` for negative tests.
    """

    __slots__ = ("_relation", "_excluded")

    def __init__(self, relation: Relation, excluded: "set[tuple]"):
        self._relation = relation
        self._excluded = excluded

    @property
    def arity(self) -> int:
        return self._relation.arity

    def lookup(self, bound: Mapping[int, object]) -> Iterator[tuple]:
        excluded = self._excluded
        for row in self._relation.lookup(bound):
            if row not in excluded:
                yield row

    def __contains__(self, row: tuple) -> bool:
        return row not in self._excluded and row in self._relation

    def __iter__(self) -> Iterator[tuple]:
        return self.lookup({})

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"SubtractView({self._relation!r} - {len(self._excluded)} rows)"


def propagate(
    working: Database,
    executors: "list[tuple[CompiledRule, RuleKernel | None]]",
    arities: dict[str, int],
    delta: dict[str, Relation],
    stamp: int,
    op_stats: EvaluationStats,
    checkpoint: "Checkpoint | None",
    counts: "dict[str, dict[tuple, int]] | None" = None,
    new_facts: "set | None" = None,
    decode: bool = True,
) -> None:
    """Continue the semi-naive iteration from *delta* until fixpoint.

    The single insertion loop behind ``add``, ``add_many``, the counting
    build, and DRed's re-derivation: *delta* rows are already merged into
    *working* and stamped at *stamp* (so ``rows_before(stamp)`` is the
    pre-delta state), and each round enumerates exactly the
    instantiations using at least one current-delta fact.

    Args:
        counts: when given (counting mode), every enumerated derivation
            increments its head fact's count — including derivations of
            facts already present, which gain support without rejoining
            the delta.
        new_facts: when given, every fact entering *working* is recorded
            as ``(predicate, row)`` — decoded to raw values when
            *decode*, in the backend's native row space otherwise.
    """
    while delta:
        if checkpoint is not None:
            checkpoint.check_round()
        op_stats.iterations += 1
        # old = working minus current delta, per delta predicate: a
        # zero-copy stamped view (the current delta is exactly the rows
        # merged at the current stamp).
        old = {
            predicate: working.relation(predicate).rows_before(stamp)
            for predicate in delta
        }
        new_delta: dict[str, Relation] = {}
        for compiled, kernel in executors:
            positions = [
                index
                for index, literal in enumerate(compiled.body)
                if literal.positive and literal.predicate in delta
            ]
            for position in positions:
                delta_relation = delta[compiled.body[position].predicate]

                def view(pos: int, predicate: str) -> "Relation | None":
                    if pos == position:
                        return delta_relation
                    if pos > position and predicate in old:
                        return old[predicate]
                    try:
                        return working.relation(predicate)
                    except KeyError:
                        return None

                # batch=True is sound: heads land in new_delta buckets,
                # so the working set is unchanged while a batch
                # enumerates.
                for head_row in head_rows(
                    compiled, kernel, view, op_stats, checkpoint,
                    batch=True,
                ):
                    op_stats.inferences += 1
                    head_pred = compiled.head_predicate
                    if counts is not None:
                        table = counts.setdefault(head_pred, {})
                        table[head_row] = table.get(head_row, 0) + 1
                    relation = working.relation(
                        head_pred, arities.get(head_pred)
                    )
                    if head_row in relation:
                        continue
                    bucket = new_delta.setdefault(
                        head_pred,
                        working.spawn(head_pred, len(head_row)),
                    )
                    bucket.add(head_row)
        stamp += 1
        for predicate, bucket in new_delta.items():
            target = working.relation(predicate, arities.get(predicate))
            target.mark_round(stamp)
            for new_row in bucket:
                if working.add(predicate, new_row):
                    op_stats.facts_derived += 1
                    if new_facts is not None:
                        new_facts.add(
                            (
                                predicate,
                                working.decode_row(new_row)
                                if decode
                                else new_row,
                            )
                        )
        delta = {p: r for p, r in new_delta.items() if r}


def _lost_heads(
    working: Database,
    executors: "list[tuple[CompiledRule, RuleKernel | None]]",
    delta: dict[str, Relation],
    excluded: dict[str, set],
    op_stats: EvaluationStats,
    checkpoint: "Checkpoint | None",
) -> Iterator[EncodedFact]:
    """Enumerate the head of every derivation lost to this deletion round.

    *delta* holds the facts leaving the database this round (still
    physically present in *working*); *excluded* is the same row sets for
    the :class:`SubtractView` filters.  Each lost instantiation is
    enumerated exactly once (see the module docstring), charged one
    ``inferences`` event.
    """
    for compiled, kernel in executors:
        positions = [
            index
            for index, literal in enumerate(compiled.body)
            if literal.positive and literal.predicate in delta
        ]
        for position in positions:
            delta_relation = delta[compiled.body[position].predicate]

            def view(pos: int, predicate: str) -> "Relation | None":
                if pos == position:
                    return delta_relation
                try:
                    relation = working.relation(predicate)
                except KeyError:
                    return None
                if pos < position and predicate in excluded:
                    return SubtractView(relation, excluded[predicate])
                return relation

            # Deletions stay on the per-row path: SubtractView is not a
            # columnar relation, so batch mode would decline anyway.
            for head_row in head_rows(
                compiled, kernel, view, op_stats, checkpoint
            ):
                op_stats.inferences += 1
                yield compiled.head_predicate, head_row


def _spawn_delta(
    working: Database, rows_by_predicate: dict[str, set]
) -> dict[str, Relation]:
    """Backend-matched scratch relations holding the deletion rows."""
    delta: dict[str, Relation] = {}
    for predicate, rows in rows_by_predicate.items():
        relation = working.relation(predicate)
        bucket = working.spawn(predicate, relation.arity)
        for row in rows:
            bucket.add(row)
        delta[predicate] = bucket
    return delta


def delete_counting(
    working: Database,
    executors: "list[tuple[CompiledRule, RuleKernel | None]]",
    counts: dict[str, dict[tuple, int]],
    seeds: dict[str, set],
    op_stats: EvaluationStats,
    checkpoint: "Checkpoint | None",
) -> set[EncodedFact]:
    """Counting-mode deletion: decrement, cascade where support hits zero.

    *seeds* are base facts (rows currently present) whose external
    support is being withdrawn; their count entries are discarded with
    them.  Returns every ``(predicate, row)`` removed from *working*,
    seeds included, in the backend's native row space.
    """
    removed: set[EncodedFact] = set()
    delta = {p: set(rows) for p, rows in seeds.items() if rows}
    while delta:
        if checkpoint is not None:
            checkpoint.check_round()
        op_stats.iterations += 1
        decrements: dict[EncodedFact, int] = {}
        spawned = _spawn_delta(working, delta)
        for head in _lost_heads(
            working, executors, spawned, delta, op_stats, checkpoint
        ):
            decrements[head] = decrements.get(head, 0) + 1
        # The round's enumeration is done: physically remove the delta.
        for predicate, rows in delta.items():
            relation = working.relation(predicate)
            table = counts.get(predicate)
            for row in rows:
                relation.discard(row)
                if table is not None:
                    table.pop(row, None)
                removed.add((predicate, row))
        new_delta: dict[str, set] = {}
        for (predicate, row), lost in decrements.items():
            table = counts.get(predicate)
            if table is None:
                continue
            current = table.get(row)
            if current is None:
                # Already removed (this round's delta or an earlier one).
                continue
            current -= lost
            if current <= 0:
                table[row] = 0
                new_delta.setdefault(predicate, set()).add(row)
            else:
                table[row] = current
        delta = new_delta
    obs = get_metrics()
    if obs.enabled:
        obs.incr("maintain.counting.deletions")
        obs.incr("maintain.counting.removed", len(removed))
    return removed


def _builtin_holds(
    working: Database, literal, binding: dict, op_stats: EvaluationStats
) -> bool:
    """Evaluate a built-in test on raw values (slots decode per backend)."""
    from ..datalog.builtins import evaluate_builtin

    op_stats.attempts += 1
    arity = len(literal.source.args)
    values: list = [None] * arity
    for column, value in literal.constants:
        values[column] = value
    bound = [
        (column, binding[var])
        for column, var in literal.binders + literal.filters
    ]
    if bound:
        decoded = working.decode_row(tuple(value for _, value in bound))
        for (column, _), raw in zip(bound, decoded):
            values[column] = raw
    holds = evaluate_builtin(literal.predicate, tuple(values))
    return holds if literal.positive else not holds


def _body_holds(
    working: Database,
    compiled: CompiledRule,
    index: int,
    binding: dict,
    op_stats: EvaluationStats,
    checkpoint: "Checkpoint | None",
) -> bool:
    """True iff the body from *index* on has a match in *working*.

    The backward half of DRed's re-derivation check: a boolean
    index-nested-loop walk in the backend's native row space, with the
    head variables pre-bound by the candidate fact.  Charges one
    ``attempts`` per probed row and per test, mirroring the forward
    matchers.
    """
    if index == len(compiled.body):
        return True
    literal = compiled.body[index]
    if literal.builtin:
        if not _builtin_holds(working, literal, binding, op_stats):
            return False
        return _body_holds(
            working, compiled, index + 1, binding, op_stats, checkpoint
        )
    try:
        relation = working.relation(literal.predicate)
    except KeyError:
        relation = None
    if not literal.positive:
        # Unreachable for the negation-free engine, kept for safety: a
        # fully bound absence check, exactly like the forward matchers.
        op_stats.attempts += 1
        if relation is not None:
            encoded_consts = (
                working.encode_row(
                    tuple(value for _, value in literal.constants)
                )
                if literal.constants
                else ()
            )
            row: dict[int, object] = {
                column: encoded
                for (column, _), encoded in zip(
                    literal.constants, encoded_consts
                )
            }
            for column, var in literal.binders + literal.filters:
                row[column] = binding[var]
            probe = tuple(row[column] for column in range(relation.arity))
            if probe in relation:
                return False
        return _body_holds(
            working, compiled, index + 1, binding, op_stats, checkpoint
        )
    if relation is None:
        return False
    bound: dict[int, object] = {}
    if literal.constants:
        encoded_consts = working.encode_row(
            tuple(value for _, value in literal.constants)
        )
        for (column, _), encoded in zip(literal.constants, encoded_consts):
            bound[column] = encoded
    unbound: list = []
    for column, var in literal.binders:
        if var in binding:
            bound[column] = binding[var]
        else:
            unbound.append((column, var))
    for row in relation.lookup(bound):
        op_stats.attempts += 1
        if checkpoint is not None:
            checkpoint.poll()
        extended = dict(binding)
        for column, var in unbound:
            extended[var] = row[column]
        ok = True
        for column, var in literal.filters:
            if extended.get(var) != row[column]:
                ok = False
                break
        if ok and _body_holds(
            working, compiled, index + 1, extended, op_stats, checkpoint
        ):
            return True
    return False


def _derivable(
    working: Database,
    executors: "list[tuple[CompiledRule, RuleKernel | None]]",
    predicate: str,
    row: tuple,
    op_stats: EvaluationStats,
    checkpoint: "Checkpoint | None",
) -> bool:
    """One-step derivability of ``predicate(row)`` from *working*.

    The boundary check seeding DRed's re-derivation: the candidate's
    values pre-bind each rule's head variables, so the body walk is a
    head-bound probe proportional to the candidate's support, not the
    model.
    """
    for compiled, _kernel in executors:
        if compiled.head_predicate != predicate:
            continue
        binding: dict = {}
        consts = [
            (column, payload)
            for column, (kind, payload) in enumerate(compiled.head_pattern)
            if kind == "c"
        ]
        ok = True
        if consts:
            encoded = working.encode_row(
                tuple(payload for _, payload in consts)
            )
            for (column, _), value in zip(consts, encoded):
                if row[column] != value:
                    ok = False
                    break
        if not ok:
            continue
        for column, (kind, payload) in enumerate(compiled.head_pattern):
            if kind != "v":
                continue
            current = binding.get(payload, _MISSING)
            if current is _MISSING:
                binding[payload] = row[column]
            elif current != row[column]:
                ok = False
                break
        if not ok:
            continue
        if _body_holds(working, compiled, 0, binding, op_stats, checkpoint):
            return True
    return False


_MISSING = object()


def delete_dred(
    working: Database,
    executors: "list[tuple[CompiledRule, RuleKernel | None]]",
    arities: dict[str, int],
    seeds: dict[str, set],
    asserted: "set[EncodedFact]",
    op_stats: EvaluationStats,
    checkpoint: "Checkpoint | None",
) -> tuple[set[EncodedFact], set[EncodedFact]]:
    """DRed deletion: over-delete the cone, re-derive the survivors.

    *seeds* are base facts (rows currently present) losing their
    extensional support; *asserted* facts carry external support and are
    never over-deleted.  Returns ``(removed, restored)`` in the backend's
    native row space: every fact physically removed during over-deletion
    and every fact the re-derivation pass brought back — the net deletion
    is their difference.
    """
    removed: set[EncodedFact] = set()
    candidates: list[EncodedFact] = []
    delta = {p: set(rows) for p, rows in seeds.items() if rows}
    while delta:
        if checkpoint is not None:
            checkpoint.check_round()
        op_stats.iterations += 1
        lost: set[EncodedFact] = set()
        spawned = _spawn_delta(working, delta)
        for head in _lost_heads(
            working, executors, spawned, delta, op_stats, checkpoint
        ):
            lost.add(head)
        for predicate, rows in delta.items():
            relation = working.relation(predicate)
            for row in rows:
                relation.discard(row)
                removed.add((predicate, row))
        new_delta: dict[str, set] = {}
        for predicate, row in lost:
            if (predicate, row) in removed or (predicate, row) in asserted:
                continue
            new_delta.setdefault(predicate, set()).add(row)
            candidates.append((predicate, row))
        delta = new_delta
    restored: set[EncodedFact] = set()
    if candidates:
        # Re-derivation, seeded from the boundary: an over-deleted fact
        # survives iff some rule body holds entirely in the surviving
        # database; survivors re-enter as one batched delta and the
        # ordinary semi-naive continuation restores everything reachable
        # from them.
        rederive: dict[str, list] = {}
        for predicate, row in candidates:
            if _derivable(
                working, executors, predicate, row, op_stats, checkpoint
            ):
                rederive.setdefault(predicate, []).append(row)
        if rederive:
            stamp = 1 + max(
                (relation.round for relation in working.relations()),
                default=0,
            )
            delta2: dict[str, Relation] = {}
            for predicate, rows in rederive.items():
                target = working.relation(predicate, arities.get(predicate))
                target.mark_round(stamp)
                bucket = working.spawn(predicate, target.arity)
                for row in rows:
                    if working.add(predicate, row):
                        op_stats.facts_derived += 1
                        restored.add((predicate, row))
                        bucket.add(row)
                if bucket:
                    delta2[predicate] = bucket
            reinserted: set = set()
            propagate(
                working, executors, arities, delta2, stamp, op_stats,
                checkpoint, new_facts=reinserted, decode=False,
            )
            restored |= reinserted
    obs = get_metrics()
    if obs.enabled:
        obs.incr("maintain.dred.deletions")
        obs.incr("maintain.dred.overdeleted", len(removed))
        obs.incr("maintain.dred.rederived", len(restored))
    return removed, restored
