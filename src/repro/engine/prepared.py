"""Precompiled fixpoints: plan and compile once, evaluate many times.

Every bottom-up entry point in the library re-resolves its planner,
re-compiles its rules, and re-lowers them to kernels on every call.  For
a one-shot CLI evaluation that is invisible; for a long-lived query
service answering the same query shape thousands of times it is pure
overhead — and it is exactly the overhead the Alexander/magic family
makes worth eliminating, because a transformed program is query-shape
specific and expensive to rebuild.

This module splits evaluation into its two natural halves:

* :func:`compile_fixpoint` does everything that depends only on the
  *rules* (and, for cost-based planning, on the base relation
  statistics): scheduling (:func:`repro.engine.scheduler.build_schedule`),
  join planning, rule compilation, and kernel lowering.  The result is an
  immutable :class:`CompiledFixpoint`.
* :func:`run_fixpoint` evaluates a :class:`CompiledFixpoint` against a
  database — any number of times, each run with its own working copy,
  :class:`~repro.engine.counters.EvaluationStats`, and budget
  checkpoint.  Nothing is re-planned or re-compiled.

The run discipline is byte-for-byte the one-shot engines' own: the scc
mode drives :func:`repro.engine.scheduler._single_pass` /
``_component_seminaive`` and the global mode drives
:func:`repro.engine.seminaive.run_global_rounds`, so derived fact sets
and counters are identical to calling
:func:`~repro.engine.seminaive.seminaive_fixpoint` directly (pinned by
``tests/test_prepare.py``).  One deliberate difference: with a planner
spec, the one-shot scc path plans each component against the relation
statistics *after* lower components materialised, while a compiled
fixpoint plans every component up front against base statistics only
(the IDB sizes are unknowable before the first run).  Plans may differ;
answers never do.

``extra_facts`` is how prepared queries inject their per-request seed
facts (the magic/call seed carrying the query's bound constants) without
recompiling anything: seeds are plain ground atoms, and embedding them
as body-less rules — as :meth:`TransformedProgram.evaluation_program`
does — is equivalent to loading them into the working database first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..datalog.atoms import Atom
from ..datalog.intern import ConstantInterner
from ..datalog.rules import Program
from ..facts.database import Database
from ..obs import get_metrics
from .budget import Checkpoint, EvaluationBudget, ensure_checkpoint
from .columnar import DEFAULT_STORAGE, as_storage, resolve_storage
from .counters import EvaluationStats
from .kernel import DEFAULT_EXECUTOR, RuleKernel, compile_executors, resolve_executor
from .matching import CompiledRule, compile_rule
from .planner import resolve_planner
from .scheduler import (
    DEFAULT_SCHEDULER,
    Component,
    _component_seminaive,
    _observe_schedule,
    _single_pass,
    build_schedule,
    component_planner,
    resolve_scheduler,
)
from .seminaive import _variant_positions, run_global_rounds

__all__ = [
    "CompiledComponent",
    "CompiledFixpoint",
    "compile_fixpoint",
    "run_fixpoint",
]


@dataclass(frozen=True)
class CompiledComponent:
    """One schedule component with its rules compiled and lowered."""

    component: Component
    executors: tuple[tuple[CompiledRule, "RuleKernel | None"], ...]


@dataclass(frozen=True)
class CompiledFixpoint:
    """A program's evaluation plan, compiled once for repeated runs.

    Attributes:
        program: the source rules (facts, if any, are loaded per run).
        executor: ``"kernel"`` or ``"interpreted"`` (fixed at compile).
        scheduler: ``"scc"``, ``"parallel"``, or ``"global"`` (fixed at
            compile; ``"parallel"`` compiles exactly like ``"scc"`` —
            the same component schedule — and differs only at run time).
        storage: ``"tuples"`` or ``"columnar"`` (fixed at compile).
        interner: the constant interner shared by every run (columnar
            only).  Kernels bake interned constant ids at compile time,
            so all working databases of this fixpoint must encode
            through this one interner; it is append-only, so reuse
            across concurrent runs is safe.
        components: the compiled schedule (scc mode; empty otherwise).
        executors: the compiled rule list (global mode; empty otherwise).
        variants: per-executor delta-variant positions (global mode).
    """

    program: Program
    executor: str
    scheduler: str
    storage: str = DEFAULT_STORAGE
    interner: "ConstantInterner | None" = None
    components: tuple[CompiledComponent, ...] = ()
    executors: tuple[tuple[CompiledRule, "RuleKernel | None"], ...] = ()
    variants: tuple[tuple, ...] = ()

    @property
    def rule_count(self) -> int:
        return len(self.program.proper_rules)

    @property
    def kernel_count(self) -> int:
        pairs = (
            [pair for cc in self.components for pair in cc.executors]
            if self.scheduler != "global"
            else list(self.executors)
        )
        return sum(1 for _, kernel in pairs if kernel is not None)


def compile_fixpoint(
    program: Program,
    database: "Database | None" = None,
    planner=None,
    executor: str = DEFAULT_EXECUTOR,
    scheduler: str = DEFAULT_SCHEDULER,
    storage: str = DEFAULT_STORAGE,
) -> CompiledFixpoint:
    """Compile *program* for repeated semi-naive evaluation.

    Args:
        program: rules to compile; embedded facts are kept on the
            returned object and loaded afresh by every run.
        database: base facts used *only* for planner statistics (when a
            planner spec is given); never mutated, never retained.
        planner: optional join-planner spec (``"greedy"``).  Plans are
            cut against *database*'s base statistics with every IDB
            predicate unknown — see the module docstring for how this
            differs from the interleaved one-shot scc planning.
        executor: ``"kernel"`` (default) or ``"interpreted"``.
        scheduler: ``"scc"`` (default), ``"parallel"``, or ``"global"``.
            ``"parallel"`` compiles the same component schedule as
            ``"scc"``; the worker pool is a run-time concern.
        storage: ``"tuples"`` (default) or ``"columnar"``.  Columnar
            fixpoints compile against a fresh
            :class:`~repro.datalog.intern.ConstantInterner` that every
            run then shares (see :class:`CompiledFixpoint`).
    """
    resolve_executor(executor)
    mode = resolve_scheduler(scheduler)
    interner = (
        ConstantInterner() if resolve_storage(storage) == "columnar" else None
    )
    obs = get_metrics()
    # Planner statistics read the base facts as every run will see them
    # at round zero: database plus the program's embedded facts.
    stats_db = database.copy() if database is not None else Database()
    stats_db.add_atoms(program.facts)
    with obs.timer("compile_fixpoint"):
        if mode != "global":
            components = []
            for component in build_schedule(program).components:
                active = component_planner(planner, stats_db, component)
                compiled_rules = [
                    compile_rule(rule, active) for rule in component.rules
                ]
                components.append(
                    CompiledComponent(
                        component,
                        tuple(
                            compile_executors(compiled_rules, executor, interner)
                        ),
                    )
                )
            compiled = CompiledFixpoint(
                program=program,
                executor=executor,
                scheduler=mode,
                storage=storage,
                interner=interner,
                components=tuple(components),
            )
        else:
            active = resolve_planner(planner, stats_db, program)
            compiled_rules = [
                compile_rule(rule, active) for rule in program.proper_rules
            ]
            executors = tuple(
                compile_executors(compiled_rules, executor, interner)
            )
            derived = program.idb_predicates
            variants = tuple(
                (pair[0], pair[1], _variant_positions(pair[0], derived))
                for pair in executors
            )
            compiled = CompiledFixpoint(
                program=program,
                executor=executor,
                scheduler=mode,
                storage=storage,
                interner=interner,
                executors=executors,
                variants=variants,
            )
    if obs.enabled:
        obs.incr("prepare.fixpoints_compiled")
        # The canonical "compilation actually ran" counter the
        # cross-process shape registry drives to zero on its hit path
        # (snapshot rehydration re-lowers kernels but never comes here).
        obs.incr("prepare.compiles")
    return compiled


def run_fixpoint(
    compiled: CompiledFixpoint,
    database: "Database | None" = None,
    stats: "EvaluationStats | None" = None,
    budget: "EvaluationBudget | Checkpoint | None" = None,
    extra_facts: Iterable[Atom] = (),
    workers: "int | None" = None,
) -> tuple[Database, EvaluationStats]:
    """Evaluate *compiled* to fixpoint against *database*.

    Args:
        compiled: a :func:`compile_fixpoint` result; reusable across any
            number of concurrent runs (it is immutable — all run state
            lives in this call's working copy).
        database: base facts; copied, never mutated.
        stats: optional counter record to accumulate into.
        budget: optional budget or running checkpoint; exhaustion raises
            :class:`repro.errors.BudgetExceededError` carrying the sound
            partial working database, exactly like the one-shot engines.
        extra_facts: ground atoms loaded into the working copy before
            evaluation — the prepared-query seed channel.
        workers: worker-pool size for ``scheduler="parallel"`` fixpoints
            (``None`` = one per CPU core); ignored by the serial modes.
            A run-time knob only — any worker count reuses the same
            compiled plan and derives the same fact set.

    Returns:
        The completed working database and the statistics record.
    """
    stats = stats if stats is not None else EvaluationStats()
    obs = get_metrics()
    program = compiled.program
    # Every run must encode through the fixpoint's own interner — its
    # kernels carry interned constant ids (no-op for tuple storage).
    working = as_storage(database, compiled.storage, interner=compiled.interner)
    working.add_atoms(program.facts)
    working.add_atoms(extra_facts)
    arities = program.arities
    for predicate in program.idb_predicates:
        working.relation(predicate, arities[predicate])
    checkpoint = ensure_checkpoint(budget, stats)
    if checkpoint is not None:
        checkpoint.bind(working)

    if compiled.scheduler == "global":
        run_global_rounds(
            compiled.executors,
            compiled.variants,
            program.idb_predicates,
            arities,
            working,
            stats,
            checkpoint,
        )
        return working, stats

    if compiled.scheduler == "parallel":
        from .parallel import run_compiled_parallel

        run_compiled_parallel(compiled, working, stats, checkpoint, workers)
        return working, stats

    schedule_components = compiled.components
    _observe_schedule(
        obs,
        _ScheduleView(tuple(cc.component for cc in schedule_components)),
    )
    with obs.timer("seminaive"):
        for cc in schedule_components:
            if not cc.component.recursive:
                if checkpoint is not None:
                    checkpoint.check_round()
                stats.iterations += 1
                with obs.timer("round"):
                    _single_pass(cc.executors, working, stats, checkpoint)
            else:
                rounds = _component_seminaive(
                    cc.component, cc.executors, working, arities, stats,
                    checkpoint, obs,
                )
                if obs.enabled:
                    obs.observe("scheduler.component_rounds", rounds)
    if obs.enabled:
        obs.incr("seminaive.runs")
        obs.observe("seminaive.iterations", stats.iterations)
    return working, stats


@dataclass(frozen=True)
class _ScheduleView:
    """Just enough of a :class:`~repro.engine.scheduler.Schedule` for
    :func:`~repro.engine.scheduler._observe_schedule`."""

    components: tuple[Component, ...]

    @property
    def recursive_count(self) -> int:
        return sum(1 for component in self.components if component.recursive)
