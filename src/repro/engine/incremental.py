"""Incremental maintenance of the derived database under fact churn.

:class:`IncrementalEngine` keeps a program's fixpoint materialised and
patches it as base facts come and go.  Insertion continues the semi-naive
iteration from a seed delta (sound for any negation-free program by
monotonicity); all inserted rows of one :meth:`add_many` call seed a
*single* delta, so a batch costs one fixpoint continuation, not one per
fact.  Deletion has three modes, selected at construction:

* ``maintenance="recompute"`` (default) — discard the base rows and
  rebuild the fixpoint from the remaining base facts.  Always correct
  and always the slow path; the other two modes are required to be
  **bit-identical** to it (same decoded fact sets after every
  operation), which makes it the differential oracle the maintenance
  test suite pins against.
* ``maintenance="counting"`` — per-fact derivation counts; a delete
  decrements exactly the lost derivations and cascades only where a
  count reaches zero.  Exact for non-recursive programs only, so
  recursive programs are rejected at construction (use DRed instead).
* ``maintenance="dred"`` — delete-and-re-derive: over-delete the
  affected cone, then re-derive survivors from the boundary.  Sound for
  any negation-free program, recursion included.

The algorithms live in :mod:`repro.engine.maintain`; this module owns
the engine state (the working database, the compiled executors, the
count tables, the asserted-fact ledger, and the poison flag).

Every operation runs under the per-operation
:class:`~repro.engine.budget.EvaluationBudget`/``Checkpoint`` protocol.
Any exception escaping mid-mutation — a budget trip, a backend error, an
interrupt — leaves the materialisation inconsistent, so the engine
records it: subsequent calls raise :class:`ProgramError` until
:meth:`rebuild` restores a consistent state.

Asserted IDB facts (facts of derived predicates present in the initial
database or inserted through :meth:`add`) carry *external* support: they
survive any deletion cascade, and every mode — including the recompute
oracle — re-seeds them on rebuild.

Restricted to negation-free programs: an insertion can only *grow* a
positive program's model, which is what makes the delta continuation
sound, and the deletion algorithms assume the same monotone setting.
Stratified programs with negation are rejected at construction.
"""

from __future__ import annotations

from typing import Iterable

from ..datalog.atoms import Atom
from ..datalog.parser import parse_query
from ..datalog.rules import Program
from ..datalog.unify import match_atom
from ..errors import BudgetExceededError, ProgramError
from ..facts.database import Database
from ..facts.relation import Relation
from ..obs import get_metrics
from .budget import EvaluationBudget, ensure_checkpoint
from .columnar import DEFAULT_STORAGE, as_storage
from .counters import EvaluationStats
from .kernel import DEFAULT_EXECUTOR, RuleKernel, compile_executors, head_rows
from .maintain import (
    DEFAULT_MAINTENANCE,
    delete_counting,
    delete_dred,
    propagate,
    resolve_maintenance,
)
from .matching import CompiledRule, compile_rule
from .planner import JoinPlanner
from .scheduler import build_schedule
from .seminaive import seminaive_fixpoint

__all__ = ["IncrementalEngine"]

Fact = tuple[str, tuple]

_UNSET = object()

_POISONED_MESSAGE = (
    "IncrementalEngine is poisoned: an interrupted mutation left the "
    "materialisation inconsistent; call rebuild() before further use"
)


class IncrementalEngine:
    """A continuously materialised fixpoint over a positive program.

    Args:
        program: a negation-free program; embedded facts are loaded.
        database: extensional facts; copied, never mutated.
        planner: optional join-planner spec (e.g. ``"greedy"``).  The
            initial materialisation plans as usual; the delta-continuation
            rules are then compiled against the *materialised* database,
            so IDB statistics are real sizes rather than unknowns.
        budget: optional :class:`repro.engine.budget.EvaluationBudget`
            applied *per operation*: the initial materialisation and each
            subsequent mutation gets a fresh checkpoint (a long-lived
            engine should not die because its lifetime clock ran out).
            On a trip mid-mutation the engine's materialisation is
            inconsistent — the error carries the partial database, the
            engine flags itself :attr:`poisoned` (as it does for *any*
            exception interrupting a mutation), and every call except
            :meth:`rebuild` raises until the state is rebuilt.
        executor: ``"kernel"`` (default) or ``"interpreted"``; applies to
            the initial materialisation, every delta continuation, and
            every deletion pass.
        storage: ``"tuples"`` (default) or ``"columnar"`` — the backend
            of the materialised database (:mod:`repro.engine.columnar`).
            Mutations take and return raw values either way (encoding
            happens at the atom boundary).
        maintenance: deletion strategy — ``"recompute"`` (default, the
            differential oracle), ``"counting"`` (non-recursive programs
            only), or ``"dred"``.  See :mod:`repro.engine.maintain`.
    """

    def __init__(
        self,
        program: Program,
        database: Database | None = None,
        planner: "JoinPlanner | str | None" = None,
        budget: "EvaluationBudget | None" = None,
        executor: str = DEFAULT_EXECUTOR,
        storage: str = DEFAULT_STORAGE,
        maintenance: str = DEFAULT_MAINTENANCE,
    ):
        for rule in program.proper_rules:
            for literal in rule.body:
                if literal.negative:
                    raise ProgramError(
                        "IncrementalEngine requires a negation-free "
                        f"program; offending rule: {rule}"
                    )
        self._maintenance = resolve_maintenance(maintenance)
        self._program = program.without_facts()
        if maintenance == "counting":
            recursive = [
                predicate
                for component in build_schedule(self._program).components
                if component.recursive
                for predicate in sorted(component.predicates)
            ]
            if recursive:
                raise ProgramError(
                    "counting maintenance is exact for non-recursive "
                    f"programs only (recursive: {', '.join(recursive)}); "
                    "use maintenance='dred'"
                )
        self._planner_spec = planner
        self._budget = budget
        self._executor = executor
        self._storage = storage
        self._poisoned = False
        self.stats = EvaluationStats()
        self._counts: "dict[str, dict[tuple, int]] | None" = (
            {} if maintenance == "counting" else None
        )
        initial = as_storage(database, storage)
        initial.add_atoms(program.facts)
        # Asserted IDB facts carry external support: collected in raw
        # value space here, re-encoded against whatever working database
        # each (re)build produces.
        idb = self._program.idb_predicates
        self._asserted_raw: set[Fact] = {
            (relation.name, initial.decode_row(row))
            for relation in initial.relations()
            if relation.name in idb
            for row in relation
        }
        if maintenance == "counting":
            self._counting_build(initial, self.stats)
        else:
            self._working, _ = seminaive_fixpoint(
                self._program,
                initial,
                self.stats,
                planner=planner,
                budget=budget,
                executor=executor,
                storage=storage,
            )
        self._asserted: set[Fact] = {
            (predicate, self._working.encode_row(raw))
            for predicate, raw in self._asserted_raw
        }
        self._executors: list[tuple[CompiledRule, RuleKernel | None]] = (
            self._compile_rules()
        )

    def _compile_rules(self) -> list[tuple[CompiledRule, RuleKernel | None]]:
        spec = self._planner_spec
        if isinstance(spec, JoinPlanner):
            active: JoinPlanner | None = spec
        elif spec is None or spec is False:
            active = None
        else:
            # No ``unknown`` set: after materialisation every IDB relation
            # has its real cardinality, so the statistics are trustworthy.
            active = JoinPlanner(self._working)
        compiled = [
            compile_rule(rule, active) for rule in self._program.proper_rules
        ]
        return compile_executors(
            compiled, self._executor, getattr(self._working, "interner", None)
        )

    def _counting_build(
        self, initial: Database, op_stats: EvaluationStats
    ) -> None:
        """Materialise from scratch while recording derivation counts.

        The build *is* an insertion: every base fact enters as one big
        seed delta over an empty working database, and the ordinary
        semi-naive continuation (counting every enumerated derivation)
        runs it to fixpoint — so the counts are exact by the same
        exactly-once argument that makes :meth:`add_many` sound.
        """
        working = initial.restrict(())
        counts: dict[str, dict[tuple, int]] = {}
        arities = dict(self._program.arities)
        checkpoint = ensure_checkpoint(self._budget, op_stats)
        if checkpoint is not None:
            checkpoint.bind(working)
        # Seeds stamped at round 1 over empty relations, so round 1's
        # pre-delta views are empty, exactly like a first insertion.
        seeds: dict[str, Relation] = {}
        for relation in initial.relations():
            if not len(relation):
                continue
            arities.setdefault(relation.name, relation.arity)
            target = working.relation(relation.name, relation.arity)
            target.mark_round(1)
            bucket = working.spawn(relation.name, relation.arity)
            table = counts.setdefault(relation.name, {})
            for row in relation:
                target.add(row)
                bucket.add(row)
                table[row] = 1  # external support
            seeds[relation.name] = bucket
        # Rules without a positive relation literal (constant heads
        # guarded by built-ins only) never join a delta; fire them once.
        executors = self._compile_for(working)
        for compiled, kernel in executors:
            if any(
                literal.positive and not literal.builtin
                for literal in compiled.body
            ):
                continue

            def view(pos: int, predicate: str) -> "Relation | None":
                try:
                    return working.relation(predicate)
                except KeyError:
                    return None

            for head_row in head_rows(
                compiled, kernel, view, op_stats, checkpoint, batch=True
            ):
                op_stats.inferences += 1
                head_pred = compiled.head_predicate
                table = counts.setdefault(head_pred, {})
                table[head_row] = table.get(head_row, 0) + 1
                target = working.relation(head_pred, arities.get(head_pred))
                if head_row not in target:
                    if target.round < 1:
                        target.mark_round(1)
                    target.add(head_row)
                    op_stats.facts_derived += 1
                    bucket = seeds.setdefault(
                        head_pred, working.spawn(head_pred, len(head_row))
                    )
                    bucket.add(head_row)
        self._working = working
        self._counts = counts
        propagate(
            working, executors, arities,
            {p: bucket for p, bucket in seeds.items() if bucket},
            1, op_stats, checkpoint, counts=counts,
        )

    def _compile_for(
        self, working: Database
    ) -> list[tuple[CompiledRule, RuleKernel | None]]:
        """Executors planned against an arbitrary (possibly still
        unmaterialised) database — the counting build's bootstrap."""
        spec = self._planner_spec
        if isinstance(spec, JoinPlanner):
            active: JoinPlanner | None = spec
        elif spec is None or spec is False:
            active = None
        else:
            active = JoinPlanner(working)
        compiled = [
            compile_rule(rule, active) for rule in self._program.proper_rules
        ]
        return compile_executors(
            compiled, self._executor, getattr(working, "interner", None)
        )

    def _ensure_usable(self) -> None:
        if self._poisoned:
            raise ProgramError(_POISONED_MESSAGE)

    # --- read access ------------------------------------------------------------
    @property
    def database(self) -> Database:
        """The materialised database (EDB plus all derived facts)."""
        return self._working

    @property
    def maintenance(self) -> str:
        """The deletion strategy this engine was built with."""
        return self._maintenance

    @property
    def poisoned(self) -> bool:
        """True after an interrupted mutation (budget trip or any other
        mid-flight exception) left the materialisation inconsistent;
        cleared by :meth:`rebuild`."""
        return self._poisoned

    def holds(self, atom: Atom | str) -> bool:
        self._ensure_usable()
        if isinstance(atom, str):
            atom = parse_query(atom)
        return self._working.has_fact(atom)

    def query(self, goal: Atom | str) -> list[Atom]:
        """Matching facts straight out of the materialisation (no work)."""
        self._ensure_usable()
        if isinstance(goal, str):
            goal = parse_query(goal)
        return sorted(
            (
                atom
                for atom in self._working.atoms(goal.predicate)
                if match_atom(goal, atom) is not None
            )
            if goal.predicate in self._working
            else [],
            key=str,
        )

    def support(self, atom: Atom | str) -> int | None:
        """Counting mode: a fact's maintained support (external +
        derivation count); ``None`` in other modes or when absent."""
        if self._counts is None:
            return None
        if isinstance(atom, str):
            atom = parse_query(atom)
        table = self._counts.get(atom.predicate)
        if not table:
            return None
        return table.get(self._working.encode_row(atom.ground_key()))

    # --- mutation ---------------------------------------------------------------
    def add(self, atom: Atom | str) -> frozenset[Fact]:
        """Insert one fact; returns every fact that became newly derivable
        (including the inserted one), empty when it was already present."""
        return self.add_many([atom])

    def add_many(self, atoms: Iterable[Atom | str]) -> frozenset[Fact]:
        """Insert several facts as *one* batched seed delta.

        All genuinely new rows enter the working database stamped at the
        same round and seed a single semi-naive continuation, so a batch
        of *n* facts costs one fixpoint, not *n* — with identical
        resulting fact sets, since the continuation is insensitive to how
        the seed delta is sliced.  Returns the union of the new
        derivations (inserted facts included).
        """
        self._ensure_usable()
        parsed = [
            parse_query(atom) if isinstance(atom, str) else atom
            for atom in atoms
        ]
        if not parsed:
            return frozenset()
        # Stamp this operation past everything already materialised, so
        # rows_before(stamp) sees exactly the pre-add state.  Inserted
        # rows are stamped, excluding them from round 1's old views.
        stamp = 1 + max(
            (relation.round for relation in self._working.relations()),
            default=0,
        )
        idb = self._program.idb_predicates
        arities = dict(self._program.arities)
        new_facts: set[Fact] = set()
        seeds: dict[str, Relation] = {}
        marked: set[str] = set()
        for atom in parsed:
            arities.setdefault(atom.predicate, atom.arity)
            relation = self._working.relation(atom.predicate, atom.arity)
            if atom.predicate not in marked:
                relation.mark_round(stamp)
                marked.add(atom.predicate)
            raw_row = atom.ground_key()
            row = self._working.encode_row(raw_row)
            if (
                atom.predicate in idb
                and (atom.predicate, row) not in self._asserted
            ):
                # External support: survives any deletion cascade and is
                # re-seeded by every rebuild.  Recorded even when the row
                # is already derivable — support is a property of the
                # assertion, not of who got there first — so counting
                # mode bumps the count before the presence check below
                # can skip the row.  Re-assertions are no-ops (the
                # ledger is a set), so the bump happens exactly once.
                self._asserted.add((atom.predicate, row))
                self._asserted_raw.add((atom.predicate, raw_row))
                if self._counts is not None:
                    table = self._counts.setdefault(atom.predicate, {})
                    table[row] = table.get(row, 0) + 1
            if not self._working.add(atom.predicate, row):
                continue
            new_facts.add((atom.predicate, raw_row))
            if self._counts is not None and atom.predicate not in idb:
                self._counts.setdefault(atom.predicate, {})[row] = 1
            bucket = seeds.setdefault(
                atom.predicate,
                self._working.spawn(atom.predicate, atom.arity),
            )
            bucket.add(row)
        if not seeds:
            return frozenset()
        # Per-operation governance: the checkpoint monitors a fresh
        # counter record (merged into the lifetime stats afterwards, trip
        # or not), so each call gets the budget's full allowance rather
        # than dying on work a previous operation already spent.
        op_stats = EvaluationStats()
        checkpoint = ensure_checkpoint(self._budget, op_stats)
        if checkpoint is not None:
            checkpoint.bind(self._working)
        try:
            propagate(
                self._working, self._executors, arities, seeds, stamp,
                op_stats, checkpoint, counts=self._counts,
                new_facts=new_facts,
            )
        except BaseException:
            # Not just budget trips: any exception escaping mid-propagate
            # (backend error, interrupt) leaves the materialisation
            # inconsistent.
            self._poisoned = True
            raise
        finally:
            self.stats.merge(op_stats)
        obs = get_metrics()
        if obs.enabled:
            obs.incr("maintain.inserts", len(parsed))
            obs.incr("maintain.insert_batches")
        return frozenset(new_facts)

    def remove(self, atom: Atom | str) -> bool:
        """Delete one base fact; returns True iff it was stored.

        Deleting a derived (IDB) fact is refused.  The deletion strategy
        is the engine's ``maintenance`` mode: counting and DRed patch the
        materialisation incrementally; recompute rebuilds the fixpoint
        from the remaining base facts and is the bit-identity oracle the
        fast paths are tested against.
        """
        return bool(self.remove_many([atom]))

    def remove_many(self, atoms: Iterable[Atom | str]) -> frozenset[Fact]:
        """Delete several base facts as one batched operation.

        Returns the removed base facts (raw values); facts not currently
        stored are ignored.  Derived consequences disappear according to
        the maintenance mode, bit-identically across all three.
        """
        self._ensure_usable()
        parsed = [
            parse_query(atom) if isinstance(atom, str) else atom
            for atom in atoms
        ]
        idb = self._program.idb_predicates
        for atom in parsed:
            if atom.predicate in idb:
                raise ProgramError(
                    f"cannot remove derived fact {atom}; remove base facts "
                    "only"
                )
        removed: set[Fact] = set()
        seeds: dict[str, set] = {}
        for atom in parsed:
            if atom.predicate not in self._working:
                continue
            raw_row = atom.ground_key()
            row = self._working.encode_row(raw_row)
            if row not in self._working.relation(atom.predicate):
                continue
            if (atom.predicate, raw_row) in removed:
                continue
            removed.add((atom.predicate, raw_row))
            seeds.setdefault(atom.predicate, set()).add(row)
        if not seeds:
            return frozenset()
        obs = get_metrics()
        if obs.enabled:
            obs.incr("maintain.removes", sum(len(r) for r in seeds.values()))
        if self._maintenance == "recompute":
            self._remove_recompute(seeds)
            return frozenset(removed)
        op_stats = EvaluationStats()
        checkpoint = ensure_checkpoint(self._budget, op_stats)
        if checkpoint is not None:
            checkpoint.bind(self._working)
        arities = dict(self._program.arities)
        try:
            if self._maintenance == "counting":
                assert self._counts is not None
                delete_counting(
                    self._working, self._executors, self._counts, seeds,
                    op_stats, checkpoint,
                )
            else:
                delete_dred(
                    self._working, self._executors, arities, seeds,
                    self._asserted, op_stats, checkpoint,
                )
        except BaseException:
            self._poisoned = True
            raise
        finally:
            self.stats.merge(op_stats)
        return frozenset(removed)

    def _remove_recompute(self, seeds: dict[str, set]) -> None:
        """The oracle path: discard the rows, rebuild the fixpoint."""
        for predicate, rows in seeds.items():
            relation = self._working.relation(predicate)
            for row in rows:
                relation.discard(row)
        base = self._base_database()
        op_stats = EvaluationStats()
        try:
            self._working, _ = seminaive_fixpoint(
                self._program,
                base,
                op_stats,
                planner=self._planner_spec,
                budget=self._budget,
                executor=self._executor,
                storage=self._storage,
            )
        except BaseException:
            self._poisoned = True
            raise
        finally:
            self.stats.merge(op_stats)
        self._asserted = {
            (predicate, self._working.encode_row(raw))
            for predicate, raw in self._asserted_raw
        }
        self._executors = self._compile_rules()

    def _base_database(self) -> Database:
        """Current base facts: EDB relations plus asserted IDB facts."""
        base = self._working.restrict(
            self._working.predicates() - self._program.idb_predicates
        )
        for predicate, raw in self._asserted_raw:
            base.relation(predicate, len(raw)).add(base.encode_row(raw))
        return base

    def rebuild(self, budget: "EvaluationBudget | None | object" = _UNSET) -> None:
        """Re-materialise from the current base facts; clears poisoning.

        Base facts are whatever the EDB relations hold right now plus
        the asserted IDB ledger — so mutations applied before a budget
        trip stay applied (an interrupted ``add`` completes, an
        interrupted ``remove`` finishes removing).

        Args:
            budget: when given, replaces the engine's per-operation
                budget before rebuilding — the usual move after a trip,
                since the allowance that killed the mutation would kill
                the rebuild too.  ``None`` removes the budget.
        """
        if budget is not _UNSET:
            self._budget = budget  # type: ignore[assignment]
        base = self._base_database()
        op_stats = EvaluationStats()
        try:
            if self._maintenance == "counting":
                self._counting_build(base, op_stats)
            else:
                self._working, _ = seminaive_fixpoint(
                    self._program,
                    base,
                    op_stats,
                    planner=self._planner_spec,
                    budget=self._budget,
                    executor=self._executor,
                    storage=self._storage,
                )
        except BaseException:
            # A failed rebuild may have replaced part of the state; stay
            # (or become) poisoned rather than reporting a usable engine.
            self._poisoned = True
            raise
        finally:
            self.stats.merge(op_stats)
        self._asserted = {
            (predicate, self._working.encode_row(raw))
            for predicate, raw in self._asserted_raw
        }
        self._executors = self._compile_rules()
        self._poisoned = False
        obs = get_metrics()
        if obs.enabled:
            obs.incr("maintain.rebuilds")
