"""Incremental maintenance of the derived database under fact insertion.

:class:`IncrementalEngine` keeps a program's fixpoint materialised and,
when a new extensional fact arrives, continues the semi-naive iteration
from a singleton delta instead of recomputing from scratch — the textbook
insertion half of incremental view maintenance (the deletion half, DRed,
needs derivation counting and is out of scope; ``remove`` falls back to
recomputation and says so in its docstring).

Restricted to negation-free programs: an insertion can only *grow* a
positive program's model (monotonicity), which is what makes the delta
continuation sound.  Stratified programs with negation are rejected at
construction.
"""

from __future__ import annotations

from typing import Iterable

from ..datalog.atoms import Atom
from ..datalog.parser import parse_query
from ..datalog.rules import Program
from ..datalog.unify import match_atom
from ..errors import ProgramError
from ..facts.database import Database
from ..facts.relation import Relation, StampedView
from .budget import EvaluationBudget, ensure_checkpoint
from .columnar import DEFAULT_STORAGE, as_storage
from .counters import EvaluationStats
from .kernel import DEFAULT_EXECUTOR, RuleKernel, compile_executors, head_rows
from .matching import CompiledRule, compile_rule
from .planner import JoinPlanner
from .seminaive import seminaive_fixpoint

__all__ = ["IncrementalEngine"]

Fact = tuple[str, tuple]


class IncrementalEngine:
    """A continuously materialised fixpoint over a positive program.

    Args:
        program: a negation-free program; embedded facts are loaded.
        database: extensional facts; copied, never mutated.
        planner: optional join-planner spec (e.g. ``"greedy"``).  The
            initial materialisation plans as usual; the delta-continuation
            rules are then compiled against the *materialised* database,
            so IDB statistics are real sizes rather than unknowns.
        budget: optional :class:`repro.engine.budget.EvaluationBudget`
            applied *per operation*: the initial materialisation and each
            subsequent :meth:`add` / :meth:`remove` gets a fresh
            checkpoint (a long-lived engine should not die because its
            lifetime clock ran out).  On a trip mid-``add`` the engine's
            materialisation may be incomplete — the error carries the
            partial database; callers who continue using the engine
            should treat it as a fresh-build candidate.
        executor: ``"kernel"`` (default) or ``"interpreted"``; applies to
            the initial materialisation, every delta continuation, and
            rebuilds after :meth:`remove`.
        storage: ``"tuples"`` (default) or ``"columnar"`` — the backend
            of the materialised database (:mod:`repro.engine.columnar`).
            :meth:`add` / :meth:`remove` take and return raw values
            either way (encoding happens at the atom boundary).
    """

    def __init__(
        self,
        program: Program,
        database: Database | None = None,
        planner: "JoinPlanner | str | None" = None,
        budget: "EvaluationBudget | None" = None,
        executor: str = DEFAULT_EXECUTOR,
        storage: str = DEFAULT_STORAGE,
    ):
        for rule in program.proper_rules:
            for literal in rule.body:
                if literal.negative:
                    raise ProgramError(
                        "IncrementalEngine requires a negation-free "
                        f"program; offending rule: {rule}"
                    )
        self._program = program.without_facts()
        self._planner_spec = planner
        self._budget = budget
        self._executor = executor
        self._storage = storage
        self.stats = EvaluationStats()
        initial = as_storage(database, storage)
        initial.add_atoms(program.facts)
        self._working, _ = seminaive_fixpoint(
            self._program,
            initial,
            self.stats,
            planner=planner,
            budget=budget,
            executor=executor,
            storage=storage,
        )
        self._executors: list[tuple[CompiledRule, RuleKernel | None]] = (
            self._compile_rules()
        )

    def _compile_rules(self) -> list[tuple[CompiledRule, RuleKernel | None]]:
        spec = self._planner_spec
        if isinstance(spec, JoinPlanner):
            active: JoinPlanner | None = spec
        elif spec is None or spec is False:
            active = None
        else:
            # No ``unknown`` set: after materialisation every IDB relation
            # has its real cardinality, so the statistics are trustworthy.
            active = JoinPlanner(self._working)
        compiled = [
            compile_rule(rule, active) for rule in self._program.proper_rules
        ]
        return compile_executors(
            compiled, self._executor, getattr(self._working, "interner", None)
        )

    # --- read access ------------------------------------------------------------
    @property
    def database(self) -> Database:
        """The materialised database (EDB plus all derived facts)."""
        return self._working

    def holds(self, atom: Atom | str) -> bool:
        if isinstance(atom, str):
            atom = parse_query(atom)
        return self._working.has_fact(atom)

    def query(self, goal: Atom | str) -> list[Atom]:
        """Matching facts straight out of the materialisation (no work)."""
        if isinstance(goal, str):
            goal = parse_query(goal)
        return sorted(
            (
                atom
                for atom in self._working.atoms(goal.predicate)
                if match_atom(goal, atom) is not None
            )
            if goal.predicate in self._working
            else [],
            key=str,
        )

    # --- mutation ---------------------------------------------------------------
    def add(self, atom: Atom | str) -> frozenset[Fact]:
        """Insert one fact; returns every fact that became newly derivable
        (including the inserted one), empty when it was already present."""
        if isinstance(atom, str):
            atom = parse_query(atom)
        raw_row = atom.ground_key()
        row = self._working.encode_row(raw_row)
        # Stamp this operation past everything already materialised (the
        # initial seminaive run and earlier add()s left their own round
        # marks behind), so rows_before(stamp) sees exactly the pre-add
        # state.  The inserted row itself is stamped, excluding it from
        # round 1's old views.
        stamp = 1 + max(
            (relation.round for relation in self._working.relations()),
            default=0,
        )
        self._working.relation(atom.predicate, atom.arity).mark_round(stamp)
        if not self._working.add(atom.predicate, row):
            return frozenset()
        # Per-operation governance: the checkpoint monitors a fresh counter
        # record (merged into the lifetime stats afterwards, trip or not),
        # so each add() gets the budget's full allowance rather than dying
        # on work a previous operation already spent.
        op_stats = EvaluationStats()
        checkpoint = ensure_checkpoint(self._budget, op_stats)
        if checkpoint is not None:
            checkpoint.bind(self._working)
        # Reported facts are raw values regardless of backend; the delta
        # relations are spawned from the working database so they match
        # its storage and hold rows in its native (encoded) space.
        new_facts: set[Fact] = {(atom.predicate, raw_row)}
        arities = dict(self._program.arities)
        arities.setdefault(atom.predicate, atom.arity)

        seed = self._working.spawn(atom.predicate, atom.arity)
        seed.add(row)
        delta: dict[str, Relation] = {atom.predicate: seed}
        try:
            while delta:
                if checkpoint is not None:
                    checkpoint.check_round()
                op_stats.iterations += 1
                # old = working minus current delta, per delta predicate: a
                # zero-copy stamped view (the current delta is exactly the
                # rows merged at the current stamp).
                old: dict[str, StampedView] = {
                    predicate: self._working.relation(predicate).rows_before(stamp)
                    for predicate in delta
                }
                new_delta: dict[str, Relation] = {}
                for compiled, kernel in self._executors:
                    positions = [
                        index
                        for index, literal in enumerate(compiled.body)
                        if literal.positive and literal.predicate in delta
                    ]
                    for position in positions:
                        delta_relation = delta[compiled.body[position].predicate]

                        def view(pos: int, predicate: str) -> Relation | None:
                            if pos == position:
                                return delta_relation
                            if pos > position and predicate in old:
                                return old[predicate]
                            try:
                                return self._working.relation(predicate)
                            except KeyError:
                                return None

                        # batch=True is sound: heads land in new_delta
                        # buckets, so the working set is unchanged while
                        # a batch enumerates.
                        for head_row in head_rows(
                            compiled, kernel, view, op_stats, checkpoint,
                            batch=True,
                        ):
                            op_stats.inferences += 1
                            head_pred = compiled.head_predicate
                            relation = self._working.relation(
                                head_pred, arities.get(head_pred)
                            )
                            if head_row in relation:
                                continue
                            bucket = new_delta.setdefault(
                                head_pred,
                                self._working.spawn(head_pred, len(head_row)),
                            )
                            bucket.add(head_row)
                stamp += 1
                for predicate, bucket in new_delta.items():
                    target = self._working.relation(predicate, arities.get(predicate))
                    target.mark_round(stamp)
                    for new_row in bucket:
                        if self._working.add(predicate, new_row):
                            op_stats.facts_derived += 1
                            new_facts.add(
                                (predicate, self._working.decode_row(new_row))
                            )
                delta = {p: r for p, r in new_delta.items() if r}
        finally:
            self.stats.merge(op_stats)
        return frozenset(new_facts)

    def add_many(self, atoms: Iterable[Atom | str]) -> frozenset[Fact]:
        """Insert several facts; returns the union of the new derivations."""
        new_facts: set[Fact] = set()
        for atom in atoms:
            new_facts |= self.add(atom)
        return frozenset(new_facts)

    def remove(self, atom: Atom | str) -> bool:
        """Delete a base fact and *recompute* the fixpoint.

        Deletion of derived facts needs over-deletion/re-derivation (DRed)
        or counting to be incremental; this implementation recomputes,
        trading speed for simplicity, and returns True iff the fact was a
        stored base fact.  Deleting a derived fact is refused.
        """
        if isinstance(atom, str):
            atom = parse_query(atom)
        if atom.predicate in self._program.idb_predicates:
            raise ProgramError(
                f"cannot remove derived fact {atom}; remove base facts only"
            )
        if atom.predicate not in self._working:
            return False
        relation = self._working.relation(atom.predicate)
        if not relation.discard(self._working.encode_row(atom.ground_key())):
            return False
        # Rebuild from the remaining base facts (fresh per-operation
        # counters, same reasoning as in add()).
        base = self._working.restrict(
            self._working.predicates() - self._program.idb_predicates
        )
        op_stats = EvaluationStats()
        try:
            self._working, _ = seminaive_fixpoint(
                self._program,
                base,
                op_stats,
                planner=self._planner_spec,
                budget=self._budget,
                executor=self._executor,
                storage=self._storage,
            )
        finally:
            self.stats.merge(op_stats)
        self._executors = self._compile_rules()
        return True
