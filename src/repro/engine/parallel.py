"""Parallel bottom-up evaluation: component-parallel scheduling and
hash-partitioned semi-naive fixpoints.

The condensation (:func:`repro.engine.scheduler.build_schedule`) already
exposes an Alexander/magic-transformed program as a DAG of components;
the serial scc scheduler walks that DAG one component at a time.  This
module adds ``scheduler="parallel"``, which exploits the DAG twice over:

* **Component-parallel scheduling** — a coordinator thread submits every
  component whose dependencies are all closed to one shared
  :class:`~concurrent.futures.ThreadPoolExecutor`; independent branches
  of the condensation evaluate concurrently.  Each relation is written
  by exactly *one* component, every IDB relation is created before the
  parallel phase starts, and workers only read relations of closed
  components (plus the frozen EDB) — so workers never contend on writes,
  and the lazy index/statistics builds concurrent readers may trigger
  are benign build-then-assign races.
* **Partition-parallel fixpoints** — inside one large recursive SCC, a
  delta variant whose *planned* body puts the delta literal outermost
  partitions cleanly: delta rows are hash-sharded on the planner-chosen
  join key (a stable CRC32, not the salted builtin ``hash``), each shard
  enumerates its slice of the round on a pool worker, and the
  coordinator merges candidate rows in shard order.  Because the delta
  literal drives the outer loop, the shards partition the round's
  enumeration space exactly: ``inferences``, ``attempts``, and the
  derived fact sets are bit-identical to the serial round.  Variants
  with the delta literal deeper in the body run serially (sharding them
  would duplicate the outer scans and the attempt counts).

**Determinism contract** (pinned by
``tests/test_parallel_differential.py`` against the serial ``scc``
oracle): derived fact sets, ``inferences``, ``attempts``,
``facts_derived``, and ``iterations`` are bit-identical to ``scc`` at
every worker count.  Component-parallel runs additionally preserve
per-relation insertion order (one writer per relation, identical round
discipline); a hash-partitioned round inserts the same fact *set* in
shard order rather than serial enumeration order, which is deterministic
run-to-run but may differ from serial.  With ``workers=1`` everything —
order included — is byte-identical to ``scc``.

**Budgets** are honoured through :meth:`Checkpoint.worker_view`: each
worker polls a view sharing the parent's clock and trip gate, so the
whole evaluation trips at most once; the coordinator stops submitting,
drains in-flight workers (they notice the gate within one attempt),
merges their counters, and re-raises the stored error — the partial
database keeps the scc prefix property (closed components complete, the
tripped component partially derived, unstarted components untouched).

**Metrics** route through per-worker registries
(:func:`repro.obs.thread_metrics`) merged into the parent in schedule
order, so ``parallel.*`` and the usual ``seminaive.*`` counters stay
deterministic; with metrics disabled no per-worker registry is built.
"""

from __future__ import annotations

import os
import zlib
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from contextlib import nullcontext

from ..analysis.dependency import DependencyGraph
from ..datalog.rules import Program
from ..errors import BudgetExceededError
from ..facts.database import Database
from ..facts.relation import Relation, StampedView
from ..obs import Metrics, get_metrics, thread_metrics
from .budget import Checkpoint, EvaluationBudget, ensure_checkpoint
from .columnar import DEFAULT_STORAGE, as_storage
from .counters import EvaluationStats
from .kernel import DEFAULT_EXECUTOR, compile_executors, head_rows
from .matching import CompiledRule, compile_rule
from .scheduler import (
    Component,
    Schedule,
    _component_seminaive,
    _observe_schedule,
    _single_pass,
    build_schedule,
    component_planner,
)

__all__ = [
    "PARTITION_MIN_ROWS",
    "resolve_workers",
    "component_dependencies",
    "parallel_seminaive_fixpoint",
    "parallel_naive_fixpoint",
    "run_compiled_parallel",
]

# A delta smaller than this is not worth sharding: the per-shard spawn
# and merge overhead exceeds the enumeration it would offload.  Kept
# deliberately low so correctness suites exercise the partitioned path
# on small programs; the component-parallel layer is the first-order win
# on production-sized condensations either way.
PARTITION_MIN_ROWS = 4


def resolve_workers(workers: "int | None") -> int:
    """Validate a ``workers=`` argument (``None`` = one per CPU core)."""
    if workers is None:
        return max(1, os.cpu_count() or 1)
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ValueError(f"workers must be a positive integer, got {workers!r}")
    if workers < 1:
        raise ValueError(f"workers must be a positive integer, got {workers!r}")
    return workers


def component_dependencies(
    program: Program, components: "tuple[Component, ...]"
) -> list[set[int]]:
    """Component-level dependency sets: ``deps[i]`` holds the indices of
    the components that must close before component *i* may start.

    An index ``j`` is in ``deps[i]`` iff some rule of component *i* reads
    a predicate derived by component *j* — exactly the edges of the
    condensation, recovered from the predicate-level
    :attr:`~repro.analysis.dependency.DependencyGraph.predecessors` map.
    EDB predicates have no owning component and impose no ordering.
    """
    owner: dict[str, int] = {}
    for index, component in enumerate(components):
        for predicate in component.derived:
            owner[predicate] = index
    predecessors = DependencyGraph(program).predecessors
    deps: list[set[int]] = []
    for index, component in enumerate(components):
        wanted: set[int] = set()
        for predicate in component.derived:
            for body_predicate in predecessors.get(predicate, frozenset()):
                owning = owner.get(body_predicate)
                if owning is not None and owning != index:
                    wanted.add(owning)
        deps.append(wanted)
    return deps


# --- partition-parallel helpers ----------------------------------------------


def _shard_column(compiled: CompiledRule) -> "int | None":
    """The planner-chosen join-key column of the outermost body literal:
    the first column binding a variable a later literal joins on, falling
    back to the first bound column (``None`` = hash the whole row)."""
    first = compiled.body[0]
    later_vars = set()
    for literal in compiled.body[1:]:
        later_vars.update(var for _, var in literal.binders)
        later_vars.update(var for _, var in literal.filters)
    for column, var in first.binders:
        if var in later_vars:
            return column
    return first.binders[0][0] if first.binders else None


def _shard_of(row: tuple, column: "int | None", shards: int) -> int:
    """A stable shard index for *row* (CRC32 of the join key's repr —
    the builtin ``hash`` is salted per process and would make shard
    assignment, and hence merge order, irreproducible)."""
    key = row[column] if column is not None else row
    return zlib.crc32(repr(key).encode("utf-8", "backslashreplace")) % shards


def _map_on_pool(pool: "ThreadPoolExecutor | None", tasks: list) -> list:
    """Run *tasks* (argless callables), results in task order.

    The first task runs inline on the caller; the rest are submitted to
    *pool* and, if the pool never gets to start one (every slot occupied
    by ancestors of this very call), it is cancelled and run inline too.
    Nested fan-out — shard tasks submitted from a component worker that
    itself occupies a pool slot — therefore cannot deadlock, and a
    one-worker pool degrades to plain serial execution.
    """
    if pool is None or len(tasks) <= 1:
        return [task() for task in tasks]
    futures = [pool.submit(task) for task in tasks[1:]]
    results = [tasks[0]()]
    for future, task in zip(futures, tasks[1:]):
        if future.cancel():
            results.append(task())
        else:
            results.append(future.result())
    return results


def _partitioned_seminaive(
    component: Component,
    executors,
    working: Database,
    arities,
    stats: EvaluationStats,
    checkpoint: "Checkpoint | None",
    obs,
    pool: "ThreadPoolExecutor | None",
    workers: int,
) -> int:
    """Local semi-naive fixpoint of one recursive component with
    hash-partitioned delta rounds.

    Identical round discipline to
    :func:`repro.engine.scheduler._component_seminaive`; the only change
    is *who enumerates* a shardable delta variant.  Returns local rounds.
    """
    from .seminaive import _RoundView, _variant_positions

    derived = component.derived
    relations = {predicate: working.relation(predicate) for predicate in derived}

    # The delta agenda, as in the serial scheduler, with each variant's
    # shardability decided up front: only position-0 variants partition
    # the enumeration space exactly (see module docstring).
    old: dict[str, StampedView] = {}
    agenda_map: dict[str, list] = {}
    for compiled, kernel in executors:
        target = working.relation(compiled.head_predicate)
        for position in _variant_positions(compiled, derived):
            view = _RoundView(working, position, None, old, derived)
            shard_column = _shard_column(compiled) if position == 0 else None
            agenda_map.setdefault(
                compiled.body[position].predicate, []
            ).append((compiled, kernel, target, view, position, shard_column))
    agenda = tuple(
        (predicate, tuple(agenda_map[predicate]))
        for predicate in sorted(agenda_map)
    )

    # --- local round 0: one application against the full database -------
    if checkpoint is not None:
        checkpoint.check_round()
    stats.iterations += 1
    delta: dict[str, Relation] = {
        predicate: working.spawn(predicate, arities[predicate])
        for predicate in derived
    }
    stamp = 1

    def full_view(position: int, predicate: str):
        try:
            return working.relation(predicate)
        except KeyError:
            return None

    with obs.timer("round"):
        for compiled, kernel in executors:
            target = relations[compiled.head_predicate]
            bucket = delta[compiled.head_predicate]
            for row in head_rows(
                compiled, kernel, full_view, stats, checkpoint, batch=True
            ):
                stats.inferences += 1
                if row not in target:
                    bucket.add(row)
        for predicate in derived:
            relation = relations[predicate]
            relation.mark_round(stamp)
            for row in delta[predicate]:
                if relation.add(row):
                    stats.facts_derived += 1
    if obs.enabled:
        obs.observe(
            "seminaive.delta_rows",
            sum(len(delta[predicate]) for predicate in derived),
        )

    # --- local delta rounds ---------------------------------------------
    rounds = 1
    while any(delta[predicate] for predicate in derived):
        if checkpoint is not None:
            checkpoint.check_round()
        stats.iterations += 1
        rounds += 1
        skipped = 0
        with obs.timer("round"):
            for predicate in derived:
                old[predicate] = relations[predicate].rows_before(stamp)
            new_delta: dict[str, Relation] = {
                predicate: working.spawn(predicate, arities[predicate])
                for predicate in derived
            }
            for predicate, entries in agenda:
                delta_relation = delta[predicate]
                if not delta_relation:
                    skipped += len(entries)
                    continue
                for compiled, kernel, target, round_view, position, column in entries:
                    bucket = new_delta[compiled.head_predicate]
                    if (
                        position == 0
                        and workers > 1
                        and len(delta_relation) >= PARTITION_MIN_ROWS
                    ):
                        _partitioned_variant(
                            compiled, kernel, target, bucket, delta_relation,
                            column, working, old, derived, stats, checkpoint,
                            obs, pool, workers,
                        )
                    else:
                        round_view.delta_relation = delta_relation
                        for row in head_rows(
                            compiled, kernel, round_view, stats, checkpoint,
                            batch=True,
                        ):
                            stats.inferences += 1
                            if row not in target:
                                bucket.add(row)
            stamp += 1
            for predicate in derived:
                relation = relations[predicate]
                relation.mark_round(stamp)
                for row in new_delta[predicate]:
                    if relation.add(row):
                        stats.facts_derived += 1
        if obs.enabled:
            obs.incr("seminaive.stamped_rounds")
            if skipped:
                obs.incr("scheduler.agenda_skipped", skipped)
            obs.observe(
                "seminaive.delta_rows",
                sum(len(new_delta[predicate]) for predicate in derived),
            )
        delta = new_delta
    return rounds


def _partitioned_variant(
    compiled: CompiledRule,
    kernel,
    target: Relation,
    bucket: Relation,
    delta_relation: Relation,
    shard_column: "int | None",
    working: Database,
    old,
    derived,
    stats: EvaluationStats,
    checkpoint: "Checkpoint | None",
    obs,
    pool: "ThreadPoolExecutor | None",
    workers: int,
) -> None:
    """One delta variant's round, hash-sharded across pool workers.

    Shards carry their own stats record and checkpoint view; candidate
    rows come back per shard and the coordinator — this thread — does
    all relation mutation, merging in shard-index order.
    """
    from .seminaive import _RoundView

    shards = min(workers, len(delta_relation))
    shard_relations = [
        working.spawn(delta_relation.name, delta_relation.arity)
        for _ in range(shards)
    ]
    for row in delta_relation:
        shard_relations[_shard_of(row, shard_column, shards)].add(row)

    position = 0
    enabled = obs.enabled

    def make_task(shard_relation):
        def task():
            shard_stats = EvaluationStats()
            shard_check = (
                checkpoint.worker_view(shard_stats)
                if checkpoint is not None
                else None
            )
            shard_metrics = Metrics() if enabled else None
            view = _RoundView(working, position, shard_relation, old, derived)
            rows: list[tuple] = []
            error = None
            context = (
                thread_metrics(shard_metrics)
                if shard_metrics is not None
                else nullcontext()
            )
            try:
                with context:
                    for row in head_rows(
                        compiled, kernel, view, shard_stats, shard_check,
                        batch=True,
                    ):
                        shard_stats.inferences += 1
                        rows.append(row)
            except BudgetExceededError as exc:
                error = exc
            return rows, shard_stats, shard_metrics, error

        return task

    tasks = [
        make_task(shard_relation)
        for shard_relation in shard_relations
        if shard_relation
    ]
    results = _map_on_pool(pool, tasks)

    error = None
    for rows, shard_stats, shard_metrics, shard_error in results:
        stats.merge(shard_stats)
        if shard_metrics is not None:
            obs.merge(shard_metrics)
        if shard_error is not None and error is None:
            error = shard_error
    if enabled:
        obs.incr("parallel.partition.variants")
        obs.observe("parallel.partition.shards", len(tasks))
    if error is not None:
        raise error
    for rows, _, _, _ in results:
        for row in rows:
            if row not in target:
                bucket.add(row)


# --- component-parallel coordinator -------------------------------------------


class _WorkerResult:
    """What one component worker hands back to the coordinator."""

    __slots__ = ("index", "stats", "metrics", "rounds", "error")

    def __init__(self, index, stats, metrics, rounds, error):
        self.index = index
        self.stats = stats
        self.metrics = metrics
        self.rounds = rounds
        self.error = error


def _component_naive(
    executors, working: Database, stats, checkpoint, obs
) -> int:
    """Local naive fixpoint of one recursive component (mirrors the
    recursive branch of
    :func:`repro.engine.scheduler.scc_naive_fixpoint`)."""
    from .naive import apply_rules_once

    compiled_rules = [compiled for compiled, _ in executors]
    kernels = [kernel for _, kernel in executors]
    rounds = 0
    changed = True
    while changed:
        if checkpoint is not None:
            checkpoint.check_round()
        stats.iterations += 1
        rounds += 1
        changed = False
        new_rows = 0
        with obs.timer("round"):
            for predicate, row in apply_rules_once(
                compiled_rules, working, stats, checkpoint, kernels
            ):
                if working.add(predicate, row):
                    stats.facts_derived += 1
                    new_rows += 1
                    changed = True
        if obs.enabled:
            obs.observe("naive.delta_rows", new_rows)
    return rounds


def _run_schedule(
    program: Program,
    components: "tuple[Component, ...]",
    compile_component,
    working: Database,
    arities,
    stats: EvaluationStats,
    checkpoint: "Checkpoint | None",
    obs,
    workers: int,
    naive: bool,
) -> None:
    """The coordinator pump: run *components* on a worker pool,
    dependencies first, merging worker stats and metrics back.

    Worker stats merge into *stats* as components complete (the counters
    are order-independent sums); worker metric registries merge at the
    end in schedule order, so order-sensitive fields stay deterministic.
    On a budget trip the pump stops submitting, drains in-flight workers,
    merges what they did, and re-raises the gate's single stored error.
    """
    deps = component_dependencies(program, components)
    dependents: dict[int, list[int]] = {}
    for index, wanted in enumerate(deps):
        for dep in wanted:
            dependents.setdefault(dep, []).append(index)
    remaining = {index: set(wanted) for index, wanted in enumerate(deps) if wanted}
    queue = deque(
        index for index in range(len(components)) if index not in remaining
    )

    def run_component(index: int) -> _WorkerResult:
        component = components[index]
        worker_stats = EvaluationStats()
        worker_check = (
            checkpoint.worker_view(worker_stats)
            if checkpoint is not None
            else None
        )
        worker_metrics = Metrics() if obs.enabled else None
        rounds = None
        error = None
        context = (
            thread_metrics(worker_metrics)
            if worker_metrics is not None
            else nullcontext()
        )
        try:
            with context:
                worker_obs = worker_metrics if worker_metrics is not None else obs
                executors = compile_component(index, component)
                if not component.recursive:
                    if worker_check is not None:
                        worker_check.check_round()
                    worker_stats.iterations += 1
                    with worker_obs.timer("round"):
                        _single_pass(
                            executors, working, worker_stats, worker_check
                        )
                elif naive:
                    rounds = _component_naive(
                        executors, working, worker_stats, worker_check,
                        worker_obs,
                    )
                elif workers > 1:
                    rounds = _partitioned_seminaive(
                        component, executors, working, arities, worker_stats,
                        worker_check, worker_obs, pool, workers,
                    )
                else:
                    rounds = _component_seminaive(
                        component, executors, working, arities, worker_stats,
                        worker_check, worker_obs,
                    )
        except BudgetExceededError as exc:
            error = exc
        return _WorkerResult(index, worker_stats, worker_metrics, rounds, error)

    results: dict[int, _WorkerResult] = {}
    inflight: dict = {}
    failed: "BudgetExceededError | None" = None
    with ThreadPoolExecutor(
        max_workers=workers, thread_name_prefix="repro-parallel"
    ) as pool:
        while queue or inflight:
            while queue and failed is None:
                index = queue.popleft()
                inflight[pool.submit(run_component, index)] = index
                if obs.enabled:
                    obs.observe("parallel.inflight", len(inflight))
            if not inflight:
                break
            done, _ = wait(set(inflight), return_when=FIRST_COMPLETED)
            for future in done:
                index = inflight.pop(future)
                result = future.result()
                results[index] = result
                stats.merge(result.stats)
                if result.error is not None and failed is None:
                    failed = result.error
                for dependent in dependents.get(index, ()):
                    pending = remaining.get(dependent)
                    if pending is not None:
                        pending.discard(index)
                        if not pending:
                            del remaining[dependent]
                            queue.append(dependent)
    if obs.enabled:
        for index in sorted(results):
            result = results[index]
            if result.metrics is not None:
                obs.merge(result.metrics)
                obs.incr("parallel.worker_merges")
            if result.rounds is not None:
                obs.observe("scheduler.component_rounds", result.rounds)
        obs.observe("parallel.workers", workers)
        obs.observe("parallel.components", len(components))
    if failed is not None:
        tripped = checkpoint.tripped if checkpoint is not None else None
        raise tripped if tripped is not None else failed


# --- entry points -------------------------------------------------------------


def parallel_seminaive_fixpoint(
    program: Program,
    database: "Database | None" = None,
    stats: "EvaluationStats | None" = None,
    planner=None,
    budget: "EvaluationBudget | Checkpoint | None" = None,
    executor: str = DEFAULT_EXECUTOR,
    storage: str = DEFAULT_STORAGE,
    workers: "int | None" = None,
) -> tuple[Database, EvaluationStats]:
    """Component- and partition-parallel semi-naive evaluation (see the
    module docstring).  Called through
    :func:`repro.engine.seminaive.seminaive_fixpoint` with
    ``scheduler="parallel"``; the serial ``scc`` mode is the differential
    oracle."""
    stats = stats if stats is not None else EvaluationStats()
    workers = resolve_workers(workers)
    obs = get_metrics()
    working = as_storage(database, storage)
    working.add_atoms(program.facts)
    arities = program.arities
    for predicate in program.idb_predicates:
        working.relation(predicate, arities[predicate])
    schedule = build_schedule(program)
    checkpoint = ensure_checkpoint(budget, stats)
    if checkpoint is not None:
        checkpoint.bind(working)
    _observe_schedule(obs, schedule)
    interner = getattr(working, "interner", None)

    def compile_component(index: int, component: Component):
        # Planned when the component's dependencies are closed, so the
        # planner reads the same materialised statistics as serial scc.
        active_planner = component_planner(planner, working, component)
        compiled_rules = [
            compile_rule(rule, active_planner) for rule in component.rules
        ]
        return compile_executors(compiled_rules, executor, interner)

    with obs.timer("seminaive"):
        _run_schedule(
            program, schedule.components, compile_component, working, arities,
            stats, checkpoint, obs, workers, naive=False,
        )
    if obs.enabled:
        obs.incr("seminaive.runs")
        obs.incr("parallel.runs")
        obs.observe("seminaive.iterations", stats.iterations)
    return working, stats


def parallel_naive_fixpoint(
    program: Program,
    database: "Database | None" = None,
    stats: "EvaluationStats | None" = None,
    planner=None,
    budget: "EvaluationBudget | Checkpoint | None" = None,
    executor: str = DEFAULT_EXECUTOR,
    storage: str = DEFAULT_STORAGE,
    workers: "int | None" = None,
) -> tuple[Database, EvaluationStats]:
    """Component-parallel naive evaluation: independent components run
    concurrently, each recursive component iterating its own local naive
    fixpoint (no delta exists to partition).  Called through
    :func:`repro.engine.naive.naive_fixpoint` with
    ``scheduler="parallel"``."""
    stats = stats if stats is not None else EvaluationStats()
    workers = resolve_workers(workers)
    obs = get_metrics()
    working = as_storage(database, storage)
    working.add_atoms(program.facts)
    arities = program.arities
    for predicate in program.idb_predicates:
        working.relation(predicate, arities[predicate])
    schedule = build_schedule(program)
    checkpoint = ensure_checkpoint(budget, stats)
    if checkpoint is not None:
        checkpoint.bind(working)
    _observe_schedule(obs, schedule)
    interner = getattr(working, "interner", None)

    def compile_component(index: int, component: Component):
        active_planner = component_planner(planner, working, component)
        compiled_rules = [
            compile_rule(rule, active_planner) for rule in component.rules
        ]
        return compile_executors(compiled_rules, executor, interner)

    with obs.timer("naive"):
        _run_schedule(
            program, schedule.components, compile_component, working, arities,
            stats, checkpoint, obs, workers, naive=True,
        )
    if obs.enabled:
        obs.incr("naive.runs")
        obs.incr("parallel.runs")
        obs.observe("naive.iterations", stats.iterations)
    return working, stats


def run_compiled_parallel(
    compiled,
    working: Database,
    stats: EvaluationStats,
    checkpoint: "Checkpoint | None",
    workers: "int | None" = None,
) -> None:
    """Drive a :class:`repro.engine.prepared.CompiledFixpoint` compiled
    with ``scheduler="parallel"`` — the run half of the prepared-query
    split.  *working* must already hold every derived relation; the
    per-component executors were compiled (and planned) up front, exactly
    as in the prepared scc mode."""
    workers = resolve_workers(workers)
    obs = get_metrics()
    components = tuple(cc.component for cc in compiled.components)
    executor_table = {
        index: cc.executors for index, cc in enumerate(compiled.components)
    }
    _observe_schedule(obs, Schedule(components))

    def compile_component(index: int, component: Component):
        return executor_table[index]

    arities = compiled.program.arities
    with obs.timer("seminaive"):
        _run_schedule(
            compiled.program, components, compile_component, working, arities,
            stats, checkpoint, obs, workers, naive=False,
        )
    if obs.enabled:
        obs.incr("seminaive.runs")
        obs.incr("parallel.runs")
        obs.observe("seminaive.iterations", stats.iterations)
