"""Naive bottom-up fixpoint evaluation.

The textbook T_P iteration: every rule is re-evaluated against the whole
database each round until a round derives nothing new.  Kept primarily as
the correctness oracle and the A2-ablation baseline for the semi-naive
engine; all production paths use :mod:`repro.engine.seminaive`.

Negation is *not* handled here (a run of a single stratum must be
negation-free or have its negative literals refer only to relations that
are already complete); :mod:`repro.engine.stratified` layers strata on top
of either fixpoint engine.
"""

from __future__ import annotations

from typing import Sequence

from ..datalog.rules import Program
from ..facts.database import Database
from ..facts.relation import Relation
from ..obs import get_metrics
from .budget import Checkpoint, EvaluationBudget, ensure_checkpoint
from .columnar import DEFAULT_STORAGE, as_storage
from .counters import EvaluationStats
from .kernel import DEFAULT_EXECUTOR, RuleKernel, compile_executors, head_rows
from .matching import CompiledRule, compile_rule
from .planner import JoinPlanner, resolve_planner
from .scheduler import DEFAULT_SCHEDULER, resolve_scheduler

__all__ = ["naive_fixpoint", "apply_rules_once"]


def _full_view(database: Database):
    """A RelationView reading every position from *database*."""

    def view(position: int, predicate: str) -> Relation | None:
        try:
            return database.relation(predicate)
        except KeyError:
            return None

    return view


def apply_rules_once(
    compiled_rules: Sequence[CompiledRule],
    database: Database,
    stats: EvaluationStats,
    checkpoint: Checkpoint | None = None,
    kernels: Sequence[RuleKernel | None] | None = None,
) -> list[tuple[str, tuple]]:
    """One T_P application: all head tuples derivable in a single step.

    Facts are *collected*, not inserted, so the caller controls whether the
    application is inflationary (naive engine) or not (tests that check the
    operator itself).

    Args:
        kernels: optional pre-compiled rule kernels parallel to
            *compiled_rules* (see :mod:`repro.engine.kernel`); positions
            holding ``None`` fall back to the interpreted matcher.
    """
    view = _full_view(database)
    produced: list[tuple[str, tuple]] = []
    for index, compiled in enumerate(compiled_rules):
        kernel = kernels[index] if kernels is not None else None
        # batch=True is sound: rows are collected here, not inserted, so
        # no relation changes while a batch is being enumerated.
        for row in head_rows(compiled, kernel, view, stats, checkpoint, batch=True):
            stats.inferences += 1
            produced.append((compiled.head_predicate, row))
    return produced


def naive_fixpoint(
    program: Program,
    database: Database | None = None,
    stats: EvaluationStats | None = None,
    planner: "JoinPlanner | str | None" = None,
    budget: "EvaluationBudget | Checkpoint | None" = None,
    executor: str = DEFAULT_EXECUTOR,
    scheduler: str = DEFAULT_SCHEDULER,
    storage: str = DEFAULT_STORAGE,
    workers: "int | None" = None,
) -> tuple[Database, EvaluationStats]:
    """Evaluate *program* to fixpoint naively.

    Args:
        program: rules to evaluate; embedded ground facts are loaded too.
        database: extensional facts; copied, never mutated.
        stats: optional counter record to accumulate into.
        planner: optional join planner (``"greedy"`` or a
            :class:`repro.engine.planner.JoinPlanner`); rule bodies are
            compiled in its cost-based order instead of textual order.
        budget: optional :class:`repro.engine.budget.EvaluationBudget`
            (or an already-running checkpoint, for nested evaluation);
            exhaustion raises
            :class:`repro.errors.BudgetExceededError` carrying the
            partial database.
        executor: ``"kernel"`` (default) runs rule bodies as compiled
            slot kernels (:mod:`repro.engine.kernel`); ``"interpreted"``
            uses the recursive matcher.  The derived fact set and every
            counter are identical either way.
        scheduler: ``"scc"`` (default) evaluates dependency components
            in order, iterating only recursive components to a local
            fixpoint (:mod:`repro.engine.scheduler`); ``"global"`` runs
            the monolithic loop below.  The derived fact set is
            identical either way, but naive evaluation re-enumerates
            the whole database each round, so ``inferences``/
            ``attempts``/``iterations`` legitimately differ between
            schedulers (unlike semi-naive, where they match).
        storage: ``"tuples"`` (default) or ``"columnar"`` — the working
            database's relation backend (:mod:`repro.engine.columnar`).
            Fact sets and counters are identical either way; columnar
            storage requires ``executor="kernel"``.
        workers: worker-pool size for ``scheduler="parallel"``
            (:mod:`repro.engine.parallel`; ``None`` = one per CPU
            core); accepted and ignored by the serial schedulers.

    Returns:
        The completed database (EDB plus all derived IDB facts) and the
        statistics record.
    """
    mode = resolve_scheduler(scheduler)
    if mode == "parallel":
        from .parallel import parallel_naive_fixpoint

        return parallel_naive_fixpoint(
            program, database, stats, planner=planner, budget=budget,
            executor=executor, storage=storage, workers=workers,
        )
    if mode == "scc":
        from .scheduler import scc_naive_fixpoint

        return scc_naive_fixpoint(
            program, database, stats, planner=planner, budget=budget,
            executor=executor, storage=storage,
        )
    stats = stats if stats is not None else EvaluationStats()
    working = as_storage(database, storage)
    working.add_atoms(program.facts)
    # Ensure every IDB predicate has a (possibly empty) relation, so
    # negative literals over IDB predicates probe an empty relation rather
    # than "unknown".
    for rule in program.proper_rules:
        working.relation(rule.head.predicate, rule.head.arity)
    active_planner = resolve_planner(planner, working, program)
    compiled_rules = [
        compile_rule(rule, active_planner) for rule in program.proper_rules
    ]
    executors = compile_executors(
        compiled_rules, executor, getattr(working, "interner", None)
    )
    kernels = [kernel for _, kernel in executors]
    checkpoint = ensure_checkpoint(budget, stats)
    if checkpoint is not None:
        checkpoint.bind(working)
    obs = get_metrics()
    with obs.timer("naive"):
        changed = True
        while changed:
            if checkpoint is not None:
                checkpoint.check_round()
            stats.iterations += 1
            changed = False
            new_rows = 0
            with obs.timer("round"):
                for predicate, row in apply_rules_once(
                    compiled_rules, working, stats, checkpoint, kernels
                ):
                    if working.add(predicate, row):
                        stats.facts_derived += 1
                        new_rows += 1
                        changed = True
            if obs.enabled:
                obs.observe("naive.delta_rows", new_rows)
    if obs.enabled:
        obs.incr("naive.runs")
        obs.observe("naive.iterations", stats.iterations)
    return working, stats
