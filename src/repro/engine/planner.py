"""Statistics-driven join planning for rule bodies.

:mod:`repro.engine.matching` compiles rule bodies in textual literal
order, which makes join cost hostage to how the rule happened to be
written: a body whose large, unselective literal comes first turns the
index-nested-loop join into something close to a cross product.  The
:class:`JoinPlanner` reorders the *positive, non-built-in* literals of a
body before compilation, using the cheap statistics kept by
:class:`repro.facts.relation.Relation` — cardinality, distinct values per
column, and exact posting sizes for constant probes — as the cost signal.

The planner is greedy: at each step it picks the literal with the lowest
estimated number of matching rows given the variables bound so far,
breaking ties toward more bound arguments and then toward the original
textual position (so well-ordered bodies keep their order and plans stay
deterministic).  Estimates follow the classical independence assumptions:

* a known relation starts at its cardinality; every bound column divides
  by its distinct-value count (constants use the exact posting size);
* a repeated variable inside one literal counts as a bound column (it is
  an equality filter on the row);
* a relation known to be empty or absent estimates **zero** — placing it
  first short-circuits the whole rule;
* a predicate in ``unknown`` (the IDB, whose relations are empty at plan
  time but grow during the fixpoint) gets a small default estimate.  For
  the semi-naive engines this is deliberately *optimistic*: the distin-
  guished occurrence reads the (small) delta relation, so joining outward
  from the recursive literal is the delta discipline's preferred shape,
  and in transformed programs it keeps the goal-directed ``call``/
  ``magic`` filters in front of the EDB scans.

Ordering constraints are unchanged from the textual compiler: negative
literals and built-ins are *tests* and are re-attached at the earliest
point where all their variables are bound (the safety analysis guarantees
such a point exists), so a plan can never unbind a test.

For the top-down clause-resolution engines (OLDT, QSQR) the planner
offers :meth:`JoinPlanner.order_clause_goals`, which only permutes
*maximal runs of consecutive extensional literals*.  Tabled literals and
tests are boundaries: the set of substitutions reaching each tabled call
is a join of the run before it and joins are order-independent, so the
generated call patterns and answers — the objects of Seki's
correspondence theorem — are provably unchanged; only the enumeration
work shrinks.

Every planning decision is recorded through :mod:`repro.obs` counters
(``planner.rules_planned``, ``planner.rules_reordered``,
``planner.short_circuits``, plus a ``planner.rule_cost`` histogram) and
kept on the planner as :class:`JoinPlan` records, so benchmark artifacts
can show which rules were reordered and why.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..datalog.atoms import Literal
from ..datalog.builtins import is_builtin
from ..datalog.rules import Program, Rule
from ..datalog.terms import Constant, Variable
from ..facts.database import Database
from ..obs import get_metrics

__all__ = [
    "DEFAULT_UNKNOWN_SIZE",
    "JoinPlan",
    "JoinPlanner",
    "resolve_planner",
]

# Estimated cardinality of a relation the planner has no statistics for —
# in practice an IDB relation that is empty at plan time but will grow.
# Small on purpose: see the module docstring.
DEFAULT_UNKNOWN_SIZE = 4.0

# Assumed selectivity divisor per bound column of an unknown relation.
_UNKNOWN_FANOUT = 2.0


@dataclass(frozen=True)
class JoinPlan:
    """The planning record for one rule (diagnostics, not execution state).

    Attributes:
        rule: the planned rule.
        order: the positive non-built-in literals in chosen join order.
        estimates: the estimated matching-row count of each literal at the
            moment it was chosen (parallel to ``order``).
        reordered: True iff ``order`` differs from textual order.
        short_circuit: True iff some literal estimated zero rows (an
            empty or absent relation was hoisted to the front).
    """

    rule: Rule
    order: tuple[Literal, ...]
    estimates: tuple[float, ...]
    reordered: bool
    short_circuit: bool

    def as_dict(self) -> dict:
        """A JSON-ready rendering for bench-artifact metadata."""
        return {
            "rule": str(self.rule),
            "order": [str(literal) for literal in self.order],
            "estimates": [round(estimate, 3) for estimate in self.estimates],
            "reordered": self.reordered,
            "short_circuit": self.short_circuit,
        }


class JoinPlanner:
    """Greedy selectivity-based ordering of positive body literals.

    Args:
        database: statistics source; literal costs read the relations'
            cardinality/distinct/posting statistics live.
        unknown: predicates whose relations must not be trusted even when
            currently empty (the IDB of the program being evaluated);
            they receive ``unknown_size`` instead of their stored size.
        unknown_size: default cardinality estimate for ``unknown``
            predicates (see module docstring for why it is small).
    """

    def __init__(
        self,
        database: Database | None = None,
        unknown: frozenset[str] = frozenset(),
        unknown_size: float = DEFAULT_UNKNOWN_SIZE,
    ):
        self._database = database if database is not None else Database()
        self._unknown = frozenset(unknown)
        self._unknown_size = float(unknown_size)
        self.plans: list[JoinPlan] = []

    # --- cost model ----------------------------------------------------------
    def estimate(self, literal: Literal, bound: frozenset[Variable]) -> float:
        """Estimated number of rows matching *literal* given *bound* vars."""
        if literal.predicate in self._unknown:
            return self._estimate_unknown(literal, bound)
        if literal.predicate not in self._database:
            return 0.0
        relation = self._database.relation(literal.predicate)
        size = float(len(relation))
        if size == 0.0:
            return 0.0
        estimate = size
        seen_here: set[Variable] = set()
        for column, arg in enumerate(literal.args):
            if isinstance(arg, Constant):
                postings = relation.postings_size(column, arg.value)
                if postings == 0:
                    return 0.0
                estimate *= postings / size
            elif arg in bound or arg in seen_here:
                estimate /= max(relation.distinct_count(column), 1)
            else:
                seen_here.add(arg)
        return estimate

    def _estimate_unknown(
        self, literal: Literal, bound: frozenset[Variable]
    ) -> float:
        estimate = self._unknown_size
        seen_here: set[Variable] = set()
        for arg in literal.args:
            if isinstance(arg, Constant) or arg in bound or arg in seen_here:
                estimate /= _UNKNOWN_FANOUT
            elif isinstance(arg, Variable):
                seen_here.add(arg)
        return estimate

    # --- planning ------------------------------------------------------------
    def plan_rule(self, rule: Rule) -> JoinPlan:
        """Greedily order the positive non-built-in literals of *rule*."""
        positives = [
            literal
            for literal in rule.body
            if literal.positive and not is_builtin(literal.predicate)
        ]
        remaining = list(enumerate(positives))
        bound: frozenset[Variable] = frozenset()
        order: list[Literal] = []
        estimates: list[float] = []
        while remaining:
            best = min(
                remaining,
                key=lambda item: (
                    self.estimate(item[1], bound),
                    sum(
                        1
                        for var in item[1].variable_set()
                        if var not in bound
                    ),
                    item[0],
                ),
            )
            remaining.remove(best)
            index, literal = best
            estimates.append(self.estimate(literal, bound))
            order.append(literal)
            bound = bound | literal.variable_set()
        plan = JoinPlan(
            rule=rule,
            order=tuple(order),
            estimates=tuple(estimates),
            reordered=tuple(order) != tuple(positives),
            short_circuit=any(estimate == 0.0 for estimate in estimates),
        )
        self.plans.append(plan)
        obs = get_metrics()
        if obs.enabled:
            obs.incr("planner.rules_planned")
            if plan.reordered:
                obs.incr("planner.rules_reordered")
            if plan.short_circuit:
                obs.incr("planner.short_circuits")
            obs.observe("planner.rule_cost", sum(estimates))
        return plan

    def order_body(self, rule: Rule) -> tuple[Literal, ...]:
        """The full planned body: planned positives, tests re-attached at
        their earliest safe position (the matcher's standard contract)."""
        from .matching import order_body

        plan = self.plan_rule(rule)
        return order_body(rule.body, rule, positives=plan.order)

    def order_clause_goals(
        self,
        body: Sequence[Literal],
        rule: Rule | None = None,
        tabled: frozenset[str] = frozenset(),
    ) -> tuple[Literal, ...]:
        """Clause-goal ordering for the top-down resolution engines.

        Starts from the safety-normalised textual order and then permutes
        only maximal runs of consecutive positive *extensional* literals
        (predicates outside ``tabled``).  Tabled literals, negatives, and
        built-ins are immovable boundaries, which preserves the engine's
        call patterns and answers exactly (see module docstring).
        """
        from .matching import order_body

        ordered = list(order_body(body, rule))
        result: list[Literal] = []
        bound: frozenset[Variable] = frozenset()
        run: list[Literal] = []

        def flush_run() -> None:
            nonlocal bound
            remaining = list(enumerate(run))
            while remaining:
                best = min(
                    remaining,
                    key=lambda item: (
                        self.estimate(item[1], bound),
                        sum(
                            1
                            for var in item[1].variable_set()
                            if var not in bound
                        ),
                        item[0],
                    ),
                )
                remaining.remove(best)
                result.append(best[1])
                bound = bound | best[1].variable_set()
            run.clear()

        for literal in ordered:
            movable = (
                literal.positive
                and not is_builtin(literal.predicate)
                and literal.predicate not in tabled
            )
            if movable:
                run.append(literal)
            else:
                flush_run()
                result.append(literal)
                bound = bound | literal.variable_set()
        flush_run()
        return tuple(result)


def resolve_planner(
    planner: "JoinPlanner | str | bool | None",
    database: Database,
    program: Program,
) -> JoinPlanner | None:
    """Normalise the ``planner=`` argument every engine accepts.

    Args:
        planner: ``None``/``False`` → no planning (textual order);
            ``"greedy"``/``True`` → a fresh :class:`JoinPlanner` over
            *database* with the program's IDB as unknown predicates; an
            existing :class:`JoinPlanner` is returned unchanged (callers
            may pre-configure statistics sources or inspect ``plans``
            afterwards).
    """
    if planner is None or planner is False:
        return None
    if isinstance(planner, JoinPlanner):
        return planner
    if planner is True or planner == "greedy":
        return JoinPlanner(database, unknown=program.idb_predicates)
    raise ValueError(
        f"unknown planner {planner!r}; use None, 'greedy', or a JoinPlanner"
    )
