"""Rule compilation and body matching for the bottom-up engines.

Rules are compiled once into an index-friendly form: each literal becomes a
pattern over column positions, classified as constants, first occurrences
of a variable (which bind), or repeated occurrences (which filter).  The
matcher then enumerates substitutions (dicts mapping
:class:`~repro.datalog.terms.Variable` to plain constant *values*) by
index-nested-loop joins against :class:`~repro.facts.relation.Relation`
objects.

Negative literals are checked by absence once all their variables are
bound; the compiler orders them after the positive literals that bind
them (a safety analysis elsewhere guarantees such an order exists).

Positive literals join in textual order by default; passing a
:class:`repro.engine.planner.JoinPlanner` to :func:`compile_rule` swaps in
its statistics-driven order instead.  Either way the compiled rule
enumerates the same fact set — ordering only changes how much work the
index-nested-loop join does (see ``docs/ARCHITECTURE.md``, "The matcher/
planner contract").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator, Mapping, Sequence

from ..datalog.atoms import Literal
from ..datalog.builtins import evaluate_builtin, is_builtin
from ..datalog.rules import Rule
from ..datalog.terms import Constant, Variable
from ..errors import SafetyError
from ..facts.relation import Relation
from .counters import EvaluationStats

if TYPE_CHECKING:  # pragma: no cover
    from .planner import JoinPlanner

__all__ = [
    "CompiledLiteral",
    "CompiledRule",
    "compile_rule",
    "compile_rule_ordered",
    "match_body",
    "RelationView",
]

# A view maps a (body position, predicate name) pair to the relation that
# position should read, or None when the relation is empty/unknown.  The
# position argument lets the semi-naive engine give the distinguished delta
# occurrence a different relation than the full/old occurrences.
RelationView = Callable[[int, str], "Relation | None"]


@dataclass(frozen=True, slots=True)
class CompiledLiteral:
    """One body literal in matcher form.

    Attributes:
        predicate: relation to probe.
        positive: literal polarity.
        constants: (column, value) pairs that must match exactly.
        binders: (column, variable) pairs where the variable first occurs
            within this literal (they extend the binding).
        filters: (column, variable) pairs where the variable occurred
            earlier in this literal (equality filter within the row).
        source: the original literal, for diagnostics.
    """

    predicate: str
    positive: bool
    constants: tuple[tuple[int, object], ...]
    binders: tuple[tuple[int, Variable], ...]
    filters: tuple[tuple[int, Variable], ...]
    source: Literal
    builtin: bool = False

    @property
    def variables(self) -> frozenset[Variable]:
        return frozenset(var for _, var in self.binders + self.filters)

    @property
    def is_test(self) -> bool:
        """Tests (negatives and built-ins) check; they never bind."""
        return self.builtin or not self.positive


@dataclass(frozen=True, slots=True)
class CompiledRule:
    """A rule with its body ordered for left-to-right evaluation.

    ``head_pattern`` entries are either ``("c", value)`` or
    ``("v", Variable)``; building a head tuple from a complete binding is a
    single comprehension.
    """

    rule: Rule
    head_predicate: str
    head_pattern: tuple[tuple[str, object], ...]
    body: tuple[CompiledLiteral, ...]

    def head_tuple(self, binding: Mapping[Variable, object]) -> tuple:
        return tuple(
            value if kind == "c" else binding[value]
            for kind, value in self.head_pattern
        )


def _compile_literal(literal: Literal) -> CompiledLiteral:
    constants: list[tuple[int, object]] = []
    binders: list[tuple[int, Variable]] = []
    filters: list[tuple[int, Variable]] = []
    seen_here: set[Variable] = set()
    for column, arg in enumerate(literal.args):
        if isinstance(arg, Constant):
            constants.append((column, arg.value))
        elif arg in seen_here:
            filters.append((column, arg))
        else:
            seen_here.add(arg)
            binders.append((column, arg))
    return CompiledLiteral(
        predicate=literal.predicate,
        positive=literal.positive,
        constants=tuple(constants),
        binders=tuple(binders),
        filters=tuple(filters),
        source=literal,
        builtin=is_builtin(literal.predicate),
    )


def order_body(
    body: Sequence[Literal],
    rule: Rule | None = None,
    positives: Sequence[Literal] | None = None,
) -> tuple[Literal, ...]:
    """Order body literals so every *test* literal is fully bound.

    Tests — negative literals and built-in comparisons — check but never
    bind, so each is placed at the earliest point where all its variables
    are bound by preceding binding literals; the binding literals keep
    their given relative order (the transformations in this library emit
    bodies in binding-propagation order already).

    Args:
        positives: optional explicit ordering of the positive
            non-built-in literals (a permutation of them, typically from
            :class:`repro.engine.planner.JoinPlanner`); textual order
            when omitted.

    Raises:
        SafetyError: when some test literal has a variable that occurs
            in no binding literal.
    """
    if positives is None:
        positives = [
            lit for lit in body if lit.positive and not is_builtin(lit.predicate)
        ]
    negatives = [
        lit for lit in body if lit.negative or is_builtin(lit.predicate)
    ]
    available: set[Variable] = set()
    ordered: list[Literal] = []
    pending = list(negatives)

    def flush() -> None:
        nonlocal pending
        still_pending = []
        for negative in pending:
            if negative.variable_set() <= available:
                ordered.append(negative)
            else:
                still_pending.append(negative)
        pending = still_pending

    flush()  # ground negatives may run before any positive literal
    for literal in positives:
        ordered.append(literal)
        available.update(literal.variables())
        flush()
    for negative in pending:
        if negative.variable_set():
            missing = negative.variable_set() - available
            if missing:
                where = f" in rule {rule}" if rule is not None else ""
                names = ", ".join(sorted(v.name for v in missing))
                raise SafetyError(
                    f"negative literal {negative} has unbound variables "
                    f"{names}{where}"
                )
        ordered.append(negative)
    return tuple(ordered)


def compile_rule(rule: Rule, planner: "JoinPlanner | None" = None) -> CompiledRule:
    """Compile a rule for bottom-up matching.

    The head must be range-restricted: every head variable must occur in
    some positive body literal.

    Args:
        planner: optional :class:`repro.engine.planner.JoinPlanner`; when
            given, positive literals are joined in its cost-based order
            instead of textual order.  Tests keep their earliest-bound
            placement either way, and the derived fact set is identical —
            only the enumeration work changes.
    """
    if planner is not None:
        ordered = planner.order_body(rule)
    else:
        ordered = order_body(rule.body, rule)
    bound: set[Variable] = set()
    compiled: list[CompiledLiteral] = []
    for literal in ordered:
        compiled.append(_compile_literal(literal))
        if literal.positive:
            bound.update(literal.variables())
    head_pattern: list[tuple[str, object]] = []
    for arg in rule.head.args:
        if isinstance(arg, Constant):
            head_pattern.append(("c", arg.value))
        else:
            if arg not in bound:
                raise SafetyError(
                    f"head variable {arg} of rule {rule} does not occur "
                    "in any positive body literal"
                )
            head_pattern.append(("v", arg))
    return CompiledRule(
        rule=rule,
        head_predicate=rule.head.predicate,
        head_pattern=tuple(head_pattern),
        body=tuple(compiled),
    )


def compile_rule_ordered(
    rule: Rule, ordered: Sequence[Literal]
) -> CompiledRule:
    """Compile *rule* with its body in the given, already-decided order.

    The snapshot layer (:mod:`repro.core.snapshot`) serializes each
    compiled rule's body order as an explicit permutation; reloading
    must reproduce that exact order without consulting a planner or
    re-deriving test placement — any re-derivation would make the
    reloaded plan merely equivalent where the format promises
    bit-identity.  *ordered* must be a permutation of ``rule.body``
    whose test literals are fully bound at their position (true of any
    order :func:`compile_rule` ever produced, which is the only source
    of serialized plans).
    """
    bound: set[Variable] = set()
    compiled: list[CompiledLiteral] = []
    for literal in ordered:
        compiled.append(_compile_literal(literal))
        if literal.positive:
            bound.update(literal.variables())
    head_pattern: list[tuple[str, object]] = []
    for arg in rule.head.args:
        if isinstance(arg, Constant):
            head_pattern.append(("c", arg.value))
        else:
            if arg not in bound:
                raise SafetyError(
                    f"head variable {arg} of rule {rule} does not occur "
                    "in any positive body literal"
                )
            head_pattern.append(("v", arg))
    return CompiledRule(
        rule=rule,
        head_predicate=rule.head.predicate,
        head_pattern=tuple(head_pattern),
        body=tuple(compiled),
    )


def _match_positive(
    literal: CompiledLiteral,
    relation: Relation,
    binding: dict[Variable, object],
    stats: EvaluationStats,
    checkpoint=None,
) -> Iterator[dict[Variable, object]]:
    bound_columns: dict[int, object] = dict(literal.constants)
    unbound: list[tuple[int, Variable]] = []
    for column, var in literal.binders:
        if var in binding:
            bound_columns[column] = binding[var]
        else:
            unbound.append((column, var))
    for row in relation.lookup(bound_columns):
        stats.attempts += 1
        if checkpoint is not None:
            checkpoint.poll()
        # Repeated variables within the literal: binders extend, filters
        # check equality against the value bound earlier in this same row.
        extended = dict(binding)
        for column, var in unbound:
            extended[var] = row[column]
        ok = True
        for column, var in literal.filters:
            if extended.get(var) != row[column]:
                ok = False
                break
        if ok:
            yield extended


def _literal_values(
    literal: CompiledLiteral, binding: Mapping[Variable, object]
) -> tuple:
    """The literal's fully bound argument values under *binding*."""
    row: dict[int, object] = dict(literal.constants)
    for column, var in literal.binders + literal.filters:
        row[column] = binding[var]
    return tuple(row[column] for column in range(len(row)))


def _check_builtin(
    literal: CompiledLiteral, binding: Mapping[Variable, object]
) -> bool:
    """Evaluate a built-in test literal; polarity applied."""
    holds = evaluate_builtin(literal.predicate, _literal_values(literal, binding))
    return holds if literal.positive else not holds


def _check_negative(
    literal: CompiledLiteral,
    relation: Relation | None,
    binding: Mapping[Variable, object],
) -> bool:
    """True iff the (fully bound) negative literal holds, i.e. no row matches."""
    row: dict[int, object] = {}
    for column, value in literal.constants:
        row[column] = value
    for column, var in literal.binders + literal.filters:
        row[column] = binding[var]
    if relation is None:
        return True
    probe = tuple(row[column] for column in range(relation.arity))
    return probe not in relation


def match_body(
    compiled: CompiledRule,
    view: RelationView,
    stats: EvaluationStats,
    binding: dict[Variable, object] | None = None,
    from_literal: int = 0,
    checkpoint=None,
) -> Iterator[dict[Variable, object]]:
    """Enumerate bindings satisfying the body from *from_literal* on.

    Args:
        compiled: the compiled rule.
        view: maps (body position, predicate name) to the relation that
            position should read (see :data:`RelationView`).
        stats: attempt counters are charged here.
        binding: the binding accumulated so far (empty at the top call).
        from_literal: index into ``compiled.body`` to start from.
        checkpoint: optional :class:`repro.engine.budget.Checkpoint`
            polled once per probed row, so a single huge join respects
            the wall-clock/attempt budget mid-round.
    """
    if binding is None:
        binding = {}
    position = from_literal
    # Resolve the run of test literals (negatives, built-ins) iteratively.
    while position < len(compiled.body) and compiled.body[position].is_test:
        literal = compiled.body[position]
        stats.attempts += 1
        if literal.builtin:
            if not _check_builtin(literal, binding):
                return
        else:
            relation = view(position, literal.predicate)
            if not _check_negative(literal, relation, binding):
                return
        position += 1
    if position == len(compiled.body):
        yield binding
        return
    literal = compiled.body[position]
    relation = view(position, literal.predicate)
    if relation is None:
        return
    for extended in _match_positive(literal, relation, binding, stats, checkpoint):
        yield from match_body(
            compiled, view, stats, extended, position + 1, checkpoint
        )
