"""SCC-scheduled fixpoint evaluation: component-wise rounds with a delta
agenda.

Alexander/magic-transformed programs are exactly the workloads where one
monolithic fixpoint loop wastes the most work: the transformation
shatters the program into many ``call_*``/``ans_*``/continuation
predicates whose dependency structure is mostly a long chain of small
components, yet a global semi-naive loop re-visits every rule's delta
variants on every round.  This module condenses the program via
:class:`repro.analysis.dependency.DependencyGraph` into strongly
connected components in topological (dependencies-first) order and
evaluates them one at a time:

* a **non-recursive** component (a single predicate outside every cycle)
  needs exactly one rule application — its body predicates are complete
  by the time it is reached;
* a **recursive** component runs a *local* semi-naive fixpoint in which
  only same-component predicates count as "derived".  Lower-component
  IDB relations are complete, so they are read as plain full relations:
  rules get fewer delta variants, probes hit the concrete
  :class:`~repro.facts.relation.Relation` fast paths instead of stamped
  views, and — when a planner spec is passed — the *materialised*
  statistics of lower components feed the join planner, extending the
  per-stratum argument :mod:`repro.engine.stratified` already makes.

Inside each local fixpoint, the per-round ``for rule: for position:``
sweep is replaced by a precomputed **delta agenda** — an index from each
same-component delta predicate to the ``(rule, kernel, position)``
variants it can fire — so a round touches only the rules a non-empty
delta can actually feed; everything else is skipped wholesale (counted
by ``scheduler.agenda_skipped``).

The scheduler changes *when* instantiations are enumerated, never *which*
ones: every rule-body instantiation that holds in the final model is
enumerated exactly once under both schedulers, so derived fact sets,
``facts_derived``, and ``inferences`` are identical to the global loop
(pinned by ``tests/test_scheduler_differential.py``; the global loop is
kept as the differential oracle, mirroring the ``executor=`` convention).
``iterations`` counts evaluation passes — one per non-recursive
component plus one per local round of each recursive component — and is
**not** comparable 1:1 to global round counts.

Budget semantics are preserved: one
:class:`~repro.engine.budget.Checkpoint` spans all components, checked at
every component boundary and local round.  A trip yields a sound partial
database with a *prefix property*: components earlier in the
condensation order are fully closed, the tripped component is partially
derived, later components are untouched — every fact present is
derivable (the iteration is inflationary).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..analysis.dependency import DependencyGraph
from ..datalog.rules import Program, Rule
from ..facts.database import Database
from ..facts.relation import Relation, StampedView
from ..obs import get_metrics
from .budget import Checkpoint, EvaluationBudget, ensure_checkpoint
from .columnar import DEFAULT_STORAGE, as_storage
from .counters import EvaluationStats
from .kernel import DEFAULT_EXECUTOR, compile_executors, head_rows
from .matching import compile_rule
from .planner import JoinPlanner

__all__ = [
    "SCHEDULERS",
    "DEFAULT_SCHEDULER",
    "resolve_scheduler",
    "Component",
    "Schedule",
    "build_schedule",
    "component_planner",
    "scc_seminaive_fixpoint",
    "scc_naive_fixpoint",
]

SCHEDULERS = ("scc", "global", "parallel")

# The default is overridable via REPRO_SCHEDULER so a CI leg (or an
# operator) can route every default-scheduler call through the parallel
# path without touching call sites; an unknown value fails at import
# rather than silently falling back.
DEFAULT_SCHEDULER = os.environ.get("REPRO_SCHEDULER", "scc")
if DEFAULT_SCHEDULER not in SCHEDULERS:
    raise ValueError(
        f"REPRO_SCHEDULER={DEFAULT_SCHEDULER!r} is not one of {SCHEDULERS}"
    )


def resolve_scheduler(scheduler: str) -> str:
    """Validate a ``scheduler=`` argument (every bottom-up engine accepts
    one)."""
    if scheduler not in SCHEDULERS:
        raise ValueError(
            f"unknown scheduler {scheduler!r}; choose from {SCHEDULERS}"
        )
    return scheduler


@dataclass(frozen=True)
class Component:
    """One rule-bearing SCC of the program's dependency graph.

    Attributes:
        predicates: all predicates of the SCC (for rule-bearing
            components this equals ``derived`` — an EDB predicate has no
            defining rule, hence no incoming dependency edge, hence
            cannot sit on a cycle with an IDB predicate).
        derived: the component's IDB predicates — the "derived" set of
            its local fixpoint.
        recursive: True iff the component is a genuine cycle (more than
            one member, or a single self-dependent predicate).
        rules: the program rules whose head lies in the component, in
            program order.
    """

    predicates: frozenset[str]
    derived: frozenset[str]
    recursive: bool
    rules: tuple[Rule, ...]


@dataclass(frozen=True)
class Schedule:
    """The program's rule-bearing components, dependencies first."""

    components: tuple[Component, ...]

    @property
    def recursive_count(self) -> int:
        return sum(1 for component in self.components if component.recursive)


def build_schedule(program: Program) -> Schedule:
    """Condense *program* into evaluation order.

    Components are :meth:`DependencyGraph.condensation_order` filtered to
    those defining at least one rule (pure-EDB singletons have nothing to
    evaluate); every proper rule lands in exactly one component — the one
    holding its head predicate.
    """
    graph = DependencyGraph(program)
    idb = program.idb_predicates
    successors = graph.successors
    components: list[Component] = []
    for scc in graph.condensation_order():
        derived = scc & idb
        if not derived:
            continue
        rules = tuple(
            rule
            for rule in program.proper_rules
            if rule.head.predicate in derived
        )
        if len(scc) > 1:
            recursive = True
        else:
            (predicate,) = scc
            recursive = predicate in successors.get(predicate, frozenset())
        components.append(Component(scc, frozenset(derived), recursive, rules))
    return Schedule(tuple(components))


def component_planner(
    planner: "JoinPlanner | str | bool | None",
    database: Database,
    component: Component,
) -> JoinPlanner | None:
    """Resolve a planner spec for one component's compilation.

    Mirrors :func:`repro.engine.planner.resolve_planner`, but the
    ``unknown`` set shrinks to the component's own predicates: everything
    in lower components is materialised by the time the component is
    planned, so the planner reads their *real* statistics instead of the
    small-IDB default.  A caller-supplied :class:`JoinPlanner` instance
    is used unchanged for every component (its configuration is the
    caller's business).
    """
    if planner is None or planner is False:
        return None
    if isinstance(planner, JoinPlanner):
        return planner
    if planner is True or planner == "greedy":
        return JoinPlanner(database, unknown=component.derived)
    raise ValueError(
        f"unknown planner {planner!r}; use None, 'greedy', or a JoinPlanner"
    )


def _full_view(database: Database):
    """A RelationView reading every position from *database*."""

    def view(position: int, predicate: str) -> Relation | None:
        try:
            return database.relation(predicate)
        except KeyError:
            return None

    return view


def _observe_schedule(obs, schedule: Schedule) -> None:
    if obs.enabled:
        obs.observe("scheduler.components", len(schedule.components))
        obs.observe("scheduler.recursive_components", schedule.recursive_count)


def _single_pass(
    executors,
    working: Database,
    stats: EvaluationStats,
    checkpoint: Checkpoint | None,
) -> None:
    """One rule application for a non-recursive component.

    The component's single predicate never occurs in its own rule bodies
    (that would make it recursive), so inserting heads directly as they
    are enumerated is equivalent to the collect-then-merge discipline.
    """
    view = _full_view(working)
    for compiled, kernel in executors:
        target = working.relation(compiled.head_predicate)
        # batch=True is sound here despite the direct inserts: the
        # component is non-recursive, so no rule body scans the relation
        # being inserted into.
        for row in head_rows(
            compiled, kernel, view, stats, checkpoint, batch=True
        ):
            stats.inferences += 1
            if target.add(row):
                stats.facts_derived += 1


def _component_seminaive(
    component: Component,
    executors,
    working: Database,
    arities,
    stats: EvaluationStats,
    checkpoint: Checkpoint | None,
    obs,
) -> int:
    """Local semi-naive fixpoint of one recursive component.

    Identical round discipline to the global loop
    (:func:`repro.engine.seminaive.seminaive_fixpoint`), restricted to
    ``component.derived``; lower-component predicates read full concrete
    relations at every position.  Returns the number of local rounds.
    """
    from .seminaive import _RoundView, _variant_positions

    derived = component.derived
    relations = {predicate: working.relation(predicate) for predicate in derived}

    # The delta agenda: delta predicate -> the (rule, kernel, position)
    # variants a non-empty delta of that predicate can fire.  Computed
    # once; rounds iterate only the agenda buckets with work to do.  Each
    # entry carries its head relation and a reusable round view — rounds
    # update the view's delta/old bindings in place instead of
    # re-allocating per variant per round.
    old: dict[str, StampedView] = {}
    agenda_map: dict[str, list] = {}
    for compiled, kernel in executors:
        target = working.relation(compiled.head_predicate)
        for position in _variant_positions(compiled, derived):
            view = _RoundView(working, position, None, old, derived)
            agenda_map.setdefault(
                compiled.body[position].predicate, []
            ).append((compiled, kernel, target, view))
    agenda = tuple(
        (predicate, tuple(agenda_map[predicate]))
        for predicate in sorted(agenda_map)
    )

    # --- local round 0: one application against the full database -------
    if checkpoint is not None:
        checkpoint.check_round()
    stats.iterations += 1
    delta: dict[str, Relation] = {
        predicate: working.spawn(predicate, arities[predicate])
        for predicate in derived
    }
    stamp = 1
    view = _full_view(working)
    with obs.timer("round"):
        for compiled, kernel in executors:
            target = relations[compiled.head_predicate]
            bucket = delta[compiled.head_predicate]
            for row in head_rows(
                compiled, kernel, view, stats, checkpoint, batch=True
            ):
                stats.inferences += 1
                if row not in target:
                    bucket.add(row)
        for predicate in derived:
            relation = relations[predicate]
            relation.mark_round(stamp)
            for row in delta[predicate]:
                if relation.add(row):
                    stats.facts_derived += 1
    if obs.enabled:
        obs.observe(
            "seminaive.delta_rows",
            sum(len(delta[predicate]) for predicate in derived),
        )

    # --- local delta rounds ---------------------------------------------
    rounds = 1
    while any(delta[predicate] for predicate in derived):
        if checkpoint is not None:
            checkpoint.check_round()
        stats.iterations += 1
        rounds += 1
        skipped = 0
        with obs.timer("round"):
            for predicate in derived:
                old[predicate] = relations[predicate].rows_before(stamp)
            new_delta: dict[str, Relation] = {
                predicate: working.spawn(predicate, arities[predicate])
                for predicate in derived
            }
            for predicate, entries in agenda:
                delta_relation = delta[predicate]
                if not delta_relation:
                    skipped += len(entries)
                    continue
                for compiled, kernel, target, round_view in entries:
                    round_view.delta_relation = delta_relation
                    bucket = new_delta[compiled.head_predicate]
                    for row in head_rows(
                        compiled, kernel, round_view, stats, checkpoint,
                        batch=True,
                    ):
                        stats.inferences += 1
                        if row not in target:
                            bucket.add(row)
            stamp += 1
            for predicate in derived:
                relation = relations[predicate]
                relation.mark_round(stamp)
                for row in new_delta[predicate]:
                    if relation.add(row):
                        stats.facts_derived += 1
        if obs.enabled:
            obs.incr("seminaive.stamped_rounds")
            if skipped:
                obs.incr("scheduler.agenda_skipped", skipped)
            obs.observe(
                "seminaive.delta_rows",
                sum(len(new_delta[predicate]) for predicate in derived),
            )
        delta = new_delta
    return rounds


def scc_seminaive_fixpoint(
    program: Program,
    database: Database | None = None,
    stats: EvaluationStats | None = None,
    planner: "JoinPlanner | str | None" = None,
    budget: "EvaluationBudget | Checkpoint | None" = None,
    executor: str = DEFAULT_EXECUTOR,
    storage: str = DEFAULT_STORAGE,
) -> tuple[Database, EvaluationStats]:
    """Component-wise semi-naive evaluation of *program* (see module
    docstring).  Called through
    :func:`repro.engine.seminaive.seminaive_fixpoint` with
    ``scheduler="scc"`` (the default)."""
    stats = stats if stats is not None else EvaluationStats()
    obs = get_metrics()
    working = as_storage(database, storage)
    working.add_atoms(program.facts)
    arities = program.arities
    for predicate in program.idb_predicates:
        working.relation(predicate, arities[predicate])
    schedule = build_schedule(program)
    checkpoint = ensure_checkpoint(budget, stats)
    if checkpoint is not None:
        checkpoint.bind(working)
    _observe_schedule(obs, schedule)
    with obs.timer("seminaive"):
        for component in schedule.components:
            active_planner = component_planner(planner, working, component)
            compiled_rules = [
                compile_rule(rule, active_planner) for rule in component.rules
            ]
            executors = compile_executors(
                compiled_rules, executor, getattr(working, "interner", None)
            )
            if not component.recursive:
                if checkpoint is not None:
                    checkpoint.check_round()
                stats.iterations += 1
                with obs.timer("round"):
                    _single_pass(executors, working, stats, checkpoint)
            else:
                rounds = _component_seminaive(
                    component, executors, working, arities, stats,
                    checkpoint, obs,
                )
                if obs.enabled:
                    obs.observe("scheduler.component_rounds", rounds)
    if obs.enabled:
        obs.incr("seminaive.runs")
        obs.observe("seminaive.iterations", stats.iterations)
    return working, stats


def scc_naive_fixpoint(
    program: Program,
    database: Database | None = None,
    stats: EvaluationStats | None = None,
    planner: "JoinPlanner | str | None" = None,
    budget: "EvaluationBudget | Checkpoint | None" = None,
    executor: str = DEFAULT_EXECUTOR,
    storage: str = DEFAULT_STORAGE,
) -> tuple[Database, EvaluationStats]:
    """Component-wise naive evaluation: non-recursive components get one
    pass, recursive components iterate their own rules to a local
    fixpoint.  Called through
    :func:`repro.engine.naive.naive_fixpoint` with ``scheduler="scc"``."""
    from .naive import apply_rules_once

    stats = stats if stats is not None else EvaluationStats()
    obs = get_metrics()
    working = as_storage(database, storage)
    working.add_atoms(program.facts)
    arities = program.arities
    for predicate in program.idb_predicates:
        working.relation(predicate, arities[predicate])
    schedule = build_schedule(program)
    checkpoint = ensure_checkpoint(budget, stats)
    if checkpoint is not None:
        checkpoint.bind(working)
    _observe_schedule(obs, schedule)
    with obs.timer("naive"):
        for component in schedule.components:
            active_planner = component_planner(planner, working, component)
            compiled_rules = [
                compile_rule(rule, active_planner) for rule in component.rules
            ]
            executors = compile_executors(
                compiled_rules, executor, getattr(working, "interner", None)
            )
            kernels = [kernel for _, kernel in executors]
            if not component.recursive:
                if checkpoint is not None:
                    checkpoint.check_round()
                stats.iterations += 1
                with obs.timer("round"):
                    _single_pass(executors, working, stats, checkpoint)
                continue
            rounds = 0
            changed = True
            while changed:
                if checkpoint is not None:
                    checkpoint.check_round()
                stats.iterations += 1
                rounds += 1
                changed = False
                new_rows = 0
                with obs.timer("round"):
                    for predicate, row in apply_rules_once(
                        compiled_rules, working, stats, checkpoint, kernels
                    ):
                        if working.add(predicate, row):
                            stats.facts_derived += 1
                            new_rows += 1
                            changed = True
                if obs.enabled:
                    obs.observe("naive.delta_rows", new_rows)
            if obs.enabled:
                obs.observe("scheduler.component_rounds", rounds)
    if obs.enabled:
        obs.incr("naive.runs")
        obs.observe("naive.iterations", stats.iterations)
    return working, stats
