"""Stratified bottom-up evaluation with negation.

The program is split into strata (:mod:`repro.analysis.stratify`); each
stratum is evaluated to fixpoint — semi-naive by default — against the
database completed by all lower strata.  Within a stratum, every negative
literal refers to a lower stratum's predicate, so its relation is already
complete and negation-as-failure is sound (this is the perfect-model
semantics of Apt–Blair–Walker / Van Gelder).
"""

from __future__ import annotations

from typing import Callable

from ..datalog.rules import Program
from ..facts.database import Database
from ..obs import get_metrics
from .budget import Checkpoint, EvaluationBudget, ensure_checkpoint
from .columnar import DEFAULT_STORAGE, as_storage
from .counters import EvaluationStats
from .kernel import DEFAULT_EXECUTOR
from .naive import naive_fixpoint
from .scheduler import DEFAULT_SCHEDULER
from .seminaive import seminaive_fixpoint

__all__ = ["stratified_fixpoint"]

# A fixpoint engine: (program, database, stats) -> (database, stats).
FixpointEngine = Callable[
    [Program, Database, EvaluationStats], tuple[Database, EvaluationStats]
]


def stratified_fixpoint(
    program: Program,
    database: Database | None = None,
    stats: EvaluationStats | None = None,
    engine: str = "seminaive",
    planner: "str | None" = None,
    budget: "EvaluationBudget | Checkpoint | None" = None,
    executor: str = DEFAULT_EXECUTOR,
    scheduler: str = DEFAULT_SCHEDULER,
    storage: str = DEFAULT_STORAGE,
    workers: "int | None" = None,
) -> tuple[Database, EvaluationStats]:
    """Evaluate a stratifiable program, stratum by stratum.

    Args:
        program: rules (may use negation); embedded facts are loaded.
        database: extensional facts; copied, never mutated.
        stats: optional counter record to accumulate into.
        engine: ``"seminaive"`` (default) or ``"naive"`` — the per-stratum
            fixpoint engine (the A2 ablation flips this).
        planner: optional join-planner spec forwarded to each per-stratum
            fixpoint; passed as a *spec* (e.g. ``"greedy"``) so every
            stratum plans against the database completed by the strata
            below it — lower-stratum IDB relations are then materialised
            and their real statistics inform the plan.
        budget: optional :class:`repro.engine.budget.EvaluationBudget`
            (or an already-running checkpoint).  One checkpoint spans all
            strata — the clock and counters accumulate across the whole
            stratified run, not per stratum.
        executor: forwarded to every per-stratum fixpoint (``"kernel"``
            default, ``"interpreted"`` for the oracle matcher).
        scheduler: forwarded to every per-stratum fixpoint (``"scc"``
            default — each stratum is further condensed into dependency
            components; ``"parallel"`` for the worker-pool variant;
            ``"global"`` for the monolithic oracle loop).
        storage: forwarded to every per-stratum fixpoint (``"tuples"``
            default, ``"columnar"`` for the interned backend).  The
            database is converted once up front, so each stratum's
            fixpoint takes the cheap same-backend copy path.
        workers: forwarded to every per-stratum fixpoint; worker-pool
            size for ``scheduler="parallel"`` (``None`` = one per CPU
            core).

    Returns:
        The completed database and statistics.

    Raises:
        StratificationError: when the program is not stratifiable.
    """
    from ..analysis.stratify import stratify

    stats = stats if stats is not None else EvaluationStats()
    obs = get_metrics()
    fixpoint = seminaive_fixpoint if engine == "seminaive" else naive_fixpoint
    working = as_storage(database, storage)
    working.add_atoms(program.facts)
    stratification = stratify(program)
    checkpoint = ensure_checkpoint(budget, stats)
    with obs.timer("stratified"):
        for index, stratum in enumerate(stratification.strata):
            with obs.timer(f"stratum{index}"):
                working, _ = fixpoint(
                    stratum,
                    working,
                    stats,
                    planner=planner,
                    budget=checkpoint,
                    executor=executor,
                    scheduler=scheduler,
                    storage=storage,
                    workers=workers,
                )
    if obs.enabled:
        obs.observe("stratified.strata", len(stratification.strata))
    return working, stats
