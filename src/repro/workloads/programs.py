"""Canonical Datalog scenarios: the programs the 1980s literature (and
this reproduction's experiment suite) evaluates on.

A :class:`Scenario` bundles a program, a database, and representative
queries.  Builders are parameterised by graph shape and size so the bench
harness can sweep them.

Program variants of transitive closure, following the terminology of the
magic-sets papers:

* ``right`` (right-linear): ``anc(X,Y) :- par(X,Z), anc(Z,Y).``
* ``left``  (left-linear):  ``anc(X,Y) :- anc(X,Z), par(Z,Y).``
* ``nonlinear``:            ``anc(X,Y) :- anc(X,Z), anc(Z,Y).``
* ``double`` — both linear rules together (redundant derivations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from ..datalog.atoms import Atom
from ..datalog.parser import parse_program, parse_query
from ..datalog.rules import Program
from ..facts.database import Database
from . import graphs

__all__ = [
    "Scenario",
    "ancestor",
    "bounded_reachability",
    "same_generation",
    "nonlinear_tc",
    "unreachable",
    "bill_of_materials",
    "win_game",
    "GRAPH_BUILDERS",
    "make_edges",
]

GRAPH_BUILDERS: Mapping[str, Callable[..., list[tuple[int, int]]]] = {
    "chain": graphs.chain,
    "cycle": graphs.cycle,
    "tree": graphs.balanced_tree,
    "random": graphs.random_digraph,
    "grid": graphs.grid,
    "complete": graphs.complete,
    "dag": graphs.layered_dag,
    "star": graphs.star,
}


def make_edges(kind: str, **params) -> list[tuple[int, int]]:
    """Build an edge list by graph-kind name (see :data:`GRAPH_BUILDERS`)."""
    try:
        builder = GRAPH_BUILDERS[kind]
    except KeyError:
        raise ValueError(
            f"unknown graph kind {kind!r}; choose from {sorted(GRAPH_BUILDERS)}"
        ) from None
    return builder(**params)


@dataclass(frozen=True)
class Scenario:
    """A program + database + representative queries."""

    name: str
    program: Program
    database: Database
    queries: tuple[Atom, ...]
    description: str

    def query(self, index: int = 0) -> Atom:
        return self.queries[index]


_ANCESTOR_VARIANTS = {
    "right": """
        anc(X,Y) :- par(X,Y).
        anc(X,Y) :- par(X,Z), anc(Z,Y).
    """,
    "left": """
        anc(X,Y) :- par(X,Y).
        anc(X,Y) :- anc(X,Z), par(Z,Y).
    """,
    "nonlinear": """
        anc(X,Y) :- par(X,Y).
        anc(X,Y) :- anc(X,Z), anc(Z,Y).
    """,
    "double": """
        anc(X,Y) :- par(X,Y).
        anc(X,Y) :- par(X,Z), anc(Z,Y).
        anc(X,Y) :- anc(X,Z), par(Z,Y).
    """,
}


def ancestor(
    graph: str = "chain",
    variant: str = "right",
    source: int | None = 0,
    **graph_params,
) -> Scenario:
    """The ancestor / transitive-closure scenario.

    Args:
        graph: graph kind for the ``par`` relation.
        variant: recursion shape (see module docstring).
        source: bound first argument of the default query; ``None`` asks
            the fully open query ``anc(X, Y)``.
        graph_params: forwarded to the graph builder (e.g. ``n=32``).
    """
    if variant not in _ANCESTOR_VARIANTS:
        raise ValueError(
            f"unknown ancestor variant {variant!r}; "
            f"choose from {sorted(_ANCESTOR_VARIANTS)}"
        )
    edges = make_edges(graph, **graph_params)
    database = Database()
    for u, v in edges:
        database.add("par", (u, v))
    program = parse_program(_ANCESTOR_VARIANTS[variant])
    if source is None:
        queries = (parse_query("anc(X, Y)?"),)
    else:
        queries = (
            parse_query(f"anc({source}, X)?"),
            parse_query("anc(X, Y)?"),
        )
    return Scenario(
        name=f"ancestor-{variant}-{graph}",
        program=program,
        database=database,
        queries=queries,
        description=(
            f"{variant}-linear ancestor over a {graph} graph "
            f"({len(edges)} edges)"
        ),
    )


def same_generation(depth: int = 4, branching: int = 2) -> Scenario:
    """The same-generation scenario over a balanced tree.

    ``up`` points child -> parent, ``down`` parent -> child, ``flat``
    links each node to itself's sibling level via the root... more
    precisely ``flat`` holds the sibling pairs of the root's children, the
    classical seeding.
    """
    edges = graphs.balanced_tree(depth, branching)
    database = Database()
    children_of_root = [v for (u, v) in edges if u == 0]
    for u, v in edges:
        database.add("up", (v, u))
        database.add("down", (u, v))
    # Flat: sibling pairs directly under the root.
    for left in children_of_root:
        for right in children_of_root:
            if left != right:
                database.add("flat", (left, right))
    program = parse_program(
        """
        sg(X,Y) :- flat(X,Y).
        sg(X,Y) :- up(X,U), sg(U,V), down(V,Y).
        """
    )
    leaves = sorted(
        set(v for _, v in edges) - set(u for u, _ in edges)
    )
    bound = leaves[0] if leaves else 0
    return Scenario(
        name=f"same-generation-d{depth}b{branching}",
        program=program,
        database=database,
        queries=(
            parse_query(f"sg({bound}, X)?"),
            parse_query("sg(X, Y)?"),
        ),
        description=(
            f"same generation over a balanced tree "
            f"(depth {depth}, branching {branching}, {len(edges)} edges)"
        ),
    )


def nonlinear_tc(graph: str = "chain", source: int | None = 0, **graph_params) -> Scenario:
    """Non-linear transitive closure (the doubling recursion)."""
    return ancestor(graph=graph, variant="nonlinear", source=source, **graph_params)


def unreachable(graph: str = "random", **graph_params) -> Scenario:
    """Two-strata scenario: reachability plus its negation.

    ``unreach(X, Y)`` holds for node pairs with no directed path — the
    canonical stratified-negation example (T6).
    """
    graph_params.setdefault("n", 8)
    if graph == "random":
        graph_params.setdefault("edge_probability", 0.2)
    edges = make_edges(graph, **graph_params)
    database = Database()
    node_list = graphs.nodes_of(edges) or [0]
    for u, v in edges:
        database.add("e", (u, v))
    for node in node_list:
        database.add("node", (node,))
    program = parse_program(
        """
        reach(X,Y) :- e(X,Y).
        reach(X,Y) :- e(X,Z), reach(Z,Y).
        unreach(X,Y) :- node(X), node(Y), not reach(X,Y).
        """
    )
    bound = node_list[0]
    return Scenario(
        name=f"unreachable-{graph}",
        program=program,
        database=database,
        queries=(
            parse_query(f"unreach({bound}, X)?"),
            parse_query("unreach(X, Y)?"),
        ),
        description=(
            f"unreachable pairs over a {graph} graph "
            f"({len(node_list)} nodes, {len(edges)} edges) — stratified negation"
        ),
    )


def bill_of_materials(depth: int = 4, branching: int = 2, banned_every: int = 5) -> Scenario:
    """A bill-of-materials scenario with an exclusion list.

    ``subpart`` is the part tree; ``needs`` its transitive closure;
    ``banned`` marks every ``banned_every``-th part; ``clean(X, Y)``
    holds when assembly X transitively needs Y and no banned part sits in
    X's closure — a three-stratum program.
    """
    edges = graphs.balanced_tree(depth, branching)
    database = Database()
    parts = graphs.nodes_of(edges) or [0]
    for u, v in edges:
        database.add("subpart", (u, v))
    for part in parts:
        database.add("part", (part,))
        if banned_every and part % banned_every == banned_every - 1:
            database.add("banned", (part,))
    program = parse_program(
        """
        needs(X,Y) :- subpart(X,Y).
        needs(X,Y) :- subpart(X,Z), needs(Z,Y).
        tainted(X) :- needs(X,Y), banned(Y).
        tainted(X) :- banned(X).
        clean(X,Y) :- needs(X,Y), not tainted(X).
        """
    )
    return Scenario(
        name=f"bom-d{depth}b{branching}",
        program=program,
        database=database,
        queries=(
            parse_query("clean(0, X)?"),
            parse_query("tainted(X)?"),
            parse_query("clean(X, Y)?"),
        ),
        description=(
            f"bill of materials with exclusions over a part tree "
            f"(depth {depth}, branching {branching})"
        ),
    )


def bounded_reachability(
    graph: str = "chain", bound: int | None = None, **graph_params
) -> Scenario:
    """Reachability restricted to targets below a numeric bound.

    Exercises the comparison built-ins through recursion: the guard
    ``Y <= bound`` sits inside both rules, so every engine must delay it
    until ``Y`` is bound and every transformation must carry it inline.
    """
    graph_params.setdefault("n", 12)
    edges = make_edges(graph, **graph_params)
    nodes = graphs.nodes_of(edges) or [0]
    if bound is None:
        bound = nodes[len(nodes) // 2]
    database = Database()
    for u, v in edges:
        database.add("e", (u, v))
    program = parse_program(
        f"""
        low(X,Y) :- e(X,Y), Y <= {bound}.
        low(X,Y) :- e(X,Z), low(Z,Y), Y <= {bound}.
        """
    )
    source = nodes[0]
    return Scenario(
        name=f"bounded-reach-{graph}-b{bound}",
        program=program,
        database=database,
        queries=(
            parse_query(f"low({source}, Y)?"),
            parse_query("low(X, Y)?"),
        ),
        description=(
            f"reachability over a {graph} graph restricted to targets "
            f"<= {bound} (comparison built-ins)"
        ),
    )


def win_game(graph: str = "chain", **graph_params) -> Scenario:
    """The win/lose game — deliberately NOT stratifiable.

    ``win(X) :- move(X,Y), not win(Y)`` depends negatively on itself; the
    test suite uses this scenario to check that the analysis layer rejects
    it and the engines refuse it cleanly (well-founded semantics is out of
    scope; see DESIGN.md future work).
    """
    graph_params.setdefault("n", 8)
    edges = make_edges(graph, **graph_params)
    database = Database()
    for u, v in edges:
        database.add("move", (u, v))
    program = parse_program("win(X) :- move(X,Y), not win(Y).")
    return Scenario(
        name=f"win-{graph}",
        program=program,
        database=database,
        queries=(parse_query("win(0)?"), parse_query("win(X)?")),
        description="the win/lose game (not stratifiable; rejection test)",
    )
