"""Workload generators: graph shapes and canonical Datalog scenarios."""

from . import graphs
from .programs import (
    GRAPH_BUILDERS,
    Scenario,
    ancestor,
    bounded_reachability,
    bill_of_materials,
    make_edges,
    nonlinear_tc,
    same_generation,
    unreachable,
    win_game,
)

__all__ = [
    "graphs",
    "GRAPH_BUILDERS",
    "Scenario",
    "ancestor",
    "bounded_reachability",
    "bill_of_materials",
    "make_edges",
    "nonlinear_tc",
    "same_generation",
    "unreachable",
    "win_game",
]
