"""Deterministic graph generators for the workload suite.

All generators return a list of ``(source, target)`` edge tuples over
integer-labelled nodes ``0..n-1`` (converted to whatever predicate the
scenario builder chooses).  Randomised generators take an explicit seed,
so every benchmark row is reproducible.

These shapes are the conventional test beds of the 1986–89 recursive
query literature: chains and cycles stress linear recursion depth, trees
give fan-out with unique paths, random digraphs mix path multiplicity,
and grids give quadratic reachable sets.
"""

from __future__ import annotations

import random
from typing import Iterable

__all__ = [
    "chain",
    "cycle",
    "balanced_tree",
    "random_digraph",
    "grid",
    "complete",
    "layered_dag",
    "star",
    "nodes_of",
]

Edge = tuple[int, int]


def chain(n: int) -> list[Edge]:
    """A simple path ``0 -> 1 -> ... -> n-1`` (n nodes, n-1 edges)."""
    _require_positive(n, "n")
    return [(i, i + 1) for i in range(n - 1)]


def cycle(n: int) -> list[Edge]:
    """A directed cycle over n nodes (n edges)."""
    _require_positive(n, "n")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return edges


def balanced_tree(depth: int, branching: int = 2) -> list[Edge]:
    """A rooted, complete tree of the given depth and branching factor.

    Edges point parent -> child; node 0 is the root.  A ``depth`` of 0 is
    a single node with no edges.
    """
    if depth < 0:
        raise ValueError("depth must be >= 0")
    _require_positive(branching, "branching")
    edges: list[Edge] = []
    next_node = 1
    frontier = [0]
    for _ in range(depth):
        new_frontier = []
        for parent in frontier:
            for _ in range(branching):
                edges.append((parent, next_node))
                new_frontier.append(next_node)
                next_node += 1
        frontier = new_frontier
    return edges


def random_digraph(n: int, edge_probability: float, seed: int = 0) -> list[Edge]:
    """An Erdős–Rényi style digraph: each ordered pair (u, v), u != v, is
    an edge with the given probability."""
    _require_positive(n, "n")
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError("edge_probability must be within [0, 1]")
    rng = random.Random(seed)
    edges: list[Edge] = []
    for source in range(n):
        for target in range(n):
            if source != target and rng.random() < edge_probability:
                edges.append((source, target))
    return edges


def grid(width: int, height: int) -> list[Edge]:
    """A directed grid: edges go right and down; node = row*width + col."""
    _require_positive(width, "width")
    _require_positive(height, "height")
    edges: list[Edge] = []
    for row in range(height):
        for col in range(width):
            node = row * width + col
            if col + 1 < width:
                edges.append((node, node + 1))
            if row + 1 < height:
                edges.append((node, node + width))
    return edges


def complete(n: int) -> list[Edge]:
    """The complete digraph on n nodes (no self-loops)."""
    _require_positive(n, "n")
    return [(u, v) for u in range(n) for v in range(n) if u != v]


def layered_dag(layers: int, width: int, seed: int = 0, density: float = 0.5) -> list[Edge]:
    """A layered DAG: ``layers`` layers of ``width`` nodes; each node gets
    edges to a random subset of the next layer (at least one)."""
    _require_positive(layers, "layers")
    _require_positive(width, "width")
    rng = random.Random(seed)
    edges: list[Edge] = []
    for layer in range(layers - 1):
        base = layer * width
        next_base = (layer + 1) * width
        for offset in range(width):
            source = base + offset
            targets = [
                next_base + t for t in range(width) if rng.random() < density
            ]
            if not targets:
                targets = [next_base + rng.randrange(width)]
            edges.extend((source, target) for target in targets)
    return edges


def star(n: int, outward: bool = True) -> list[Edge]:
    """A star over n nodes: node 0 is the hub."""
    _require_positive(n, "n")
    if outward:
        return [(0, i) for i in range(1, n)]
    return [(i, 0) for i in range(1, n)]


def nodes_of(edges: Iterable[Edge]) -> list[int]:
    """The sorted node set touched by *edges*."""
    seen: set[int] = set()
    for source, target in edges:
        seen.add(source)
        seen.add(target)
    return sorted(seen)


def _require_positive(value: int, name: str) -> None:
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
