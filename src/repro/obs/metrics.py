"""The metrics registry: wall-clock timers, counters, and histograms.

One :class:`Metrics` object collects everything an instrumented run
produces:

* **timers** — monotonic (``time.perf_counter``) wall-clock spans opened
  with :meth:`Metrics.timer`.  Timers nest: a timer opened while another
  is active records under the slash-joined path of the active stack
  (``"stratified/stratum0/seminaive"``), so one registry captures the
  whole call tree of a structured evaluation.
* **counters** — monotonically increasing integers
  (:meth:`Metrics.incr`); :meth:`Metrics.fold_stats` folds a whole
  :class:`repro.engine.counters.EvaluationStats` record in under a
  prefix, so the classical inference counters and the new timing data
  travel through one interface.
* **histograms** — summary statistics (count/total/min/max/last) of
  observed values (:meth:`Metrics.observe`); the engines feed these with
  per-iteration delta sizes and table growth.

Instrumentation points call :func:`get_metrics` and talk to whatever is
active.  By default that is the module-level :class:`NullMetrics`
singleton, whose recording methods are no-ops and whose timer is one
shared, stateless context manager — disabled instrumentation costs a
dictionary-free attribute lookup and an empty method call, nothing more.
Enable collection for a region with :func:`collect`::

    with collect() as metrics:
        run_strategy("alexander", program, query, database)
    print(metrics.snapshot())

The snapshot is plain JSON-serialisable data; the bench artifact layer
(:mod:`repro.obs.artifact`) embeds it verbatim.
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "TimerStat",
    "HistogramStat",
    "Metrics",
    "NullMetrics",
    "ThreadSafeMetrics",
    "NULL_METRICS",
    "get_metrics",
    "set_metrics",
    "collect",
    "thread_metrics",
    "merge_snapshots",
]


@dataclass
class TimerStat:
    """Aggregated wall-clock spans of one timer path (seconds)."""

    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = 0.0

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.minimum:
            self.minimum = seconds
        if seconds > self.maximum:
            self.maximum = seconds

    def merge(self, other: "TimerStat") -> None:
        """Fold *other*'s aggregates into self (empty stats are no-ops)."""
        if not other.count:
            return
        self.count += other.count
        self.total += other.total
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total_s": self.total,
            "mean_s": self.mean,
            "min_s": self.minimum if self.count else 0.0,
            "max_s": self.maximum,
        }


@dataclass
class HistogramStat:
    """Summary statistics of one observed series (e.g. delta sizes)."""

    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf
    last: float = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.last = value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def merge(self, other: "HistogramStat") -> None:
        """Fold *other*'s aggregates into self (empty stats are no-ops).

        ``last`` takes *other*'s value — merge callers are expected to
        fold registries in a deterministic order so the field stays
        reproducible.
        """
        if not other.count:
            return
        self.count += other.count
        self.total += other.total
        self.last = other.last
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "last": self.last,
        }


class _Span:
    """An open timer span; records into its registry on exit."""

    __slots__ = ("_metrics", "_name", "_path", "_start")

    def __init__(self, metrics: "Metrics", name: str):
        self._metrics = metrics
        self._name = name
        self._path = ""
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._path = self._metrics._push(self._name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        elapsed = time.perf_counter() - self._start
        self._metrics._pop(self._path, elapsed)


class _NullSpan:
    """The shared no-op span handed out by :class:`NullMetrics`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Metrics:
    """A live registry of timers, counters, and histograms."""

    enabled = True

    def __init__(self) -> None:
        self.timers: dict[str, TimerStat] = {}
        self.counters: dict[str, int] = {}
        self.histograms: dict[str, HistogramStat] = {}
        self._stack: list[str] = []

    # --- timers ---------------------------------------------------------------
    def timer(self, name: str):
        """A context manager timing one span under *name* (nest-aware)."""
        return _Span(self, name)

    def _push(self, name: str) -> str:
        path = f"{self._stack[-1]}/{name}" if self._stack else name
        self._stack.append(path)
        return path

    def _pop(self, path: str, elapsed: float) -> None:
        if self._stack and self._stack[-1] == path:
            self._stack.pop()
        stat = self.timers.get(path)
        if stat is None:
            stat = self.timers[path] = TimerStat()
        stat.record(elapsed)

    @property
    def depth(self) -> int:
        """How many timer spans are currently open."""
        return len(self._stack)

    # --- counters -------------------------------------------------------------
    def incr(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def fold_stats(self, stats, prefix: str = "engine") -> None:
        """Fold an ``EvaluationStats``-shaped record (anything exposing
        ``as_dict() -> Mapping[str, int]``) into the counters."""
        for key, value in stats.as_dict().items():
            self.incr(f"{prefix}.{key}", value)

    # --- histograms -----------------------------------------------------------
    def observe(self, name: str, value: float) -> None:
        stat = self.histograms.get(name)
        if stat is None:
            stat = self.histograms[name] = HistogramStat()
        stat.observe(value)

    # --- merging --------------------------------------------------------------
    def merge(self, other: "Metrics") -> None:
        """Fold every aggregate of *other* into this registry.

        Parallel evaluation gives each worker thread its own registry
        (via :func:`thread_metrics`) and folds them into the parent when
        the worker completes; callers merge workers in a fixed order so
        order-sensitive fields (histogram ``last``) stay deterministic.
        *other* is left untouched and must not be recording concurrently.
        """
        for name, stat in other.timers.items():
            mine = self.timers.get(name)
            if mine is None:
                mine = self.timers[name] = TimerStat()
            mine.merge(stat)
        for name, value in other.counters.items():
            self.incr(name, value)
        for name, stat in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = HistogramStat()
            mine.merge(stat)

    # --- export ---------------------------------------------------------------
    def snapshot(self) -> dict[str, dict]:
        """Everything collected so far, as plain JSON-serialisable data."""
        return {
            "timers": {name: stat.as_dict() for name, stat in sorted(self.timers.items())},
            "counters": dict(sorted(self.counters.items())),
            "histograms": {
                name: stat.as_dict() for name, stat in sorted(self.histograms.items())
            },
        }

    def reset(self) -> None:
        self.timers.clear()
        self.counters.clear()
        self.histograms.clear()
        self._stack.clear()


class NullMetrics(Metrics):
    """The disabled registry: every recording call is a no-op.

    Instrumented hot paths run against this by default; the overhead per
    hook is one global lookup plus one trivially inlined call, so engines
    need no ``if enabled`` guards of their own.
    """

    enabled = False

    def timer(self, name: str):
        return _NULL_SPAN

    def incr(self, name: str, amount: int = 1) -> None:
        return None

    def fold_stats(self, stats, prefix: str = "engine") -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def merge(self, other: "Metrics") -> None:
        return None


class ThreadSafeMetrics(Metrics):
    """A registry safe for concurrent recording from many threads.

    The query service (:mod:`repro.serve`) handles requests on a
    :class:`~http.server.ThreadingHTTPServer`, so many evaluations record
    into one registry at once.  Two adjustments make that sound:

    * counters, histograms, and timer aggregates are updated under one
      re-entrant lock (``incr`` on a plain dict is not atomic — the
      read-modify-write would drop updates under contention);
    * the timer *stack* is thread-local, so spans opened on different
      request threads nest within their own thread's call tree instead of
      interleaving into nonsense paths.

    Recording costs one uncontended lock acquisition per hook; the
    engines' hot loops only touch the registry at round boundaries, so
    the overhead is invisible next to evaluation work.  Snapshots are
    taken under the same lock and therefore internally consistent.
    """

    def __init__(self) -> None:
        super().__init__()
        self._lock = threading.RLock()
        self._local = threading.local()

    def _thread_stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, name: str) -> str:
        stack = self._thread_stack()
        path = f"{stack[-1]}/{name}" if stack else name
        stack.append(path)
        return path

    def _pop(self, path: str, elapsed: float) -> None:
        stack = self._thread_stack()
        if stack and stack[-1] == path:
            stack.pop()
        with self._lock:
            stat = self.timers.get(path)
            if stat is None:
                stat = self.timers[path] = TimerStat()
            stat.record(elapsed)

    @property
    def depth(self) -> int:
        """Open timer spans *on the calling thread*."""
        return len(self._thread_stack())

    def incr(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    def fold_stats(self, stats, prefix: str = "engine") -> None:
        with self._lock:
            super().fold_stats(stats, prefix)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            stat = self.histograms.get(name)
            if stat is None:
                stat = self.histograms[name] = HistogramStat()
            stat.observe(value)

    def merge(self, other: "Metrics") -> None:
        with self._lock:
            super().merge(other)

    def snapshot(self) -> dict[str, dict]:
        with self._lock:
            return super().snapshot()

    def reset(self) -> None:
        with self._lock:
            self.timers.clear()
            self.counters.clear()
            self.histograms.clear()
        self._thread_stack().clear()


NULL_METRICS = NullMetrics()

_active: Metrics = NULL_METRICS

_tls = threading.local()


def get_metrics() -> Metrics:
    """The registry instrumentation points should record into.

    A thread-local override installed by :func:`thread_metrics` wins over
    the process-wide registry — that is how parallel evaluation routes
    each worker thread's instrumentation into a private registry (the
    default :class:`Metrics` is single-threaded by design) without the
    workers knowing they are workers.
    """
    override = getattr(_tls, "active", None)
    if override is not None:
        return override
    return _active


def set_metrics(metrics: Metrics | None) -> Metrics:
    """Install *metrics* as the active registry; returns the previous one.

    Passing ``None`` restores the disabled default.
    """
    global _active
    previous = _active
    _active = metrics if metrics is not None else NULL_METRICS
    return previous


@contextmanager
def collect(metrics: Metrics | None = None) -> Iterator[Metrics]:
    """Activate a registry for the duration of a ``with`` block.

    Args:
        metrics: registry to activate; a fresh :class:`Metrics` when
            omitted.  The previously active registry (usually the
            disabled default) is restored on exit, even on error.
    """
    registry = metrics if metrics is not None else Metrics()
    previous = set_metrics(registry)
    try:
        yield registry
    finally:
        set_metrics(previous)


@contextmanager
def thread_metrics(metrics: Metrics) -> Iterator[Metrics]:
    """Route the *calling thread's* :func:`get_metrics` to *metrics*.

    Unlike :func:`collect` (which swaps the process-wide registry), this
    installs a thread-local override, so other threads keep recording
    into whatever is globally active.  Parallel workers run their
    component under this and hand the private registry back to the
    coordinator, which :meth:`Metrics.merge`\\ s the workers in schedule
    order.  The previous override (usually none) is restored on exit.
    """
    previous = getattr(_tls, "active", None)
    _tls.active = metrics
    try:
        yield metrics
    finally:
        _tls.active = previous


def merge_snapshots(*snapshots: dict) -> dict:
    """Fold already-exported :meth:`Metrics.snapshot` dicts into one.

    :meth:`Metrics.merge` needs live registries; the multiprocess server
    only has each worker's *snapshot* (shipped over a pipe as plain
    JSON-able data), so the fold happens on the export format instead:
    counters sum, timer/histogram counts and totals sum, means are
    recomputed from the sums, min/max take the extrema across inputs
    (entries with ``count == 0`` contribute nothing to the extrema), and
    histogram ``last`` takes the value from the latest input that
    observed anything — callers pass snapshots in a deterministic order
    (dispatcher first, then workers by slot index).  Inputs are left
    untouched; missing sections are treated as empty.
    """
    counters: dict[str, int] = {}
    timers: dict[str, dict] = {}
    histograms: dict[str, dict] = {}
    for snapshot in snapshots:
        if not snapshot:
            continue
        for name, value in (snapshot.get("counters") or {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, stat in (snapshot.get("timers") or {}).items():
            if not stat.get("count"):
                continue
            mine = timers.get(name)
            if mine is None:
                mine = timers[name] = {
                    "count": 0, "total_s": 0.0,
                    "min_s": math.inf, "max_s": -math.inf,
                }
            mine["count"] += stat["count"]
            mine["total_s"] += stat["total_s"]
            mine["min_s"] = min(mine["min_s"], stat["min_s"])
            mine["max_s"] = max(mine["max_s"], stat["max_s"])
        for name, stat in (snapshot.get("histograms") or {}).items():
            if not stat.get("count"):
                continue
            mine = histograms.get(name)
            if mine is None:
                mine = histograms[name] = {
                    "count": 0, "total": 0.0,
                    "min": math.inf, "max": -math.inf, "last": 0.0,
                }
            mine["count"] += stat["count"]
            mine["total"] += stat["total"]
            mine["min"] = min(mine["min"], stat["min"])
            mine["max"] = max(mine["max"], stat["max"])
            mine["last"] = stat["last"]
    for stat in timers.values():
        stat["mean_s"] = stat["total_s"] / stat["count"]
    for stat in histograms.values():
        stat["mean"] = stat["total"] / stat["count"]
    return {
        "timers": {name: timers[name] for name in sorted(timers)},
        "counters": dict(sorted(counters.items())),
        "histograms": {name: histograms[name] for name in sorted(histograms)},
    }
