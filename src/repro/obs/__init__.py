"""Structured observability: metrics registry and JSON bench artifacts.

``repro.obs`` is the one place evaluation timing and work measurements
flow through:

* :mod:`repro.obs.metrics` — the :class:`Metrics` registry (monotonic
  wall-clock timers with nesting, counters, histograms) and the
  module-level active-registry protocol (:func:`get_metrics` /
  :func:`collect`).  Engines are instrumented against it; with the
  default :class:`NullMetrics` active the hooks are no-ops.
* :mod:`repro.obs.artifact` — :class:`BenchArtifact`, the
  schema-versioned JSON document benchmarks and the CI smoke runner emit
  next to their text tables.

See ``docs/OBSERVABILITY.md`` for the schema and the CI gate built on it.
"""

from .artifact import SCHEMA_VERSION, BenchArtifact, artifact_filename
from .metrics import (
    NULL_METRICS,
    HistogramStat,
    Metrics,
    NullMetrics,
    ThreadSafeMetrics,
    TimerStat,
    collect,
    get_metrics,
    merge_snapshots,
    set_metrics,
    thread_metrics,
)

__all__ = [
    "SCHEMA_VERSION",
    "BenchArtifact",
    "artifact_filename",
    "NULL_METRICS",
    "HistogramStat",
    "Metrics",
    "NullMetrics",
    "ThreadSafeMetrics",
    "TimerStat",
    "collect",
    "get_metrics",
    "merge_snapshots",
    "set_metrics",
    "thread_metrics",
]
