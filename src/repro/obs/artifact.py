"""Schema-versioned JSON benchmark artifacts.

The text tables under ``benchmarks/results/`` are for humans;
:class:`BenchArtifact` is the machine-readable sibling: one JSON document
per benchmark (``BENCH_<id>.json``) carrying the same rows as structured
*entries* plus wall-clock timings and an optional metrics snapshot, so CI
can diff runs over time instead of parsing ASCII.

Schema (``repro-bench/1``)::

    {
      "schema_version": "repro-bench/1",
      "bench_id": "f1_scaling_chain",
      "created_unix": 1754323200.0,          # optional; caller-stamped
      "meta": { ... },                       # free-form provenance
      "entries": [                           # one object per data point
        {"id": "...", "seconds": 0.0123, "inferences": 496, ...},
        ...
      ]
    }

Every entry must at least carry a string ``id`` unique within the
artifact; the remaining keys are benchmark-defined (the CI gate keys on
``inferences`` and ``seconds``).  The major version (the digit after the
slash) is bumped on breaking changes; :meth:`BenchArtifact.from_json`
rejects majors it does not understand so a stale reader fails loudly.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["SCHEMA_VERSION", "BenchArtifact", "artifact_filename"]

SCHEMA_VERSION = "repro-bench/1"
_SCHEMA_FAMILY = SCHEMA_VERSION.rsplit("/", 1)[0]
_SCHEMA_MAJOR = int(SCHEMA_VERSION.rsplit("/", 1)[1])


def artifact_filename(bench_id: str) -> str:
    """The canonical on-disk name for a benchmark artifact."""
    return f"BENCH_{bench_id}.json"


@dataclass
class BenchArtifact:
    """One benchmark run, as machine-readable entries."""

    bench_id: str
    schema_version: str = SCHEMA_VERSION
    created_unix: float | None = None
    meta: dict = field(default_factory=dict)
    entries: list[dict] = field(default_factory=list)

    def add_entry(self, entry: Mapping) -> dict:
        """Append one data point; returns the stored dict.

        Raises:
            ValueError: when the entry has no string ``id`` or the id
                duplicates an existing entry.
        """
        record = dict(entry)
        entry_id = record.get("id")
        if not isinstance(entry_id, str) or not entry_id:
            raise ValueError(f"artifact entry needs a non-empty string 'id': {record!r}")
        if any(existing["id"] == entry_id for existing in self.entries):
            raise ValueError(f"duplicate artifact entry id {entry_id!r}")
        self.entries.append(record)
        return record

    def entry(self, entry_id: str) -> dict:
        for record in self.entries:
            if record["id"] == entry_id:
                return record
        raise KeyError(entry_id)

    # --- JSON round-trip -------------------------------------------------------
    def to_dict(self) -> dict:
        payload: dict = {
            "schema_version": self.schema_version,
            "bench_id": self.bench_id,
            "meta": self.meta,
            "entries": self.entries,
        }
        if self.created_unix is not None:
            payload["created_unix"] = self.created_unix
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, payload: Mapping) -> "BenchArtifact":
        version = payload.get("schema_version", "")
        family, _, major = version.rpartition("/")
        if family != _SCHEMA_FAMILY or not major.isdigit():
            raise ValueError(f"not a bench artifact (schema_version={version!r})")
        if int(major) > _SCHEMA_MAJOR:
            raise ValueError(
                f"bench artifact schema {version!r} is newer than supported "
                f"{SCHEMA_VERSION!r}"
            )
        return cls(
            bench_id=payload["bench_id"],
            schema_version=version,
            created_unix=payload.get("created_unix"),
            meta=dict(payload.get("meta", {})),
            entries=[dict(entry) for entry in payload.get("entries", ())],
        )

    @classmethod
    def from_json(cls, text: str) -> "BenchArtifact":
        return cls.from_dict(json.loads(text))

    # --- filesystem ------------------------------------------------------------
    def write(self, directory: str | pathlib.Path) -> pathlib.Path:
        """Write ``BENCH_<bench_id>.json`` under *directory*; returns the path."""
        directory = pathlib.Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / artifact_filename(self.bench_id)
        path.write_text(self.to_json(), encoding="utf-8")
        return path

    @classmethod
    def read(cls, path: str | pathlib.Path) -> "BenchArtifact":
        return cls.from_json(pathlib.Path(path).read_text(encoding="utf-8"))
