"""An interactive Datalog session.

Start with ``repro-datalog repl program.dl`` (or programmatically via
:class:`Repl`).  Input lines are interpreted as:

* ``anc(a, X)?``        — run the query under the current strategy;
* ``par(a, b).``        — assert a ground fact;
* ``:retract par(a,b)`` — delete a ground base fact;
* ``:strategy oldt``    — switch the evaluation strategy;
* ``:why anc(a, c)``    — print a proof tree;
* ``:explain anc(a,X)`` — compare all strategies on one query;
* ``:report``           — static analysis summary;
* ``:program``          — print the loaded rules;
* ``:stats on|off``     — toggle counter printing after each query;
* ``:load FILE``        — load additional facts from a file;
* ``:help`` / ``:quit``.

The loop never raises on user errors; every problem becomes a printed
message, which is what makes the class directly drivable by tests.
"""

from __future__ import annotations

import sys
from typing import TextIO

from .analysis.report import ProgramReport
from .core.engine import Engine
from .core.strategy import available_strategies
from .datalog.parser import parse_query, parse_rule
from .datalog.pretty import format_bindings, format_program
from .errors import ReproError

__all__ = ["Repl"]

PROMPT = "datalog> "


class Repl:
    """A line-oriented interactive session around an :class:`Engine`."""

    def __init__(
        self,
        engine: Engine,
        input_stream: TextIO | None = None,
        output_stream: TextIO | None = None,
        show_prompt: bool = True,
    ):
        self._engine = engine
        self._input = input_stream if input_stream is not None else sys.stdin
        self._output = output_stream if output_stream is not None else sys.stdout
        self._strategy = "alexander"
        self._show_stats = False
        self._show_prompt = show_prompt
        self._running = False

    # --- plumbing -----------------------------------------------------------
    def _write(self, text: str = "") -> None:
        self._output.write(text + "\n")

    def run(self) -> None:
        """Read-eval-print until EOF or ``:quit``."""
        self._running = True
        while self._running:
            if self._show_prompt:
                self._output.write(PROMPT)
                self._output.flush()
            line = self._input.readline()
            if not line:
                break
            self.execute(line.strip())

    def execute(self, line: str) -> None:
        """Process one input line (public so tests can drive directly)."""
        if not line or line.startswith("%") or line.startswith("#"):
            return
        try:
            if line.startswith(":"):
                self._command(line[1:])
            elif line.endswith("?"):
                self._query(line)
            elif line.endswith("."):
                self._assert_fact(line)
            else:
                self._query(line + "?")
        except ReproError as error:
            self._write(f"error: {error}")
        except ValueError as error:
            self._write(f"error: {error}")

    # --- behaviours -------------------------------------------------------------
    def _query(self, text: str) -> None:
        goal = parse_query(text)
        result = self._engine.query(goal, strategy=self._strategy)
        self._write(format_bindings(goal, result.answers))
        if self._show_stats:
            self._write(str(result.stats))

    def _assert_fact(self, text: str) -> None:
        rule = parse_rule(text)
        if rule.body:
            self._write(
                "error: only ground facts can be asserted interactively "
                "(rules need a reload)"
            )
            return
        if self._engine.add_fact(rule.head):
            self._write(f"asserted {rule.head}.")
        else:
            self._write(f"{rule.head} was already known.")

    def _command(self, text: str) -> None:
        parts = text.split(None, 1)
        name = parts[0] if parts else ""
        argument = parts[1].strip() if len(parts) > 1 else ""
        handler = {
            "retract": self._cmd_retract,
            "strategy": self._cmd_strategy,
            "why": self._cmd_why,
            "explain": self._cmd_explain,
            "report": self._cmd_report,
            "program": self._cmd_program,
            "stats": self._cmd_stats,
            "load": self._cmd_load,
            "help": self._cmd_help,
            "quit": self._cmd_quit,
            "exit": self._cmd_quit,
        }.get(name)
        if handler is None:
            self._write(f"unknown command :{name} — try :help")
            return
        handler(argument)

    def _cmd_retract(self, argument: str) -> None:
        if not argument:
            self._write("usage: :retract <ground fact>")
            return
        atom = parse_query(argument)
        if not atom.is_ground():
            self._write("error: only ground facts can be retracted")
            return
        if atom.predicate in self._engine.program.idb_predicates:
            self._write(
                f"error: cannot retract derived fact {atom}; "
                "retract base facts only"
            )
            return
        if self._engine.remove_fact(atom):
            self._write(f"retracted {atom}.")
        else:
            self._write(f"{atom} was not known.")

    def _cmd_strategy(self, argument: str) -> None:
        if not argument:
            self._write(f"strategy: {self._strategy}")
            self._write(f"available: {', '.join(available_strategies())}")
            return
        if argument not in available_strategies():
            self._write(
                f"unknown strategy {argument!r}; "
                f"available: {', '.join(available_strategies())}"
            )
            return
        self._strategy = argument
        self._write(f"strategy set to {argument}")

    def _cmd_why(self, argument: str) -> None:
        if not argument:
            self._write("usage: :why <ground atom>")
            return
        self._write(self._engine.why(argument))

    def _cmd_explain(self, argument: str) -> None:
        if not argument:
            self._write("usage: :explain <query>")
            return
        goal = parse_query(argument)
        results = self._engine.explain(goal)
        width = max(len(name) for name in results)
        self._write(f"{'strategy'.ljust(width)}  answers  inferences  attempts")
        for name, result in results.items():
            self._write(
                f"{name.ljust(width)}  {len(result.answers):>7}  "
                f"{result.stats.inferences:>10}  {result.stats.attempts:>8}"
            )

    def _cmd_report(self, argument: str) -> None:
        self._write(ProgramReport.build(self._engine.program).render())

    def _cmd_program(self, argument: str) -> None:
        self._write(format_program(self._engine.program))

    def _cmd_stats(self, argument: str) -> None:
        if argument == "on":
            self._show_stats = True
        elif argument == "off":
            self._show_stats = False
        else:
            self._write("usage: :stats on|off")
            return
        self._write(f"stats {'on' if self._show_stats else 'off'}")

    def _cmd_load(self, argument: str) -> None:
        if not argument:
            self._write("usage: :load <facts file>")
            return
        from .facts.io import load_facts

        before = self._engine.database.total_facts()
        load_facts(argument, into=self._engine.database)
        added = self._engine.database.total_facts() - before
        self._write(f"loaded {added} new fact(s) from {argument}")

    def _cmd_help(self, argument: str) -> None:
        self._write(__doc__.split("Input lines are interpreted as:")[1].strip())

    def _cmd_quit(self, argument: str) -> None:
        self._running = False
        self._write("bye")
