"""Tests for the Engine facade (the public entry point)."""

import pytest

from repro.core.engine import Engine
from repro.datalog.parser import parse_query
from repro.errors import SafetyError

SOURCE = """
    par(a,b). par(b,c). par(c,d).
    anc(X,Y) :- par(X,Y).
    anc(X,Y) :- par(X,Z), anc(Z,Y).
"""


class TestConstruction:
    def test_from_source(self):
        engine = Engine.from_source(SOURCE)
        assert engine.program.idb_predicates == {"anc"}
        assert engine.database.rows("par") == {
            ("a", "b"), ("b", "c"), ("c", "d")
        }

    def test_from_file(self, tmp_path):
        path = tmp_path / "program.dl"
        path.write_text(SOURCE)
        engine = Engine.from_file(path)
        assert engine.ask("anc(a, d)?")

    def test_safety_check_on_by_default(self):
        with pytest.raises(SafetyError):
            Engine.from_source("p(X, Y) :- q(X).")

    def test_safety_check_can_be_disabled(self):
        engine = Engine.from_source("p(X, Y) :- q(X).", check_safety=False)
        assert engine.program is not None


class TestQuerying:
    def test_query_with_string_goal(self):
        engine = Engine.from_source(SOURCE)
        result = engine.query("anc(a, X)?")
        assert [str(a) for a in result.answers] == [
            "anc(a, b)", "anc(a, c)", "anc(a, d)"
        ]
        assert result.strategy == "alexander"

    def test_query_with_atom_goal(self):
        engine = Engine.from_source(SOURCE)
        result = engine.query(parse_query("anc(a, d)?"))
        assert len(result.answers) == 1

    def test_query_with_strategy(self):
        engine = Engine.from_source(SOURCE)
        result = engine.query("anc(a, X)?", strategy="oldt")
        assert result.strategy == "oldt"
        assert len(result.answers) == 3

    def test_query_with_named_sips(self):
        engine = Engine.from_source(SOURCE)
        result = engine.query("anc(a, X)?", sips="most_bound_first")
        assert len(result.answers) == 3

    def test_ask(self):
        engine = Engine.from_source(SOURCE)
        assert engine.ask("anc(a, d)?")
        assert not engine.ask("anc(d, a)?")

    def test_explain_runs_default_panel(self):
        engine = Engine.from_source(SOURCE)
        results = engine.explain("anc(a, X)?")
        assert set(results) == {
            "seminaive", "magic", "supplementary", "alexander", "oldt", "qsqr"
        }
        rows = {r.answer_rows for r in results.values()}
        assert len(rows) == 1  # all agree

    def test_explain_custom_panel(self):
        engine = Engine.from_source(SOURCE)
        results = engine.explain("anc(a, X)?", strategies=("sld", "oldt"))
        assert set(results) == {"sld", "oldt"}

    def test_strategies_listing(self):
        assert "alexander" in Engine.strategies()


class TestMutation:
    def test_add_fact_string(self):
        engine = Engine.from_source(SOURCE)
        assert engine.add_fact("par(d, e)")
        assert engine.ask("anc(a, e)?")

    def test_add_fact_duplicate(self):
        engine = Engine.from_source(SOURCE)
        assert not engine.add_fact("par(a, b)")

    def test_add_facts_bulk(self):
        engine = Engine.from_source(SOURCE)
        from repro.datalog.parser import parse_atom

        count = engine.add_facts(
            [parse_atom("par(d, e)"), parse_atom("par(e, f)")]
        )
        assert count == 2
        assert engine.ask("anc(a, f)?")

    def test_input_program_facts_not_duplicated(self):
        engine = Engine.from_source(SOURCE)
        # The program handed out is fact-free (facts moved to the DB).
        assert engine.program.facts == ()
