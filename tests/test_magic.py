"""Unit tests for the generalized magic sets transformation."""


from repro.datalog.parser import parse_program, parse_query
from repro.engine.seminaive import seminaive_fixpoint
from repro.facts.database import Database
from repro.transform.magic import magic_sets

ANCESTOR = parse_program(
    """
    anc(X,Y) :- par(X,Y).
    anc(X,Y) :- par(X,Z), anc(Z,Y).
    """
)


def chain_db():
    db = Database()
    for pair in [("a", "b"), ("b", "c"), ("c", "d")]:
        db.add("par", pair)
    return db


class TestMagicRewriting:
    def test_structure_for_right_linear_ancestor(self):
        transformed = magic_sets(ANCESTOR, parse_query("anc(a, X)?"))
        rules = {str(r) for r in transformed.program}
        assert "anc__bf(X, Y) :- magic__anc__bf(X), par(X, Y)." in rules
        assert "magic__anc__bf(Z) :- magic__anc__bf(X), par(X, Z)." in rules
        assert (
            "anc__bf(X, Y) :- magic__anc__bf(X), par(X, Z), anc__bf(Z, Y)."
            in rules
        )
        assert len(rules) == 3

    def test_seed_is_query_binding(self):
        transformed = magic_sets(ANCESTOR, parse_query("anc(a, X)?"))
        assert [str(s) for s in transformed.seeds] == ["magic__anc__bf(a)"]

    def test_goal_is_adorned_query(self):
        transformed = magic_sets(ANCESTOR, parse_query("anc(a, X)?"))
        assert str(transformed.goal) == "anc__bf(a, X)"

    def test_free_query_gets_zero_arity_magic(self):
        transformed = magic_sets(ANCESTOR, parse_query("anc(X, Y)?"))
        assert [str(s) for s in transformed.seeds] == ["magic__anc__ff"]

    def test_metadata_maps_predicates(self):
        transformed = magic_sets(ANCESTOR, parse_query("anc(a, X)?"))
        assert transformed.call_predicates == {
            "magic__anc__bf": ("anc", "bf")
        }
        assert transformed.answer_predicates == {"anc__bf": ("anc", "bf")}
        assert transformed.kind == "magic"

    def test_evaluation_matches_direct_answers(self):
        transformed = magic_sets(ANCESTOR, parse_query("anc(a, X)?"))
        completed, _ = seminaive_fixpoint(
            transformed.evaluation_program(), chain_db()
        )
        # The adorned relation answers every generated call (a, b, c, d
        # are all reached); the query's own rows must be present.
        rows = completed.rows("anc__bf")
        assert {("a", "b"), ("a", "c"), ("a", "d")} <= rows
        # Soundness: every row is a true ancestor pair.
        assert rows <= {
            ("a", "b"), ("a", "c"), ("a", "d"),
            ("b", "c"), ("b", "d"), ("c", "d"),
        }

    def test_magic_set_restricts_computation(self):
        # Bind the query to the chain's tail: only its cone is computed.
        transformed = magic_sets(ANCESTOR, parse_query("anc(c, X)?"))
        completed, _ = seminaive_fixpoint(
            transformed.evaluation_program(), chain_db()
        )
        assert completed.rows("magic__anc__bf") == {("c",), ("d",)}
        assert completed.rows("anc__bf") == {("c", "d")}

    def test_fully_bound_query(self):
        transformed = magic_sets(ANCESTOR, parse_query("anc(a, d)?"))
        completed, _ = seminaive_fixpoint(
            transformed.evaluation_program(), chain_db()
        )
        goal_pred = transformed.goal.predicate
        assert ("a", "d") in completed.rows(goal_pred)

    def test_negative_literals_carried_not_magicked(self):
        program = parse_program(
            """
            good(X,Y) :- e(X,Y), not bad(Y).
            good(X,Y) :- e(X,Z), not bad(Z), good(Z,Y).
            """
        )
        transformed = magic_sets(program, parse_query("good(a, X)?"))
        # bad is extensional here: no magic predicate may be created for it.
        assert all(
            "bad" not in name for name in transformed.call_predicates
        )
        negatives = [
            literal
            for rule in transformed.program
            for literal in rule.body
            if literal.negative
        ]
        assert negatives, "negative literals must survive the rewriting"


class TestMagicMultiAdornment:
    def test_two_call_modes_two_magic_predicates(self):
        program = parse_program(
            """
            p(X,Y) :- e(X,Y).
            p(X,Y) :- q(Y,X).
            q(X,Y) :- p(X,Y).
            q(X,Y) :- e(X,Y).
            """
        )
        transformed = magic_sets(program, parse_query("p(a, Y)?"))
        keys = set(transformed.call_predicates.values())
        assert ("p", "bf") in keys and ("q", "fb") in keys
