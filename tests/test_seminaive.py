"""Unit and property tests for the semi-naive engine.

The two load-bearing properties:

1. semi-naive computes exactly the naive fixpoint (same facts);
2. semi-naive never repeats an inference: its successful-inference count
   equals the number of *distinct* rule-body instantiations, so on
   duplicate-free programs it equals the facts derived... more precisely
   it is bounded by the naive count and, for the linear-chain workload,
   equals facts_derived exactly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog.parser import parse_program
from repro.engine.naive import naive_fixpoint
from repro.engine.seminaive import seminaive_fixpoint
from repro.facts.database import Database
from repro.workloads import graphs


def edges_database(edges, predicate="par"):
    database = Database()
    for u, v in edges:
        database.add(predicate, (u, v))
    database.relation(predicate, 2)
    return database


class TestSemiNaive:
    def test_matches_naive_on_chain(self, ancestor_program, chain_database):
        naive_db, _ = naive_fixpoint(ancestor_program, chain_database)
        semi_db, _ = seminaive_fixpoint(ancestor_program, chain_database)
        assert naive_db.rows("anc") == semi_db.rows("anc")

    def test_no_repeated_inference_on_right_linear_chain(self):
        program = parse_program(
            """
            anc(X,Y) :- par(X,Y).
            anc(X,Y) :- par(X,Z), anc(Z,Y).
            """
        )
        database = edges_database(graphs.chain(10))
        _, stats = seminaive_fixpoint(program, database)
        # On a simple chain every derivation is distinct: one inference
        # per derived fact.
        assert stats.inferences == stats.facts_derived

    def test_fewer_inferences_than_naive(self):
        program = parse_program(
            """
            anc(X,Y) :- par(X,Y).
            anc(X,Y) :- par(X,Z), anc(Z,Y).
            """
        )
        database = edges_database(graphs.chain(12))
        _, naive_stats = naive_fixpoint(program, database)
        _, semi_stats = seminaive_fixpoint(program, database)
        assert semi_stats.inferences < naive_stats.inferences
        assert semi_stats.facts_derived == naive_stats.facts_derived

    def test_nonlinear_rule_uses_two_delta_variants(self):
        program = parse_program(
            """
            tc(X,Y) :- e(X,Y).
            tc(X,Y) :- tc(X,Z), tc(Z,Y).
            """
        )
        database = edges_database(graphs.chain(8), "e")
        naive_db, _ = naive_fixpoint(program, database)
        semi_db, stats = seminaive_fixpoint(program, database)
        assert naive_db.rows("tc") == semi_db.rows("tc")
        assert stats.facts_derived == len(semi_db.rows("tc"))

    def test_mutual_recursion(self):
        program = parse_program(
            """
            even(X) :- zero(X).
            even(Y) :- succ(X,Y), odd(X).
            odd(Y) :- succ(X,Y), even(X).
            """
        )
        database = Database()
        database.add("zero", (0,))
        for i in range(6):
            database.add("succ", (i, i + 1))
        completed, _ = seminaive_fixpoint(program, database)
        assert completed.rows("even") == {(0,), (2,), (4,), (6,)}
        assert completed.rows("odd") == {(1,), (3,), (5,)}

    def test_embedded_idb_facts_are_respected(self):
        # A ground fact for an IDB predicate must behave as a unit clause.
        program = parse_program(
            """
            anc(z, q).
            anc(X,Y) :- par(X,Y).
            anc(X,Y) :- par(X,Z), anc(Z,Y).
            par(a, z).
            """
        )
        completed, _ = seminaive_fixpoint(program)
        assert ("z", "q") in completed.rows("anc")
        assert ("a", "q") in completed.rows("anc")

    def test_cyclic_graph_terminates(self):
        program = parse_program(
            """
            tc(X,Y) :- e(X,Y).
            tc(X,Y) :- e(X,Z), tc(Z,Y).
            """
        )
        database = edges_database(graphs.cycle(6), "e")
        completed, stats = seminaive_fixpoint(program, database)
        assert len(completed.rows("tc")) == 36
        assert stats.facts_derived == 36

    def test_input_database_not_mutated(self, ancestor_program, chain_database):
        before = chain_database.rows("par")
        seminaive_fixpoint(ancestor_program, chain_database)
        assert chain_database.rows("par") == before


# --- property: semi-naive == naive on random graphs ---------------------------

edge_lists = st.lists(
    st.tuples(st.integers(0, 6), st.integers(0, 6)), max_size=25
)

PROGRAMS = [
    """
    tc(X,Y) :- e(X,Y).
    tc(X,Y) :- e(X,Z), tc(Z,Y).
    """,
    """
    tc(X,Y) :- e(X,Y).
    tc(X,Y) :- tc(X,Z), tc(Z,Y).
    """,
    """
    tc(X,Y) :- e(X,Y).
    tc(X,Y) :- tc(X,Z), e(Z,Y).
    """,
]


@settings(max_examples=30, deadline=None)
@given(edge_lists, st.integers(0, len(PROGRAMS) - 1))
def test_seminaive_equals_naive_on_random_graphs(edges, program_index):
    program = parse_program(PROGRAMS[program_index])
    database = edges_database(edges, "e")
    naive_db, naive_stats = naive_fixpoint(program, database)
    semi_db, semi_stats = seminaive_fixpoint(program, database)
    assert naive_db.rows("tc") == semi_db.rows("tc")
    assert semi_stats.facts_derived == naive_stats.facts_derived
    assert semi_stats.inferences <= naive_stats.inferences
