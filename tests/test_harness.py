"""Tests for the benchmark harness."""

import pytest

from repro.bench.harness import (
    DIVERGED,
    Measurement,
    assert_same_answers,
    measure,
    scaling_series,
    sweep,
)
from repro.workloads import ancestor


class TestMeasure:
    def test_basic_measurement(self):
        scenario = ancestor(graph="chain", n=6)
        m = measure(scenario, "alexander")
        assert m.strategy == "alexander"
        assert m.answers == 5
        assert not m.diverged
        assert isinstance(m.inferences, int)

    def test_divergence_becomes_row(self):
        scenario = ancestor(graph="cycle", n=64)
        m = measure(scenario, "sld")
        assert m.diverged
        assert m.inferences == DIVERGED

    def test_row_matches_headers(self):
        scenario = ancestor(graph="chain", n=4)
        m = measure(scenario, "oldt")
        assert len(m.row()) == len(Measurement.headers())


class TestSweep:
    def test_cross_product(self):
        scenarios = [ancestor(graph="chain", n=4), ancestor(graph="chain", n=6)]
        measurements = sweep(scenarios, ["seminaive", "oldt"])
        assert len(measurements) == 4

    def test_agreement_enforced(self):
        measurements = sweep(
            [ancestor(graph="chain", n=6)],
            ["seminaive", "oldt", "alexander", "magic"],
        )
        assert_same_answers(measurements)  # must not raise

    def test_divergent_rows_excluded_from_agreement(self):
        # SLD diverges on the cycle; the sweep must still succeed.
        measurements = sweep(
            [ancestor(graph="cycle", n=32)], ["sld", "oldt", "alexander"]
        )
        assert any(m.diverged for m in measurements)

    def test_disagreement_detected(self):
        scenario = ancestor(graph="chain", n=5)
        good = measure(scenario, "oldt")
        bad_scenario = ancestor(graph="chain", n=7)
        bad = measure(bad_scenario, "oldt")
        with pytest.raises(AssertionError):
            assert_same_answers([good, bad])


class TestScalingSeries:
    def test_series_shape(self):
        series = scaling_series(
            lambda n: ancestor(graph="chain", n=n),
            [4, 6, 8],
            ["seminaive", "alexander"],
        )
        assert set(series) == {"seminaive", "alexander"}
        assert [x for x, _ in series["alexander"]] == [4, 6, 8]

    def test_metric_selection(self):
        series = scaling_series(
            lambda n: ancestor(graph="chain", n=n),
            [4, 6],
            ["alexander"],
            metric="facts",
        )
        values = [y for _, y in series["alexander"]]
        assert all(isinstance(v, int) for v in values)

    def test_counts_grow_with_size(self):
        series = scaling_series(
            lambda n: ancestor(graph="chain", n=n),
            [4, 8, 16],
            ["alexander"],
        )
        values = [y for _, y in series["alexander"]]
        assert values[0] < values[1] < values[2]
