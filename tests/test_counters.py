"""Tests for the shared statistics record."""

from repro.engine.counters import EvaluationStats


def test_defaults_are_zero():
    stats = EvaluationStats()
    assert stats.as_dict() == {
        "inferences": 0,
        "attempts": 0,
        "facts_derived": 0,
        "calls": 0,
        "answers": 0,
        "iterations": 0,
    }


def test_merge_accumulates_every_field():
    left = EvaluationStats(inferences=1, attempts=2, facts_derived=3)
    right = EvaluationStats(inferences=10, calls=5, answers=7, iterations=2)
    left.merge(right)
    assert left.inferences == 11
    assert left.attempts == 2
    assert left.facts_derived == 3
    assert left.calls == 5
    assert left.answers == 7
    assert left.iterations == 2


def test_merge_returns_self_for_chaining():
    stats = EvaluationStats()
    assert stats.merge(EvaluationStats(inferences=1)) is stats


def test_copy_is_independent():
    stats = EvaluationStats(inferences=4)
    clone = stats.copy()
    clone.inferences += 1
    assert stats.inferences == 4


def test_str_lists_fields():
    text = str(EvaluationStats(inferences=3))
    assert "inferences=3" in text and "answers=0" in text
