"""Unit tests for the parallel scheduler's building blocks.

The differential suite (``tests/test_parallel_differential.py``) pins
the end-to-end bit-identity claim; this file exercises the pieces in
isolation — worker resolution, the component dependency graph, the
checkpoint trip gate under real thread contention, worker-view budget
accounting, and the per-thread metrics registries the coordinator
merges.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.datalog.parser import parse_program
from repro.engine.budget import Checkpoint, EvaluationBudget
from repro.engine.counters import EvaluationStats
from repro.engine.parallel import (
    component_dependencies,
    resolve_workers,
)
from repro.engine.scheduler import build_schedule
from repro.errors import BudgetExceededError, ReproError
from repro.obs import (
    HistogramStat,
    Metrics,
    NullMetrics,
    ThreadSafeMetrics,
    TimerStat,
    get_metrics,
    set_metrics,
    thread_metrics,
)


# --- worker resolution -----------------------------------------------------
class TestResolveWorkers:
    def test_none_means_cpu_count(self):
        assert resolve_workers(None) >= 1

    def test_explicit_counts_pass_through(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(7) == 7

    @pytest.mark.parametrize("bad", [0, -1, True, False, 2.0, "2"])
    def test_invalid_counts_rejected(self, bad):
        with pytest.raises(ValueError):
            resolve_workers(bad)


# --- component dependencies ------------------------------------------------
class TestComponentDependencies:
    def test_chain_orders_components(self):
        program = parse_program(
            """
            b(X) :- a(X).
            c(X) :- b(X).
            d(X) :- a(X).
            """
        ).without_facts()
        components = build_schedule(program).components
        deps = component_dependencies(program, components)
        owner = {
            predicate: index
            for index, component in enumerate(components)
            for predicate in component.derived
        }
        # c depends on b's component; b and d depend on nothing derived
        # (a is extensional).
        assert deps[owner["c"]] == {owner["b"]}
        assert deps[owner["b"]] == set()
        assert deps[owner["d"]] == set()

    def test_independent_components_have_no_edges(self):
        program = parse_program(
            """
            p(X, Y) :- e(X, Y).
            p(X, Y) :- p(X, Z), e(Z, Y).
            q(X, Y) :- f(X, Y).
            q(X, Y) :- q(X, Z), f(Z, Y).
            """
        ).without_facts()
        components = build_schedule(program).components
        deps = component_dependencies(program, components)
        assert all(dep == set() for dep in deps)


# --- the trip gate under threads -------------------------------------------
class TestCheckpointUnderThreads:
    def _tripping_views(self, workers: int, per_worker_facts: int = 10):
        """Run *workers* threads that all exhaust a shared budget at the
        same instant; returns (root, errors-raised, metrics snapshot)."""
        registry = ThreadSafeMetrics()
        previous = set_metrics(registry)
        root_stats = EvaluationStats()
        root = Checkpoint(EvaluationBudget(max_facts=workers), root_stats)
        barrier = threading.Barrier(workers)
        errors: list[BudgetExceededError] = []
        lock = threading.Lock()

        def worker():
            local = EvaluationStats()
            view = root.worker_view(local)
            barrier.wait()
            try:
                for _ in range(per_worker_facts):
                    local.facts_derived += 1
                    view.check_round()
            except BudgetExceededError as error:
                with lock:
                    errors.append(error)

        try:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                for _ in range(workers):
                    pool.submit(worker)
                pool.shutdown(wait=True)
        finally:
            set_metrics(previous)
        return root, errors, registry.snapshot()

    @pytest.mark.parametrize("workers", [2, 4, 8])
    def test_concurrent_trip_is_single(self, workers):
        root, errors, snapshot = self._tripping_views(workers)
        # Every worker unwinds with the *same* stored error object.
        assert len(errors) == workers
        assert len({id(error) for error in errors}) == 1
        assert root.tripped is errors[0]
        # ...and the trip was observed exactly once, no matter how many
        # threads raced through the gate.
        assert snapshot["counters"]["budget.exceeded"] == 1
        assert snapshot["counters"]["budget.exceeded.facts"] == 1

    def test_poll_notices_sibling_trip(self):
        root = Checkpoint(EvaluationBudget(max_facts=1), EvaluationStats())
        tripper_stats = EvaluationStats()
        tripper = root.worker_view(tripper_stats)
        tripper_stats.facts_derived = 1
        with pytest.raises(BudgetExceededError):
            tripper.check_round()
        # A sibling that did no work at all still unwinds on its next
        # poll — the gate check is unconditional, not strided.
        sibling = root.worker_view(EvaluationStats())
        with pytest.raises(BudgetExceededError):
            sibling.poll()
        with pytest.raises(BudgetExceededError):
            root.check_round()

    def test_view_counts_root_share(self):
        # A worker view trips on root + local totals: 3 facts already
        # merged into the root plus 2 local ones exhaust a budget of 5.
        root_stats = EvaluationStats()
        root_stats.facts_derived = 3
        root = Checkpoint(EvaluationBudget(max_facts=5), root_stats)
        local = EvaluationStats()
        view = root.worker_view(local)
        local.facts_derived = 1
        view.check_round()  # 3 + 1 < 5: fine
        local.facts_derived = 2
        with pytest.raises(BudgetExceededError) as excinfo:
            view.check_round()
        # The error reports the root stats record, where the coordinator
        # merges every worker's share before re-raising.
        assert excinfo.value.stats is root_stats

    def test_trip_carries_root_partial(self):
        from repro.facts.database import Database

        database = Database()
        database.add("p", ("a",))
        root = Checkpoint(EvaluationBudget(max_facts=1), EvaluationStats())
        root.bind(database)
        view = root.worker_view(EvaluationStats())
        view.stats.facts_derived = 1
        with pytest.raises(BudgetExceededError) as excinfo:
            view.check_round()
        assert excinfo.value.partial is database

    def test_views_chain_to_one_root(self):
        root = Checkpoint(EvaluationBudget(max_facts=10), EvaluationStats())
        view = root.worker_view(EvaluationStats())
        nested = view.worker_view(EvaluationStats())
        assert nested._root is root
        assert nested._gate is root._gate


# --- metrics merging -------------------------------------------------------
class TestMetricsMerge:
    def test_timer_merge_sums_and_bounds(self):
        a, b = TimerStat(), TimerStat()
        a.record(1.0)
        a.record(3.0)
        b.record(0.5)
        a.merge(b)
        assert a.count == 3
        assert a.total == 4.5
        assert a.minimum == 0.5
        assert a.maximum == 3.0

    def test_empty_merges_are_noops(self):
        stat = TimerStat()
        stat.record(1.0)
        stat.merge(TimerStat())
        assert stat.count == 1 and stat.minimum == 1.0
        hist = HistogramStat()
        hist.observe(2.0)
        hist.merge(HistogramStat())
        assert hist.count == 1 and hist.last == 2.0

    def test_histogram_merge_takes_others_last(self):
        a, b = HistogramStat(), HistogramStat()
        a.observe(1.0)
        b.observe(9.0)
        a.merge(b)
        assert a.count == 2
        assert a.last == 9.0
        assert a.maximum == 9.0

    def test_registry_merge_folds_everything(self):
        parent, worker = Metrics(), Metrics()
        parent.incr("shared", 1)
        worker.incr("shared", 2)
        worker.incr("worker_only", 5)
        worker.observe("delta", 7.0)
        with worker.timer("span"):
            pass
        parent.merge(worker)
        assert parent.counters["shared"] == 3
        assert parent.counters["worker_only"] == 5
        assert parent.histograms["delta"].count == 1
        assert parent.timers["span"].count == 1

    def test_null_metrics_merge_is_noop(self):
        from repro.obs import NULL_METRICS

        worker = Metrics()
        worker.incr("x")
        NULL_METRICS.merge(worker)
        assert NULL_METRICS.counters == {}  # the singleton stays empty

    def test_threadsafe_merge_under_contention(self):
        parent = ThreadSafeMetrics()
        workers = []
        for i in range(8):
            registry = Metrics()
            registry.incr("n", i)
            workers.append(registry)
        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(parent.merge, workers))
        assert parent.counters["n"] == sum(range(8))


class TestThreadMetrics:
    def test_override_is_thread_local(self):
        private = Metrics()
        seen_in_thread = []

        def worker():
            with thread_metrics(private):
                get_metrics().incr("inner")
                seen_in_thread.append(get_metrics())

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen_in_thread == [private]
        assert private.counters["inner"] == 1
        # This thread never saw the override.
        assert get_metrics() is not private

    def test_override_restores_on_exit(self):
        outer, inner = Metrics(), Metrics()
        with thread_metrics(outer):
            assert get_metrics() is outer
            with thread_metrics(inner):
                assert get_metrics() is inner
            assert get_metrics() is outer
        assert get_metrics() is not outer

    def test_override_wins_over_global_registry(self):
        global_registry = Metrics()
        previous = set_metrics(global_registry)
        try:
            private = Metrics()
            with thread_metrics(private):
                get_metrics().incr("routed")
            assert private.counters == {"routed": 1}
            assert global_registry.counters == {}
        finally:
            set_metrics(previous)


# --- round-stamp monotonicity (columnar twin of test_relation.py) ----------
class TestColumnarMarkRoundGuard:
    def test_mark_round_rejects_regression(self):
        from repro.datalog.intern import ConstantInterner
        from repro.engine.columnar import ColumnarRelation

        relation = ColumnarRelation("p", 2, ConstantInterner())
        relation.mark_round(2)
        with pytest.raises(ValueError, match="must not decrease"):
            relation.mark_round(1)
        relation.mark_round(2)
        relation.mark_round(3)


# --- the HTTP boundary's workers validation --------------------------------
class TestServerWorkersConfig:
    def test_valid_workers_pass_through(self):
        from repro.serve.server import _Handler

        assert _Handler._config({"workers": 2}) == {"workers": 2}
        assert "workers" not in _Handler._config({})

    @pytest.mark.parametrize("bad", [0, -3, True, False, 1.5, "2", [2]])
    def test_invalid_workers_rejected(self, bad):
        from repro.serve.server import _Handler

        with pytest.raises(ReproError, match="workers"):
            _Handler._config({"workers": bad})
