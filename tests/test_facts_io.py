"""Tests for facts-file I/O."""

import io

import pytest

from repro.errors import ParseError
from repro.facts import (
    Database,
    load_delimited,
    load_facts,
    save_delimited,
    save_facts,
)


def sample_database():
    database = Database()
    database.add("par", ("a", "b"))
    database.add("par", ("b", "c"))
    database.add("age", ("a", 41))
    return database


class TestFactsFormat:
    def test_round_trip_through_string_handles(self):
        database = sample_database()
        buffer = io.StringIO()
        count = save_facts(database, buffer)
        assert count == 3
        loaded = load_facts(io.StringIO(buffer.getvalue()))
        assert loaded == database

    def test_round_trip_through_files(self, tmp_path):
        path = tmp_path / "facts.dl"
        save_facts(sample_database(), path)
        loaded = load_facts(path)
        assert loaded == sample_database()

    def test_integers_survive_round_trip(self):
        buffer = io.StringIO()
        save_facts(sample_database(), buffer)
        loaded = load_facts(io.StringIO(buffer.getvalue()))
        assert loaded.rows("age") == {("a", 41)}

    def test_load_into_existing_database(self):
        database = Database()
        database.add("par", ("x", "y"))
        load_facts(io.StringIO("par(a, b)."), into=database)
        assert database.rows("par") == {("x", "y"), ("a", "b")}

    def test_rules_in_facts_file_rejected(self):
        with pytest.raises(ParseError):
            load_facts(io.StringIO("p(X) :- q(X)."))

    def test_comments_and_blank_lines_ok(self):
        loaded = load_facts(io.StringIO("% header\n\npar(a, b).\n"))
        assert loaded.rows("par") == {("a", "b")}


class TestDelimitedFormat:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "edge.facts"
        database = Database()
        database.add("edge", (1, 2))
        database.add("edge", (2, 3))
        assert save_delimited(database, "edge", path) == 2
        loaded = load_delimited(path, "edge")
        assert loaded.rows("edge") == {(1, 2), (2, 3)}

    def test_integers_parsed(self):
        loaded = load_delimited(io.StringIO("1\t-2\n3\t4\n"), "e")
        assert loaded.rows("e") == {(1, -2), (3, 4)}

    def test_strings_preserved(self):
        loaded = load_delimited(io.StringIO("alice\tbob\n"), "knows")
        assert loaded.rows("knows") == {("alice", "bob")}

    def test_custom_delimiter(self):
        loaded = load_delimited(io.StringIO("a,b\n"), "e", delimiter=",")
        assert loaded.rows("e") == {("a", "b")}

    def test_comments_and_blanks_skipped(self):
        loaded = load_delimited(io.StringIO("# header\n\n1\t2\n"), "e")
        assert loaded.rows("e") == {(1, 2)}

    def test_ragged_rows_rejected(self):
        with pytest.raises(ParseError):
            load_delimited(io.StringIO("1\t2\n3\n"), "e")

    def test_save_unknown_predicate_writes_nothing(self):
        buffer = io.StringIO()
        assert save_delimited(Database(), "ghost", buffer) == 0
        assert buffer.getvalue() == ""


class TestCliFactsOption:
    def test_query_with_external_facts(self, tmp_path, capsys):
        from repro.cli import main

        rules = tmp_path / "rules.dl"
        rules.write_text(
            "anc(X,Y) :- par(X,Y). anc(X,Y) :- par(X,Z), anc(Z,Y)."
        )
        facts = tmp_path / "facts.dl"
        facts.write_text("par(a, b). par(b, c).")
        code = main(
            ["query", str(rules), "anc(a, X)?", "--facts", str(facts)]
        )
        assert code == 0
        assert capsys.readouterr().out.splitlines() == ["X = b", "X = c"]

    def test_multiple_facts_files(self, tmp_path, capsys):
        from repro.cli import main

        rules = tmp_path / "rules.dl"
        rules.write_text("anc(X,Y) :- par(X,Y).")
        first = tmp_path / "one.dl"
        first.write_text("par(a, b).")
        second = tmp_path / "two.dl"
        second.write_text("par(a, c).")
        main(
            [
                "query", str(rules), "anc(a, X)?",
                "--facts", str(first), "--facts", str(second),
            ]
        )
        assert capsys.readouterr().out.splitlines() == ["X = b", "X = c"]
