"""Unit tests for the Datalog parser."""

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.parser import (
    parse_atom,
    parse_program,
    parse_query,
    parse_rule,
    tokenize,
)
from repro.datalog.terms import Constant, Variable
from repro.errors import ParseError


class TestTokenizer:
    def test_positions_are_tracked(self):
        tokens = list(tokenize("p(X).\nq(a)."))
        q_token = [t for t in tokens if t.text == "q"][0]
        assert q_token.line == 2 and q_token.column == 1

    def test_comments_are_skipped(self):
        tokens = list(tokenize("p(a). % comment\n# another\nq(b)."))
        assert [t.text for t in tokens if t.kind == "IDENT"] == ["p", "a", "q", "b"]

    def test_not_keyword_and_backslash_plus(self):
        kinds = [t.kind for t in tokenize("not \\+")]
        assert kinds == ["NOT", "NOT"]

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            list(tokenize('p("abc'))

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            list(tokenize("p(a) & q(b)"))

    def test_negative_integer(self):
        tokens = [t for t in tokenize("p(-3).") if t.kind == "INTEGER"]
        assert tokens[0].text == "-3"


class TestParseAtom:
    def test_simple(self):
        atom = parse_atom("anc(X, bob)")
        assert atom.predicate == "anc"
        assert atom.args == (Variable("X"), Constant("bob"))

    def test_zero_arity(self):
        assert parse_atom("halt") == Atom("halt")

    def test_integer_and_string_constants(self):
        atom = parse_atom('p(3, "Hello World")')
        assert atom.args == (Constant(3), Constant("Hello World"))

    def test_underscore_is_anonymous_and_distinct(self):
        atom = parse_atom("p(_, _)")
        left, right = atom.args
        assert isinstance(left, Variable) and isinstance(right, Variable)
        assert left != right

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_atom("p(a) q")


class TestParseRule:
    def test_fact(self):
        rule = parse_rule("par(a, b).")
        assert rule.is_fact

    def test_rule_with_body(self):
        rule = parse_rule("anc(X,Y) :- par(X,Z), anc(Z,Y).")
        assert rule.head.predicate == "anc"
        assert [l.predicate for l in rule.body] == ["par", "anc"]

    def test_negative_literal_not(self):
        rule = parse_rule("p(X) :- q(X), not r(X).")
        assert rule.body[1].negative

    def test_negative_literal_backslash_plus(self):
        rule = parse_rule("p(X) :- q(X), \\+ r(X).")
        assert rule.body[1].negative

    def test_missing_dot(self):
        with pytest.raises(ParseError):
            parse_rule("p(a)")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("p(a). q(b).")


class TestParseProgram:
    def test_multi_statement(self):
        program = parse_program(
            """
            % ancestor
            par(a,b). par(b,c).
            anc(X,Y) :- par(X,Y).
            anc(X,Y) :- par(X,Z), anc(Z,Y).
            """
        )
        assert len(program) == 4
        assert len(program.facts) == 2
        assert program.idb_predicates == {"anc"}

    def test_empty_program(self):
        assert len(parse_program("")) == 0
        assert len(parse_program("% only comments\n")) == 0

    def test_str_output_reparses_identically(self):
        source = "p(a).\nq(X) :- p(X), not r(X)."
        program = parse_program(source)
        assert parse_program(str(program)) == program


class TestParseQuery:
    def test_with_question_mark(self):
        assert parse_query("anc(a, X)?") == Atom(
            "anc", (Constant("a"), Variable("X"))
        )

    def test_with_dot(self):
        assert parse_query("anc(a, X).").predicate == "anc"

    def test_bare(self):
        assert parse_query("anc(a, X)").predicate == "anc"

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ParseError):
            parse_query("anc(a, X)? extra")
