"""Tests for loose stratification and the local-stratification oracle."""

import pytest

from repro.analysis.loose import (
    find_loose_violation,
    ground_program,
    is_locally_stratified,
    is_loosely_stratified,
)
from repro.analysis.stratify import is_stratifiable
from repro.datalog.parser import parse_program
from repro.facts.database import Database

# Bry's running example (PODS 1989, Fig. 1): constructively consistent,
# neither stratified nor (for this fact base) problematic — the constants
# a/1 in the rule make the negative cycle unclosable.
LOOSE_NOT_STRATIFIED = parse_program(
    """
    p(X, a) :- q(X, Y), not r(Z, X), not p(Z, b).
    """
)

WIN = parse_program("win(X) :- move(X,Y), not win(Y).")

STRATIFIED = parse_program(
    """
    reach(X,Y) :- e(X,Y).
    reach(X,Y) :- e(X,Z), reach(Z,Y).
    unreach(X,Y) :- node(X), node(Y), not reach(X,Y).
    """
)


class TestLooseStratification:
    def test_stratified_programs_are_loosely_stratified(self):
        assert is_loosely_stratified(STRATIFIED)

    def test_constants_can_break_negative_cycles(self):
        # p(_, a) cannot unify with p(_, b): loosely stratified although
        # the predicate-level graph has a negative self-loop.
        assert not is_stratifiable(LOOSE_NOT_STRATIFIED)
        assert is_loosely_stratified(LOOSE_NOT_STRATIFIED)

    def test_win_game_is_not_loosely_stratified(self):
        assert not is_loosely_stratified(WIN)

    def test_violation_witness_unifies(self):
        from repro.datalog.unify import unify_atoms

        witness = find_loose_violation(WIN)
        assert witness is not None
        start, back = witness
        assert unify_atoms(start, back) is not None

    def test_positive_cycle_alone_is_fine(self):
        program = parse_program(
            """
            p(X) :- q(X).
            q(X) :- p(X).
            """
        )
        assert is_loosely_stratified(program)

    def test_negative_chain_through_two_predicates(self):
        program = parse_program(
            """
            p(X) :- base(X), not q(X).
            q(X) :- base(X), not p(X).
            """
        )
        assert not is_loosely_stratified(program)


class TestGroundProgram:
    def test_grounding_over_active_domain(self):
        program = parse_program("p(X) :- q(X).")
        database = Database.from_facts([])
        database.add("q", ("a",))
        database.add("q", ("b",))
        instances = ground_program(program, database)
        heads = sorted(str(rule.head) for rule in instances)
        assert heads == ["p(a)", "p(b)"]

    def test_rule_without_variables_kept_as_is(self):
        program = parse_program("p(a) :- q(a).")
        assert len(ground_program(program)) == 1


class TestLocalStratification:
    def test_stratified_is_locally_stratified(self):
        db = Database()
        db.add("e", ("a", "b"))
        db.add("node", ("a",))
        db.add("node", ("b",))
        assert is_locally_stratified(STRATIFIED, db)

    def test_win_on_cyclic_moves_is_not_locally_stratified(self):
        db = Database()
        db.add("move", ("a", "b"))
        db.add("move", ("b", "a"))
        assert not is_locally_stratified(WIN, db)

    def test_win_on_acyclic_moves_strict_vs_filtered(self):
        db = Database()
        db.add("move", ("a", "b"))
        # Strictly: the instantiation contains win(b) :- move(b,b), not
        # win(b), so the level mapping is impossible.
        assert not is_locally_stratified(WIN, db)
        # Filtered by the database, the unsatisfiable instances drop out.
        assert is_locally_stratified(WIN, db, filter_edb=True)

    def test_loose_example_is_locally_stratified(self):
        db = Database()
        db.add("q", ("a", "l"))
        assert is_locally_stratified(LOOSE_NOT_STRATIFIED, db)


class TestCrossCheck:
    """Loose stratification must imply local stratification on the
    function-free scenarios (they coincide for function-free programs)."""

    @pytest.mark.parametrize(
        "source, facts",
        [
            ("p(X) :- q(X), not r(X).", [("q", ("a",))]),
            (
                "p(X,a) :- q(X,Y), not p(Y,b).",
                [("q", ("a", "b"))],
            ),
            ("win(X) :- move(X,Y), not win(Y).", [("move", ("a", "a"))]),
        ],
    )
    def test_loose_implies_local(self, source, facts):
        program = parse_program(source)
        db = Database()
        for pred, row in facts:
            db.add(pred, row)
        if is_loosely_stratified(program):
            assert is_locally_stratified(program, db)
