"""Tests for the pretty-printing helpers."""

from repro.datalog.atoms import Atom
from repro.datalog.parser import parse_program, parse_query, parse_rule
from repro.datalog.pretty import (
    format_answers,
    format_bindings,
    format_program,
    format_rule,
)
from repro.datalog.terms import Constant


def ground(pred, *values):
    return Atom(pred, tuple(Constant(v) for v in values))


class TestFormatRule:
    def test_short_rule_single_line(self):
        rule = parse_rule("anc(X,Y) :- par(X,Y).")
        assert format_rule(rule) == "anc(X, Y) :- par(X, Y)."

    def test_long_rule_wraps(self):
        body = ", ".join(
            f"pred_with_a_long_name_{i}(Variable{i}, X)" for i in range(5)
        )
        rule = parse_rule(f"head(X) :- {body}.")
        formatted = format_rule(rule)
        assert "\n" in formatted
        assert formatted.endswith(".")


class TestFormatProgram:
    def test_grouping_by_head(self):
        program = parse_program(
            """
            q(X) :- b(X).
            p(X) :- a(X).
            p(X) :- q(X).
            f(a).
            """
        )
        text = format_program(program)
        blocks = text.split("\n\n")
        assert blocks[0] == "f(a)."  # facts first
        # p's two rules grouped in one block despite interleaving.
        p_block = [b for b in blocks if b.startswith("p(")][0]
        assert p_block.count("\n") == 1

    def test_flat_mode_preserves_order(self):
        program = parse_program("b(X) :- e(X). a(X) :- e(X).")
        text = format_program(program, group_by_head=False)
        assert text.splitlines()[0].startswith("b(")

    def test_round_trips_through_parser(self):
        program = parse_program(
            "f(a). p(X) :- a(X), not b(X). q(X) :- p(X)."
        )
        assert parse_program(format_program(program)).predicates == (
            program.predicates
        )


class TestFormatAnswers:
    def test_sorted_output(self):
        text = format_answers([ground("p", "b"), ground("p", "a")])
        assert text.splitlines() == ["p(a)", "p(b)"]

    def test_limit_with_ellipsis(self):
        atoms = [ground("p", i) for i in range(5)]
        text = format_answers(atoms, limit=2)
        assert "(3 more)" in text

    def test_empty(self):
        assert format_answers([]) == "(no answers)"


class TestFormatBindings:
    def test_binding_rows(self):
        query = parse_query("anc(a, X)?")
        text = format_bindings(query, [ground("anc", "a", "b")])
        assert text == "X = b"

    def test_two_variables(self):
        query = parse_query("anc(X, Y)?")
        text = format_bindings(query, [ground("anc", "a", "b")])
        assert text == "X = a, Y = b"

    def test_ground_query_true_false(self):
        query = parse_query("anc(a, b)?")
        assert format_bindings(query, [ground("anc", "a", "b")]) == "true"
        assert format_bindings(query, []) == "false"

    def test_no_answers_with_variables(self):
        query = parse_query("anc(a, X)?")
        assert format_bindings(query, []) == "(no answers)"
