"""Tests for the resource-governance subsystem (repro.engine.budget).

Three properties are pinned here:

1. every limit actually trips, on every engine, on adversarial
   workloads, and the error says which limit it was;
2. the partial database carried by a trip is a *sound prefix* of the
   full model — nothing in it is wrong, it is merely incomplete;
3. an ungoverned run (no budget, or an unlimited one) is identical to
   the pre-governance behaviour: same facts, same counters.
"""

import statistics
import time

import pytest

from repro import Engine, EvaluationBudget, run_strategy
from repro.core.compare import check_correspondence
from repro.datalog.parser import parse_program, parse_query
from repro.engine.budget import POLL_STRIDE, Checkpoint, ensure_checkpoint
from repro.engine.counters import EvaluationStats
from repro.engine.incremental import IncrementalEngine
from repro.engine.naive import naive_fixpoint
from repro.engine.seminaive import seminaive_fixpoint
from repro.engine.stratified import stratified_fixpoint
from repro.engine.wellfounded import alternating_fixpoint
from repro.errors import BudgetExceededError
from repro.facts.database import Database
from repro.obs import collect
from repro.topdown.oldt import oldt_query
from repro.topdown.qsqr import qsqr_query
from repro.topdown.sld import sld_query


def chain_program(n: int):
    """Transitive closure over an n-edge chain: n*(n+1)/2 derived facts,
    n fixpoint rounds — adversarial for every limit."""
    facts = " ".join(f"par(n{i},n{i+1})." for i in range(n))
    rules = "anc(X,Y) :- par(X,Y). anc(X,Y) :- par(X,Z), anc(Z,Y)."
    return parse_program(f"{facts} {rules}")


def assert_sound_prefix(partial: Database, full: Database) -> None:
    """Every fact in *partial* must be present in *full*."""
    assert isinstance(partial, Database)
    for predicate in partial.predicates():
        missing = partial.rows(predicate) - full.rows(predicate)
        assert not missing, f"unsound partial facts for {predicate}: {missing}"


GENEROUS = EvaluationBudget(
    wall_clock_seconds=3600.0,
    max_iterations=10**9,
    max_facts=10**9,
    max_attempts=10**9,
)


class TestEvaluationBudget:
    def test_rejects_non_positive_limits(self):
        for field in (
            "wall_clock_seconds",
            "max_iterations",
            "max_facts",
            "max_attempts",
        ):
            with pytest.raises(ValueError):
                EvaluationBudget(**{field: 0})
            with pytest.raises(ValueError):
                EvaluationBudget(**{field: -1})

    def test_unlimited(self):
        assert EvaluationBudget().unlimited
        assert not EvaluationBudget(max_facts=1).unlimited

    def test_ensure_checkpoint_contract(self):
        stats = EvaluationStats()
        assert ensure_checkpoint(None, stats) is None
        assert ensure_checkpoint(EvaluationBudget(), stats) is None
        fresh = ensure_checkpoint(EvaluationBudget(max_facts=1), stats)
        assert isinstance(fresh, Checkpoint)
        assert fresh.stats is stats
        # A running checkpoint passes through so nested evaluations share
        # the ancestor's clock and counters.
        other = EvaluationStats()
        assert ensure_checkpoint(fresh, other) is fresh


class TestCheckpoint:
    def test_check_round_trips_iterations(self):
        stats = EvaluationStats()
        stats.iterations = 3
        checkpoint = EvaluationBudget(max_iterations=3).start(stats)
        with pytest.raises(BudgetExceededError) as excinfo:
            checkpoint.check_round()
        assert excinfo.value.limit == "iterations"

    def test_check_round_trips_facts(self):
        stats = EvaluationStats()
        stats.facts_derived = 10
        checkpoint = EvaluationBudget(max_facts=5).start(stats)
        with pytest.raises(BudgetExceededError) as excinfo:
            checkpoint.check_round()
        assert excinfo.value.limit == "facts"

    def test_poll_is_strided(self):
        stats = EvaluationStats()
        stats.attempts = 100
        checkpoint = EvaluationBudget(max_attempts=1).start(stats)
        for _ in range(POLL_STRIDE - 1):
            checkpoint.poll()  # off-stride polls never check
        with pytest.raises(BudgetExceededError) as excinfo:
            checkpoint.poll()  # the POLL_STRIDE-th does
        assert excinfo.value.limit == "attempts"

    def test_wall_clock_trips(self):
        checkpoint = EvaluationBudget(wall_clock_seconds=1e-9).start(
            EvaluationStats()
        )
        time.sleep(0.001)
        with pytest.raises(BudgetExceededError) as excinfo:
            checkpoint.check_round()
        assert excinfo.value.limit == "wall_clock"

    def test_trip_carries_bound_partial(self):
        database = Database()
        database.add("p", ("a",))
        stats = EvaluationStats()
        stats.facts_derived = 2
        checkpoint = EvaluationBudget(max_facts=1).start(stats)
        checkpoint.bind(database)
        with pytest.raises(BudgetExceededError) as excinfo:
            checkpoint.check_round()
        assert excinfo.value.partial is database
        assert excinfo.value.stats is stats

    def test_trip_calls_partial_thunk(self):
        database = Database()
        stats = EvaluationStats()
        stats.facts_derived = 2
        checkpoint = EvaluationBudget(max_facts=1).start(stats)
        checkpoint.bind(lambda: database)
        with pytest.raises(BudgetExceededError) as excinfo:
            checkpoint.check_round()
        assert excinfo.value.partial is database

    def test_trip_emits_metrics(self):
        stats = EvaluationStats()
        stats.facts_derived = 2
        with collect() as metrics:
            checkpoint = EvaluationBudget(max_facts=1).start(stats)
            with pytest.raises(BudgetExceededError):
                checkpoint.check_round()
            snapshot = metrics.snapshot()
        assert snapshot["counters"]["budget.exceeded"] == 1
        assert snapshot["counters"]["budget.exceeded.facts"] == 1


BOTTOM_UP = [naive_fixpoint, seminaive_fixpoint, stratified_fixpoint]


@pytest.mark.parametrize("fixpoint", BOTTOM_UP, ids=lambda f: f.__name__)
class TestBottomUpTrips:
    def test_max_facts_trips_with_sound_partial(self, fixpoint):
        program = chain_program(12)
        full, _ = fixpoint(program)
        with pytest.raises(BudgetExceededError) as excinfo:
            fixpoint(program, budget=EvaluationBudget(max_facts=3))
        error = excinfo.value
        assert error.limit == "facts"
        assert error.stats.facts_derived >= 3
        assert_sound_prefix(error.partial, full)
        # The prefix is a real prefix: work happened before the trip.
        assert error.partial.rows("anc")

    def test_max_iterations_trips(self, fixpoint):
        with pytest.raises(BudgetExceededError) as excinfo:
            fixpoint(chain_program(12), budget=EvaluationBudget(max_iterations=2))
        assert excinfo.value.limit == "iterations"
        assert excinfo.value.stats.iterations >= 2

    def test_max_attempts_trips(self, fixpoint):
        with pytest.raises(BudgetExceededError) as excinfo:
            fixpoint(chain_program(12), budget=EvaluationBudget(max_attempts=1))
        assert excinfo.value.limit == "attempts"

    def test_wall_clock_trips(self, fixpoint):
        with pytest.raises(BudgetExceededError) as excinfo:
            fixpoint(
                chain_program(12),
                budget=EvaluationBudget(wall_clock_seconds=1e-9),
            )
        assert excinfo.value.limit == "wall_clock"

    def test_no_budget_identical_to_generous_budget(self, fixpoint):
        program = chain_program(16)
        bare_db, bare_stats = fixpoint(program)
        governed_db, governed_stats = fixpoint(program, budget=GENEROUS)
        assert bare_db == governed_db
        assert bare_stats.inferences == governed_stats.inferences
        assert bare_stats.attempts == governed_stats.attempts
        assert bare_stats.facts_derived == governed_stats.facts_derived
        assert bare_stats.iterations == governed_stats.iterations


WIN_PROGRAM = """
move(a,b). move(b,a). move(b,c). move(c,d).
win(X) :- move(X,Y), not win(Y).
"""


class TestWellFounded:
    def test_budget_trips_and_partial_is_wf_true(self):
        program = parse_program(WIN_PROGRAM)
        full = alternating_fixpoint(program)
        with pytest.raises(BudgetExceededError) as excinfo:
            alternating_fixpoint(
                program, budget=EvaluationBudget(max_attempts=1)
            )
        error = excinfo.value
        assert error.limit == "attempts"
        # The bound partial is the latest underestimate: everything in it
        # must be well-founded TRUE, never a Γ overestimate.
        if error.partial is not None:
            assert_sound_prefix(error.partial, full.true)

    def test_no_budget_identical(self):
        program = parse_program(WIN_PROGRAM)
        bare = alternating_fixpoint(program)
        governed = alternating_fixpoint(program, budget=GENEROUS)
        assert bare.true == governed.true
        assert bare.undefined == governed.undefined
        assert bare.stats.inferences == governed.stats.inferences


class TestIncremental:
    def test_initial_materialisation_trips(self):
        with pytest.raises(BudgetExceededError) as excinfo:
            IncrementalEngine(
                chain_program(12), budget=EvaluationBudget(max_facts=3)
            )
        assert excinfo.value.limit == "facts"

    def test_add_gets_fresh_allowance_per_operation(self):
        # chain(6) derives 21 anc facts; a 30-fact budget admits the
        # initial build, and because the allowance is per operation the
        # small adds afterwards must all succeed even though lifetime
        # totals exceed the limit many times over.
        engine = IncrementalEngine(
            chain_program(6), budget=EvaluationBudget(max_facts=30)
        )
        for i in range(6, 12):
            engine.add(f"par(n{i},n{i+1})")
        assert engine.stats.facts_derived > 30

    def test_add_trips_and_merges_stats(self):
        # max_attempts=2 would trip the initial build; construct
        # ungoverned, then install the budget for the operation.
        engine = IncrementalEngine(chain_program(10))
        engine._budget = EvaluationBudget(max_attempts=2)
        before = engine.stats.attempts
        with pytest.raises(BudgetExceededError) as excinfo:
            engine.add("par(n10,n11)")
        assert excinfo.value.limit == "attempts"
        # The failed operation's counters were still merged.
        assert engine.stats.attempts > before


class TestTopDown:
    def test_oldt_trips_with_sound_partial(self):
        # The tabled partial holds answers to memoised *subgoals* as well
        # as the root call, so soundness is membership in the full model.
        program = chain_program(16)
        full_model, _ = seminaive_fixpoint(program)
        with pytest.raises(BudgetExceededError) as excinfo:
            oldt_query(
                program,
                parse_query("anc(n0, X)?"),
                budget=EvaluationBudget(max_iterations=2),
            )
        error = excinfo.value
        assert error.limit == "iterations"
        assert error.partial is not None
        assert_sound_prefix(error.partial, full_model)

    def test_qsqr_trips_with_sound_partial(self):
        program = chain_program(16)
        full_model, _ = seminaive_fixpoint(program)
        with pytest.raises(BudgetExceededError) as excinfo:
            qsqr_query(
                program,
                parse_query("anc(n0, X)?"),
                budget=EvaluationBudget(max_iterations=1),
            )
        error = excinfo.value
        assert error.limit == "iterations"
        assert error.partial is not None
        assert_sound_prefix(error.partial, full_model)

    def test_sld_wall_clock_trips(self):
        # SLD polls the checkpoint once per resolution step; a long chain
        # guarantees enough steps to cross the poll stride.
        program = chain_program(60)
        with pytest.raises(BudgetExceededError) as excinfo:
            sld_query(
                program,
                parse_query("anc(X, Y)?"),
                budget=EvaluationBudget(wall_clock_seconds=1e-9),
            )
        assert excinfo.value.limit == "wall_clock"

    def test_sld_native_limits_are_tagged(self):
        program = chain_program(30)
        with pytest.raises(BudgetExceededError) as excinfo:
            sld_query(program, parse_query("anc(X, Y)?"), max_steps=10)
        assert excinfo.value.limit == "steps"
        with pytest.raises(BudgetExceededError) as excinfo:
            sld_query(program, parse_query("anc(X, Y)?"), max_depth=3)
        assert excinfo.value.limit == "depth"

    def test_topdown_no_budget_identical(self):
        program = chain_program(12)
        goal = parse_query("anc(n0, X)?")
        for query_fn in (oldt_query, qsqr_query):
            bare_answers, bare_stats = query_fn(program, goal)
            governed_answers, governed_stats = query_fn(
                program, goal, budget=GENEROUS
            )
            assert bare_answers == governed_answers
            assert bare_stats.inferences == governed_stats.inferences
            assert bare_stats.attempts == governed_stats.attempts


NON_SLD_STRATEGIES = (
    "naive",
    "seminaive",
    "oldt",
    "qsqr",
    "magic",
    "supplementary",
    "alexander",
)


class TestStrategySurface:
    @pytest.mark.parametrize("name", NON_SLD_STRATEGIES)
    def test_every_strategy_honours_wall_clock(self, name):
        program = chain_program(16)
        with pytest.raises(BudgetExceededError) as excinfo:
            run_strategy(
                name,
                program,
                parse_query("anc(n0, X)?"),
                budget=EvaluationBudget(wall_clock_seconds=1e-9),
            )
        assert excinfo.value.limit == "wall_clock"

    @pytest.mark.parametrize(
        "name", NON_SLD_STRATEGIES + ("sld",)
    )
    def test_every_strategy_unchanged_without_budget(self, name):
        program = chain_program(10)
        goal = parse_query("anc(n0, X)?")
        bare = run_strategy(name, program, goal)
        governed = run_strategy(name, program, goal, budget=GENEROUS)
        assert bare.answer_rows == governed.answer_rows
        assert bare.stats.inferences == governed.stats.inferences
        assert bare.stats.attempts == governed.stats.attempts

    def test_engine_facade_accepts_budget(self):
        engine = Engine(chain_program(16))
        with pytest.raises(BudgetExceededError):
            engine.query(
                "anc(n0, X)?",
                strategy="seminaive",
                budget=EvaluationBudget(max_facts=2),
            )
        result = engine.query("anc(n0, X)?", budget=GENEROUS)
        assert len(result.answers) == 16

    def test_check_correspondence_accepts_budget(self):
        program = chain_program(12)
        goal = parse_query("anc(n0, X)?")
        with pytest.raises(BudgetExceededError):
            check_correspondence(
                program, goal, budget=EvaluationBudget(wall_clock_seconds=1e-9)
            )
        correspondence = check_correspondence(program, goal, budget=GENEROUS)
        assert correspondence.exact


class TestCli:
    def _write_program(self, tmp_path):
        source = tmp_path / "chain.dl"
        facts = "\n".join(f"par(n{i},n{i+1})." for i in range(12))
        source.write_text(
            facts
            + "\nanc(X,Y) :- par(X,Y).\nanc(X,Y) :- par(X,Z), anc(Z,Y).\n"
        )
        return str(source)

    def test_budget_trip_exits_3(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write_program(tmp_path)
        code = main(
            ["query", path, "anc(n0, X)?", "--strategy", "seminaive",
             "--max-facts", "2"]
        )
        assert code == 3
        captured = capsys.readouterr()
        assert "budget exceeded" in captured.err
        assert "partial result" in captured.err

    def test_generous_flags_exit_0(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write_program(tmp_path)
        code = main(
            ["query", path, "anc(n0, X)?", "--timeout", "60",
             "--max-facts", "100000", "--max-iterations", "100000"]
        )
        assert code == 0
        assert "X = n12" in capsys.readouterr().out


class TestOverhead:
    def test_governed_run_is_not_materially_slower(self):
        # The acceptance criterion is <2% on the A2 micro-bench; a strict
        # 2% gate would flake on shared CI machines, so this pins the
        # property loosely (median of repeats, generous ceiling) while
        # the hooks' structure — `checkpoint is None` tests only, no new
        # counter charges — is what actually guarantees the 2% figure.
        program = chain_program(64)
        seminaive_fixpoint(program)  # warm-up

        def timed(budget):
            samples = []
            for _ in range(5):
                start = time.perf_counter()
                seminaive_fixpoint(program, budget=budget)
                samples.append(time.perf_counter() - start)
            return statistics.median(samples)

        bare = timed(None)
        governed = timed(GENEROUS)
        assert governed <= bare * 1.5 + 0.01
