"""Unit tests for stratification."""

import pytest

from repro.analysis.stratify import is_stratifiable, stratify
from repro.datalog.parser import parse_program
from repro.errors import StratificationError


class TestStratify:
    def test_negation_free_program_is_one_stratum(self):
        program = parse_program(
            """
            anc(X,Y) :- par(X,Y).
            anc(X,Y) :- par(X,Z), anc(Z,Y).
            """
        )
        stratification = stratify(program)
        assert stratification.depth == 1
        assert set(stratification.strata[0].proper_rules) == set(
            program.proper_rules
        )

    def test_two_strata_for_single_negation(self):
        program = parse_program(
            """
            reach(X,Y) :- e(X,Y).
            reach(X,Y) :- e(X,Z), reach(Z,Y).
            unreach(X,Y) :- node(X), node(Y), not reach(X,Y).
            """
        )
        stratification = stratify(program)
        assert stratification.depth == 2
        assert stratification.strata[0].idb_predicates == {"reach"}
        assert stratification.strata[1].idb_predicates == {"unreach"}
        assert (
            stratification.stratum_for_predicate("unreach")
            > stratification.stratum_for_predicate("reach")
        )

    def test_three_strata_chain_of_negations(self):
        program = parse_program(
            """
            a(X) :- base(X).
            b(X) :- base(X), not a(X).
            c(X) :- base(X), not b(X).
            """
        )
        assert stratify(program).depth == 3

    def test_edb_predicates_are_stratum_zero(self):
        program = parse_program("p(X) :- q(X), not r(X).")
        stratification = stratify(program)
        assert stratification.stratum_for_predicate("q") == 0
        assert stratification.stratum_for_predicate("r") == 0

    def test_positive_recursion_through_negated_lower_stratum_ok(self):
        program = parse_program(
            """
            safe(X) :- node(X), not bad(X).
            conn(X,Y) :- safe(X), safe(Y), e(X,Y).
            conn(X,Y) :- conn(X,Z), conn(Z,Y).
            """
        )
        assert is_stratifiable(program)
        stratification = stratify(program)
        assert stratification.stratum_for_predicate("conn") >= (
            stratification.stratum_for_predicate("safe")
        )

    def test_direct_negative_self_loop_rejected(self):
        program = parse_program("win(X) :- move(X,Y), not win(Y).")
        with pytest.raises(StratificationError):
            stratify(program)
        assert not is_stratifiable(program)

    def test_negative_cycle_through_two_predicates_rejected(self):
        program = parse_program(
            """
            p(X) :- base(X), not q(X).
            q(X) :- base(X), not p(X).
            """
        )
        assert not is_stratifiable(program)

    def test_positive_cycle_is_fine(self):
        program = parse_program(
            """
            p(X) :- q(X).
            q(X) :- p(X).
            p(X) :- base(X).
            """
        )
        assert is_stratifiable(program)

    def test_strata_union_preserves_all_rules(self):
        program = parse_program(
            """
            a(X) :- base(X).
            b(X) :- base(X), not a(X).
            c(X) :- b(X).
            """
        )
        stratification = stratify(program)
        recovered = [
            rule for stratum in stratification.strata for rule in stratum
        ]
        assert sorted(map(str, recovered)) == sorted(
            map(str, program.proper_rules)
        )
