"""Tests for the constant interner (repro.datalog.intern).

The interner is the foundation of the columnar backend's bit-identity
claim: ids must be dense, stable across copies, equality-compatible with
the tuple backend's sets, and safe to grow from concurrent serve
threads.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.datalog.intern import ConstantInterner
from repro.engine.columnar import ColumnarDatabase, as_storage
from repro.facts.database import Database
from repro.obs import ThreadSafeMetrics, collect
from repro.serve.service import QueryService


class TestBijection:
    def test_first_seen_order_is_dense(self):
        interner = ConstantInterner()
        assert [interner.intern(v) for v in ("a", "b", "a", "c")] == [
            0, 1, 0, 2,
        ]
        assert len(interner) == 3

    def test_round_trip_non_string_constants(self):
        """Ints, floats, bools, None round-trip unchanged through ids."""
        interner = ConstantInterner()
        values = ["a", 7, -3, 2.5, None, ("nested", 1), False]
        row = tuple(values)
        encoded = interner.intern_row(row)
        assert all(isinstance(ident, int) for ident in encoded)
        decoded = interner.extern_row(encoded)
        assert decoded == row
        for value in values:
            assert interner.value_of(interner.intern(value)) == value

    def test_equality_semantics_match_tuple_sets(self):
        """1 == 1.0 == True collapse to one id, exactly as in a set."""
        interner = ConstantInterner()
        assert interner.intern(1) == interner.intern(1.0)
        assert interner.intern(1) == interner.intern(True)
        assert interner.intern(0) == interner.intern(False)
        assert interner.intern(1) != interner.intern("1")
        # First-seen value wins the reverse map, mirroring dict semantics.
        assert interner.value_of(interner.intern(True)) == 1

    def test_id_of_never_grows_the_table(self):
        interner = ConstantInterner()
        interner.intern("known")
        assert interner.id_of("unknown") is None
        assert interner.id_of("known") == 0
        assert len(interner) == 1

    def test_intern_rows_extern_rows(self):
        interner = ConstantInterner()
        rows = [("a", "b"), ("b", "c")]
        encoded = list(interner.intern_rows(rows))
        assert list(interner.extern_rows(encoded)) == rows


class TestIdStabilityAcrossCopies:
    def test_database_copy_shares_the_interner(self):
        database = ColumnarDatabase()
        relation = database.relation("e", 2)
        row = database.encode_row(("a", "b"))
        relation.add(row)
        clone = database.copy()
        assert clone.interner is database.interner
        # The same raw row encodes to the same ids in the copy ...
        assert clone.encode_row(("a", "b")) == row
        assert row in clone.relation("e")
        # ... and new constants interned via the copy are visible to the
        # original's encoder, so rows stay comparable across copies.
        new = clone.encode_row(("a", "fresh"))
        assert database.encode_row(("a", "fresh")) == new

    def test_restrict_and_merge_preserve_encodings(self):
        database = ColumnarDatabase()
        database.relation("e", 2).add(database.encode_row(("a", "b")))
        database.relation("p", 1).add(database.encode_row(("c",)))
        restricted = database.restrict(["e"])
        assert restricted.interner is database.interner
        merged = ColumnarDatabase(interner=database.interner)
        merged.merge(database)
        assert merged == database

    def test_conversion_round_trip_preserves_raw_facts(self):
        source = Database()
        source.relation("e", 2).add(("a", "b"))
        source.relation("e", 2).add(("b", "c"))
        columnar = as_storage(source, "columnar")
        back = as_storage(columnar, "tuples")
        assert back == source


class TestConcurrency:
    def test_concurrent_interning_agrees_on_ids(self):
        """Racing threads interning overlapping values agree on every id."""
        interner = ConstantInterner()
        values = [f"c{i}" for i in range(200)]
        barrier = threading.Barrier(8)

        def worker(offset: int) -> dict:
            barrier.wait()
            local = values[offset:] + values[:offset]
            return {value: interner.intern(value) for value in local}

        with ThreadPoolExecutor(max_workers=8) as pool:
            tables = list(pool.map(worker, range(0, 200, 25)))
        reference = tables[0]
        for table in tables[1:]:
            assert table == reference
        assert sorted(reference.values()) == list(range(200))
        assert len(interner) == 200
        for value, ident in reference.items():
            assert interner.value_of(ident) == value

    def test_concurrent_columnar_queries_through_the_service(self):
        """Serve worker threads interning via one shared prepared fixpoint."""
        with collect(ThreadSafeMetrics()):
            service = QueryService()
            service.load(
                "g",
                program_text=(
                    "e(a, b). e(b, c). e(c, d).\n"
                    "t(X, Y) :- e(X, Y).\n"
                    "t(X, Y) :- e(X, Z), t(Z, Y).\n"
                ),
            )
            barrier = threading.Barrier(6)

            def worker(_):
                barrier.wait()
                return service.query("g", "t(a, X)?", storage="columnar")

            with ThreadPoolExecutor(max_workers=6) as pool:
                payloads = list(pool.map(worker, range(6)))
            expected = service.query("g", "t(a, X)?", storage="tuples")
            for payload in payloads:
                assert payload["answers"] == expected["answers"]


class TestObservability:
    def test_intern_counters_are_recorded(self):
        with collect() as metrics:
            interner = ConstantInterner()
            interner.intern("a")
            interner.intern("b")
            interner.intern("a")
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["intern.misses"] == 2
        assert snapshot["histograms"]["intern.constants"]["last"] == 2
