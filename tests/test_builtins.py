"""Tests for built-in comparison predicates across the whole stack."""

import pytest

from repro.core.compare import check_correspondence
from repro.core.strategy import run_strategy
from repro.datalog.builtins import evaluate_builtin, is_builtin
from repro.datalog.parser import parse_program, parse_query, parse_rule
from repro.errors import EvaluationError

ALL = ("naive", "seminaive", "sld", "oldt", "qsqr", "magic", "supplementary", "alexander")

PEOPLE = parse_program(
    """
    age(ann, 12). age(bob, 30). age(cal, 45). age(dee, 30).
    adult(X) :- age(X, A), A >= 18.
    minor(X) :- age(X, A), A < 18.
    older(X, Y) :- age(X, A), age(Y, B), A > B.
    peer(X, Y) :- age(X, A), age(Y, A), X != Y.
    """
)


class TestEvaluateBuiltin:
    def test_registry(self):
        assert is_builtin("lt") and is_builtin("neq") and is_builtin("eq")
        assert not is_builtin("par")

    @pytest.mark.parametrize(
        "name, values, expected",
        [
            ("eq", (1, 1), True),
            ("eq", (1, 2), False),
            ("neq", ("a", "b"), True),
            ("neq", ("a", "a"), False),
            ("lt", (1, 2), True),
            ("lt", (2, 1), False),
            ("leq", (2, 2), True),
            ("gt", (3, 1), True),
            ("geq", (1, 2), False),
            ("lt", ("apple", "pear"), True),
        ],
    )
    def test_semantics(self, name, values, expected):
        assert evaluate_builtin(name, values) is expected

    def test_cross_type_ordering_rejected(self):
        with pytest.raises(EvaluationError):
            evaluate_builtin("lt", (1, "a"))

    def test_cross_type_equality_allowed(self):
        assert evaluate_builtin("neq", (1, "a"))

    def test_wrong_arity(self):
        with pytest.raises(EvaluationError):
            evaluate_builtin("lt", (1,))

    def test_unknown_builtin(self):
        with pytest.raises(EvaluationError):
            evaluate_builtin("almost", (1, 2))


class TestInfixParsing:
    def test_infix_forms(self):
        rule = parse_rule("p(X) :- q(X, A), A >= 18.")
        assert rule.body[1].predicate == "geq"

    @pytest.mark.parametrize(
        "operator, predicate",
        [("=", "eq"), ("!=", "neq"), ("<", "lt"), ("<=", "leq"), (">", "gt"), (">=", "geq")],
    )
    def test_every_operator(self, operator, predicate):
        rule = parse_rule(f"p(X) :- q(X, A), A {operator} 3.")
        assert rule.body[1].predicate == predicate

    def test_constant_on_the_left(self):
        rule = parse_rule("p(X) :- q(X, A), 18 <= A.")
        assert str(rule.body[1].atom) == "leq(18, A)"

    def test_prefix_form_equivalent(self):
        infix = parse_rule("p(X) :- q(X, A), A < 3.")
        prefix = parse_rule("p(X) :- q(X, A), lt(A, 3).")
        assert infix == prefix

    def test_negated_comparison(self):
        rule = parse_rule("p(X) :- q(X, A), not A < 3.")
        assert rule.body[1].negative
        assert rule.body[1].predicate == "lt"

    def test_round_trip_through_str(self):
        rule = parse_rule("p(X) :- q(X, A), A != 3.")
        assert parse_rule(str(rule)) == rule


class TestAgreementAcrossStrategies:
    @pytest.mark.parametrize(
        "query_text", ["adult(X)?", "minor(X)?", "older(cal, Y)?", "peer(X, Y)?"]
    )
    def test_people_queries(self, query_text):
        query = parse_query(query_text)
        reference = None
        for name in ALL:
            result = run_strategy(name, PEOPLE, query, None)
            if reference is None:
                reference = result.answer_rows
            else:
                assert result.answer_rows == reference, name
        assert reference  # every query has answers

    def test_recursive_rule_with_guard(self):
        program = parse_program(
            """
            e(0,1). e(1,2). e(2,3). e(3,4).
            bounded(X, Y) :- e(X, Y), Y <= 2.
            bounded(X, Y) :- e(X, Z), bounded(Z, Y), Y <= 2.
            """
        )
        query = parse_query("bounded(0, Y)?")
        reference = None
        for name in ALL:
            result = run_strategy(name, program, query, None)
            rows = result.answer_rows
            if reference is None:
                reference = rows
            assert rows == reference, name
        assert reference == {(0, 1), (0, 2)}

    def test_correspondence_with_builtins(self):
        program = parse_program(
            """
            e(0,1). e(1,2). e(2,3).
            small(X, Y) :- e(X, Y), X < Y.
            small(X, Y) :- e(X, Z), small(Z, Y), X < Y.
            """
        )
        correspondence = check_correspondence(
            program, parse_query("small(0, Y)?"), None
        )
        assert correspondence.exact, correspondence.summary()

    def test_builtin_out_of_order_is_reordered(self):
        # The comparison comes first textually; every engine must delay it.
        program = parse_program(
            """
            age(ann, 12). age(bob, 30).
            adult(X) :- A >= 18, age(X, A).
            """
        )
        for name in ALL:
            result = run_strategy(name, program, parse_query("adult(X)?"), None)
            assert result.answer_rows == {("bob",)}, name


class TestBuiltinSafety:
    def test_unbound_builtin_variable_is_unsafe(self):
        from repro.analysis.safety import check_rule_safety

        rule = parse_rule("p(X) :- q(X), X < Limit.")
        violations = check_rule_safety(rule)
        assert any("builtin" in v.place for v in violations)

    def test_builtin_does_not_make_head_safe(self):
        from repro.analysis.safety import check_rule_safety

        rule = parse_rule("p(Y) :- q(X), X < Y.")
        places = {v.place for v in check_rule_safety(rule)}
        assert "head" in places


class TestBuiltinNegation:
    def test_not_less_than(self):
        program = parse_program(
            """
            age(ann, 12). age(bob, 30).
            grown(X) :- age(X, A), not A < 18.
            """
        )
        for name in ALL:
            result = run_strategy(name, program, parse_query("grown(X)?"), None)
            assert result.answer_rows == {("bob",)}, name
