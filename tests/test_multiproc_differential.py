"""Differential tests: the multiprocess serving path vs the direct engine.

The single-process threaded service is the oracle: everything the
:class:`~repro.serve.pool.PooledService` serves through worker
processes — answers, stats, update semantics — must be **bit-identical**
to a direct in-process :class:`~repro.core.engine.Engine.query`.  The
pool adds shared-memory dataset transport, snapshot decode, registry
warm-starts, and crash-restart failover; none of that may perturb a
single row.

Also covered here: worker-death failover over real HTTP (SIGKILL a
worker mid-run, queries keep succeeding, restarts are counted) and the
client's bounded-retry behaviour including its opt-out.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro.core.engine import Engine
from repro.datalog.parser import parse_program
from repro.obs import ThreadSafeMetrics, collect
from repro.serve import PooledService, QueryService, create_server
from repro.serve.client import ServeClient, ServeError

from .test_kernel_differential import SEEDS, random_source

CHAIN = "\n".join(
    [f"edge({i}, {i + 1})." for i in range(30)]
    + [
        "anc(X, Y) :- edge(X, Y).",
        "anc(X, Y) :- edge(X, Z), anc(Z, Y).",
    ]
)

STRATEGIES = ("alexander", "magic", "supplementary", "seminaive")


def direct_rows(source: str, goal: str, strategy: str = "alexander", **config):
    program = parse_program(source)
    result = Engine(program).query(goal, strategy=strategy, **config)
    return [list(atom.ground_key()) for atom in result.answers]


@pytest.fixture(scope="module")
def pooled():
    """One two-worker pool shared by the in-process differential tests
    (spawn start-up is expensive; datasets are isolated per test by
    name)."""
    with collect(ThreadSafeMetrics()):
        service = PooledService(processes=2)
        try:
            yield service
        finally:
            service.close()


class TestPooledDifferential:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_answers_bit_identical(self, pooled, strategy):
        name = f"chain-{strategy}"
        pooled.load(name, program_text=CHAIN)
        served = pooled.query(name, "anc(0, X)?", strategy=strategy)
        assert served["answers"]["rows"] == direct_rows(
            CHAIN, "anc(0, X)?", strategy
        )
        again = pooled.query(name, "anc(0, X)?", strategy=strategy)
        assert again["answers"] == served["answers"]

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_random_programs_bit_identical(self, pooled, seed):
        source = random_source(seed)
        name = f"rand-{seed}"
        pooled.load(name, program_text=source)
        for goal in ("p(X, Y)?", "q(X, Y)?", "p(c0, Y)?"):
            served = pooled.query(name, goal, storage="columnar")
            assert served["answers"]["rows"] == direct_rows(
                source, goal, "alexander", storage="columnar"
            ), f"seed {seed} goal {goal}"

    def test_update_propagates_to_workers(self, pooled):
        oracle = QueryService()
        pooled.load("upd", program_text=CHAIN)
        oracle.load("upd", program_text=CHAIN)
        for batch in (["edge(30, 31)."], ["edge(31, 32)."]):
            pooled.update("upd", add=batch)
            oracle.update("upd", add=batch)
            served = pooled.query("upd", "anc(0, X)?")
            direct = oracle.query("upd", "anc(0, X)?")
            assert served["answers"] == direct["answers"]
            assert served["version"] == direct["version"]
        removed = pooled.update("upd", remove=["edge(31, 32)."])
        oracle.update("upd", remove=["edge(31, 32)."])
        assert removed["version"] == 4
        assert (
            pooled.query("upd", "anc(0, X)?")["answers"]
            == oracle.query("upd", "anc(0, X)?")["answers"]
        )

    def test_budget_payload_travels(self, pooled):
        pooled.load("budget", program_text=CHAIN)
        from repro.engine.budget import EvaluationBudget

        served = pooled.query(
            "budget", "anc(0, X)?", budget=EvaluationBudget(max_facts=3)
        )
        assert served["partial"] is True
        assert served["sound"] is True

    def test_unknown_dataset_fails_fast(self, pooled):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="unknown dataset"):
            pooled.query("never-loaded", "anc(0, X)?")

    def test_metrics_merge_covers_workers(self, pooled):
        pooled.load("met", program_text=CHAIN)
        pooled.query("met", "anc(0, X)?")
        payload = pooled.metrics_payload()
        workers = payload["workers"]
        assert workers["processes"] == 2
        assert len(workers["pids"]) == 2
        assert payload["metrics"]["counters"].get("serve.queries", 0) >= 1


class TestRegistryWarmsAcrossProcesses:
    def test_second_worker_first_request_is_cold_start_free(self, tmp_path):
        """Round-robin sends one request to each worker; the second
        worker's first request must load the first worker's serialized
        shape instead of re-transforming — exactly one preparation
        in the whole pool."""
        with collect(ThreadSafeMetrics()):
            service = PooledService(processes=2, registry=tmp_path)
            try:
                service.load("chain", program_text=CHAIN)
                first = service.query("chain", "anc(0, X)?")
                second = service.query("chain", "anc(0, X)?")
                assert first["answers"] == second["answers"]
                counters = service.metrics_payload()["metrics"]["counters"]
                assert counters.get("prepare.transforms", 0) == 1
                assert counters.get("prepare.compiles", 0) == 1
                assert counters.get("serve.registry.hits", 0) == 1
                assert counters.get("serve.registry.saves", 0) == 1
            finally:
                service.close()

    def test_restart_warm_starts_from_registry(self, tmp_path):
        with collect(ThreadSafeMetrics()):
            service = PooledService(processes=1, registry=tmp_path)
            try:
                service.load("chain", program_text=CHAIN)
                service.query("chain", "anc(0, X)?")
            finally:
                service.close()
        # A fresh pool (fresh processes, same registry dir) serving the
        # same facts: its first request loads, never transforms.
        with collect(ThreadSafeMetrics()):
            service = PooledService(processes=1, registry=tmp_path)
            try:
                service.load("chain", program_text=CHAIN)
                result = service.query("chain", "anc(0, X)?")
                assert result["answers"]["rows"] == direct_rows(
                    CHAIN, "anc(0, X)?"
                )
                counters = service.metrics_payload()["metrics"]["counters"]
                assert counters.get("prepare.transforms", 0) == 0
                assert counters.get("prepare.compiles", 0) == 0
                assert counters.get("serve.registry.hits", 0) == 1
            finally:
                service.close()


class TestWorkerDeathFailover:
    def test_sigkill_worker_requests_keep_succeeding(self):
        """Kill one worker over a live HTTP server: the dispatcher
        respawns it, in-flight work is retried, and answers stay
        identical throughout."""
        with collect(ThreadSafeMetrics()):
            service = PooledService(processes=2)
            server = create_server(
                port=0, service=service, install_metrics=False
            )
            thread = threading.Thread(
                target=server.serve_forever,
                kwargs={"poll_interval": 0.05},
                daemon=True,
            )
            thread.start()
            client = ServeClient(
                f"http://127.0.0.1:{server.port}", timeout=30.0
            )
            try:
                client.wait_healthy(15.0)
                client.load("chain", CHAIN)
                expected = client.query("chain", "anc(0, X)?")["answers"]
                victims = client.health()["workers"]["pids"]
                assert len(victims) == 2
                os.kill(victims[0], signal.SIGKILL)
                deadline = time.monotonic() + 10.0
                restarted = False
                while time.monotonic() < deadline and not restarted:
                    # Round-robin guarantees the dead slot is exercised.
                    for _ in range(4):
                        got = client.query("chain", "anc(0, X)?")["answers"]
                        assert got == expected
                    restarted = (
                        client.health()["workers"]["restarts"] >= 1
                    )
                assert restarted, "worker was never respawned"
                pids = client.health()["workers"]["pids"]
                assert victims[0] not in pids
                assert len(pids) == 2
            finally:
                server.shutdown()
                server.server_close()
                service.close()
                thread.join(timeout=5.0)


class TestClientRetry:
    def test_opt_out_fails_immediately(self):
        client = ServeClient("http://127.0.0.1:1", timeout=1.0, retries=0)
        started = time.monotonic()
        with pytest.raises(ServeError) as excinfo:
            client.health()
        assert time.monotonic() - started < 1.5
        assert excinfo.value.transient  # refused → transient, yet not retried

    def test_retries_are_bounded_with_backoff(self):
        client = ServeClient(
            "http://127.0.0.1:1", timeout=1.0, retries=2, backoff=0.05
        )
        started = time.monotonic()
        with pytest.raises(ServeError):
            client.health()
        elapsed = time.monotonic() - started
        # Two retry sleeps: 0.05 + 0.10; bounded well under a second.
        assert 0.10 <= elapsed < 5.0

    def test_http_400_is_not_transient_and_not_retried(self):
        with collect(ThreadSafeMetrics()):
            server = create_server(port=0, install_metrics=False)
            thread = threading.Thread(
                target=server.serve_forever,
                kwargs={"poll_interval": 0.05},
                daemon=True,
            )
            thread.start()
            client = ServeClient(f"http://127.0.0.1:{server.port}")
            try:
                client.wait_healthy(15.0)
                with pytest.raises(ServeError) as excinfo:
                    client.query("no-such-dataset", "p(X)?")
                assert excinfo.value.status == 400
                assert not excinfo.value.transient
            finally:
                server.shutdown()
                server.server_close()
                thread.join(timeout=5.0)
