"""Unit tests for repro.datalog.rules."""

import pytest

from repro.datalog.atoms import Atom, Literal
from repro.datalog.rules import Program, Rule
from repro.datalog.terms import Constant, Variable
from repro.errors import ProgramError

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
a, b = Constant("a"), Constant("b")

PAR_XY = Literal(Atom("par", (X, Y)))
ANC_ZY = Literal(Atom("anc", (Z, Y)))
RULE_BASE = Rule(Atom("anc", (X, Y)), (PAR_XY,))
RULE_REC = Rule(Atom("anc", (X, Y)), (Literal(Atom("par", (X, Z))), ANC_ZY))
FACT = Rule(Atom("par", (a, b)), ())


class TestRule:
    def test_is_fact(self):
        assert FACT.is_fact
        assert not RULE_BASE.is_fact

    def test_positive_and_negative_body(self):
        rule = Rule(
            Atom("p", (X,)),
            (Literal(Atom("q", (X,))), Literal(Atom("r", (X,)), positive=False)),
        )
        assert [l.predicate for l in rule.positive_body()] == ["q"]
        assert [l.predicate for l in rule.negative_body()] == ["r"]

    def test_variables_covers_head_and_body(self):
        assert RULE_REC.variables() == {X, Y, Z}

    def test_substitute(self):
        ground = RULE_BASE.substitute({X: a, Y: b})
        assert ground.head == Atom("anc", (a, b))
        assert ground.body[0].atom == Atom("par", (a, b))

    def test_rename_apart_produces_variant(self):
        renamed = RULE_REC.rename_apart()
        assert renamed.variables().isdisjoint(RULE_REC.variables())
        # Structure preserved: same predicates in same positions.
        assert renamed.head.predicate == "anc"
        assert [l.predicate for l in renamed.body] == ["par", "anc"]

    def test_rename_apart_preserves_sharing(self):
        renamed = RULE_REC.rename_apart()
        # The Z in par(X,Z) and anc(Z,Y) must stay the same variable.
        assert renamed.body[0].args[1] == renamed.body[1].args[0]

    def test_str_fact(self):
        assert str(FACT) == "par(a, b)."

    def test_str_rule(self):
        assert str(RULE_BASE) == "anc(X, Y) :- par(X, Y)."


class TestProgram:
    def test_rejects_non_ground_bodyless_rule(self):
        with pytest.raises(ProgramError):
            Program([Rule(Atom("p", (X,)), ())])

    def test_rejects_non_rule(self):
        with pytest.raises(ProgramError):
            Program([Atom("p", (a,))])  # type: ignore[list-item]

    def test_facts_and_proper_rules_split(self):
        program = Program([FACT, RULE_BASE, RULE_REC])
        assert program.facts == (FACT.head,)
        assert program.proper_rules == (RULE_BASE, RULE_REC)

    def test_idb_edb_partition(self):
        program = Program([FACT, RULE_BASE, RULE_REC])
        assert program.idb_predicates == {"anc"}
        assert program.edb_predicates == {"par"}
        assert program.predicates == {"anc", "par"}

    def test_rules_for(self):
        program = Program([FACT, RULE_BASE, RULE_REC])
        assert program.rules_for("anc") == (RULE_BASE, RULE_REC)
        assert program.rules_for("par") == ()

    def test_arities(self):
        program = Program([FACT, RULE_BASE])
        assert program.arities == {"par": 2, "anc": 2}

    def test_arities_raise_on_inconsistency(self):
        bad = Program(
            [Rule(Atom("p", (X,)), (Literal(Atom("q", (X,))),)),
             Rule(Atom("q", (X, Y)), (Literal(Atom("p", (X,))), Literal(Atom("p", (Y,)))))]
        )
        with pytest.raises(ProgramError):
            bad.arities

    def test_constants_active_domain(self):
        program = Program([FACT, RULE_BASE])
        assert program.constants() == {"a", "b"}

    def test_with_rules_extends(self):
        program = Program([RULE_BASE])
        extended = program.with_rules([RULE_REC])
        assert len(extended) == 2
        assert len(program) == 1  # immutable

    def test_without_facts(self):
        program = Program([FACT, RULE_BASE])
        assert Program([RULE_BASE]) == program.without_facts()

    def test_equality_and_hash(self):
        assert Program([RULE_BASE]) == Program([RULE_BASE])
        assert hash(Program([RULE_BASE])) == hash(Program([RULE_BASE]))

    def test_iteration_order_preserved(self):
        program = Program([FACT, RULE_BASE, RULE_REC])
        assert list(program) == [FACT, RULE_BASE, RULE_REC]
