"""Smoke tests: every example script must run cleanly end to end."""

import pathlib
import subprocess
import sys


EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def run_example(name, *args, timeout=180):
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def test_examples_directory_is_populated():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 5


def test_quickstart():
    result = run_example("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "anc(alice, gina)" in result.stdout
    assert "exact: True" in result.stdout


def test_same_generation_small():
    result = run_example("same_generation.py", "3", "2")
    assert result.returncode == 0, result.stderr
    assert "bound query" in result.stdout
    assert "open query" in result.stdout


def test_bill_of_materials():
    result = run_example("bill_of_materials.py")
    assert result.returncode == 0, result.stderr
    assert "tainted" in result.stdout


def test_flight_network():
    result = run_example("flight_network.py")
    assert result.returncode == 0, result.stderr
    assert "diverged as expected" in result.stdout
    assert "sea" in result.stdout


def test_strategy_shootout_small():
    result = run_example("strategy_shootout.py", "16")
    assert result.returncode == 0, result.stderr
    assert "exact" in result.stdout
    assert "MISMATCH" not in result.stdout


def test_game_analysis():
    result = run_example("game_analysis.py")
    assert result.returncode == 0, result.stderr
    assert "drawn" in result.stdout
    assert "not stratifiable" in result.stdout


def test_incremental_social():
    result = run_example("incremental_social.py")
    assert result.returncode == 0, result.stderr
    assert "new: barbara -> alonzo" in result.stdout


def test_org_chart():
    result = run_example("org_chart.py")
    assert result.returncode == 0, result.stderr
    assert "raj > sam" in result.stdout
