"""Unit tests for the naive fixpoint engine."""


from repro.datalog.parser import parse_program
from repro.engine.counters import EvaluationStats
from repro.engine.naive import apply_rules_once, naive_fixpoint
from repro.engine.matching import compile_rule


class TestNaiveFixpoint:
    def test_transitive_closure_on_chain(self, ancestor_program, chain_database):
        completed, stats = naive_fixpoint(ancestor_program, chain_database)
        assert completed.rows("anc") == {
            ("a", "b"), ("a", "c"), ("a", "d"),
            ("b", "c"), ("b", "d"), ("c", "d"),
        }
        assert stats.facts_derived == 6
        assert stats.iterations >= 3

    def test_embedded_facts_are_loaded(self):
        program = parse_program("e(a,b). p(X,Y) :- e(X,Y).")
        completed, _ = naive_fixpoint(program)
        assert completed.rows("p") == {("a", "b")}

    def test_input_database_is_not_mutated(self, ancestor_program, chain_database):
        before = chain_database.rows("par")
        naive_fixpoint(ancestor_program, chain_database)
        assert chain_database.rows("par") == before
        assert "anc" not in chain_database

    def test_empty_database_terminates(self, ancestor_program):
        completed, stats = naive_fixpoint(ancestor_program)
        assert completed.rows("anc") == frozenset()
        assert stats.facts_derived == 0

    def test_cyclic_data_terminates(self):
        program = parse_program(
            """
            e(a,b). e(b,a).
            tc(X,Y) :- e(X,Y).
            tc(X,Y) :- e(X,Z), tc(Z,Y).
            """
        )
        completed, _ = naive_fixpoint(program)
        assert completed.rows("tc") == {
            ("a", "a"), ("a", "b"), ("b", "a"), ("b", "b")
        }

    def test_idb_relations_exist_even_when_empty(self):
        program = parse_program("p(X) :- missing(X).")
        completed, _ = naive_fixpoint(program)
        assert completed.rows("p") == frozenset()
        assert "p" in completed

    def test_inferences_count_rederivations(self, ancestor_program, chain_database):
        _, stats = naive_fixpoint(ancestor_program, chain_database)
        # Naive recomputes everything each round, so inferences strictly
        # exceed the number of distinct facts.
        assert stats.inferences > stats.facts_derived

    def test_stats_accumulate_into_caller_record(self, ancestor_program, chain_database):
        stats = EvaluationStats(inferences=100)
        naive_fixpoint(ancestor_program, chain_database, stats)
        assert stats.inferences > 100


class TestApplyRulesOnce:
    def test_single_step_produces_only_immediate_consequences(
        self, ancestor_program, chain_database
    ):
        compiled = [compile_rule(r) for r in ancestor_program.proper_rules]
        database = chain_database.copy()
        database.relation("anc", 2)
        stats = EvaluationStats()
        produced = apply_rules_once(compiled, database, stats)
        assert {row for _, row in produced} == {
            ("a", "b"), ("b", "c"), ("c", "d")
        }

    def test_does_not_mutate_database(self, ancestor_program, chain_database):
        compiled = [compile_rule(r) for r in ancestor_program.proper_rules]
        database = chain_database.copy()
        database.relation("anc", 2)
        apply_rules_once(compiled, database, EvaluationStats())
        assert database.rows("anc") == frozenset()
