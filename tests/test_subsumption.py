"""Tests for atom subsumption and subsumption-based tabling in OLDT."""

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.parser import parse_program, parse_query
from repro.datalog.terms import Constant, Variable
from repro.datalog.unify import subsumes
from repro.topdown.oldt import OLDTEngine

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
a, b = Constant("a"), Constant("b")


class TestSubsumes:
    def test_open_subsumes_bound(self):
        assert subsumes(Atom("p", (X, Y)), Atom("p", (a, b))) is not None

    def test_open_subsumes_partially_bound(self):
        assert subsumes(Atom("p", (X, Y)), Atom("p", (a, Z))) is not None

    def test_bound_does_not_subsume_open(self):
        assert subsumes(Atom("p", (a, X)), Atom("p", (Y, b))) is None

    def test_special_variables_are_frozen(self):
        # p(X, X) does not subsume p(Y, Z): Y and Z are distinct symbols.
        assert subsumes(Atom("p", (X, X)), Atom("p", (Y, Z))) is None
        assert subsumes(Atom("p", (X, X)), Atom("p", (Z, Z))) is not None

    def test_repeated_general_variable_requires_equal_args(self):
        assert subsumes(Atom("p", (X, X)), Atom("p", (a, b))) is None
        assert subsumes(Atom("p", (X, X)), Atom("p", (a, a))) is not None

    def test_two_general_vars_may_share_a_target(self):
        assert subsumes(Atom("p", (X, Y)), Atom("p", (a, a))) is not None

    def test_predicate_and_arity_must_match(self):
        assert subsumes(Atom("p", (X,)), Atom("q", (a,))) is None
        assert subsumes(Atom("p", (X,)), Atom("p", (a, b))) is None

    def test_subsumption_is_reflexive_up_to_renaming(self):
        assert subsumes(Atom("p", (X, Y)), Atom("p", (Z, Z))) is not None
        assert subsumes(Atom("p", (X, Y)), Atom("p", (X, Y))) is not None


PROGRAM = parse_program(
    """
    par(a,b). par(b,c). par(c,d).
    anc(X,Y) :- par(X,Y).
    anc(X,Y) :- par(X,Z), anc(Z,Y).
    """
)


class TestSubsumptionTabling:
    def test_same_answers_both_modes(self):
        for query_text in ("anc(X, Y)?", "anc(a, X)?", "anc(a, d)?", "anc(X, d)?"):
            query = parse_query(query_text)
            variant = OLDTEngine(PROGRAM, tabling="variant").query(query)
            subsumed = OLDTEngine(PROGRAM, tabling="subsumption").query(query)
            assert {str(a) for a in variant} == {str(a) for a in subsumed}, query_text

    def test_open_query_uses_single_table(self):
        engine = OLDTEngine(PROGRAM, tabling="subsumption")
        engine.query(parse_query("anc(X, Y)?"))
        assert engine.stats.calls == 1

    def test_variant_mode_creates_table_per_pattern(self):
        engine = OLDTEngine(PROGRAM, tabling="variant")
        engine.query(parse_query("anc(X, Y)?"))
        # ff plus one bf table per node with an incoming par edge (b, c, d).
        assert engine.stats.calls == 4

    def test_subsumption_does_fewer_inferences_on_open_query(self):
        query = parse_query("anc(X, Y)?")
        variant = OLDTEngine(PROGRAM, tabling="variant")
        variant.query(query)
        subsumed = OLDTEngine(PROGRAM, tabling="subsumption")
        subsumed.query(query)
        assert subsumed.stats.inferences < variant.stats.inferences

    def test_bound_first_query_identical_to_variant(self):
        query = parse_query("anc(a, X)?")
        variant = OLDTEngine(PROGRAM, tabling="variant")
        variant.query(query)
        subsumed = OLDTEngine(PROGRAM, tabling="subsumption")
        subsumed.query(query)
        # Bound calls only: no general table ever exists to subsume them.
        assert subsumed.stats.calls == variant.stats.calls
        assert subsumed.stats.inferences == variant.stats.inferences

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            OLDTEngine(PROGRAM, tabling="telepathy")

    def test_cyclic_data_terminates_in_subsumption_mode(self):
        program = parse_program(
            """
            par(a,b). par(b,a).
            anc(X,Y) :- par(X,Y).
            anc(X,Y) :- par(X,Z), anc(Z,Y).
            """
        )
        engine = OLDTEngine(program, tabling="subsumption")
        answers = engine.query(parse_query("anc(X, Y)?"))
        assert len(answers) == 4
