"""Unit tests for the rule-kernel compiler (repro.engine.kernel)."""

import pytest

from repro.datalog.parser import parse_program
from repro.datalog.terms import Variable
from repro.engine.counters import EvaluationStats
from repro.engine.kernel import (
    DEFAULT_EXECUTOR,
    EXECUTORS,
    RuleKernel,
    compile_executors,
    compile_kernel,
    execute_kernel,
    head_rows,
    resolve_executor,
)
from repro.engine.matching import CompiledLiteral, compile_rule, match_body
from repro.errors import SafetyError
from repro.facts.database import Database
from repro.obs import collect


def _kernel(source: str, index: int = 0) -> RuleKernel:
    program = parse_program(source)
    return compile_kernel(compile_rule(program.proper_rules[index], None))


def _view(database: Database):
    def view(position, predicate):
        try:
            return database.relation(predicate)
        except KeyError:
            return None

    return view


class TestCompilation:
    def test_slot_numbering_follows_first_occurrence(self):
        kernel = _kernel("p(X, Y) :- e(X, Z), e(Z, Y).")
        assert kernel.slot_count == 3  # X=0, Z=1, Y=2
        first, second = (scan for scan, _ in kernel.levels)
        assert first.writes == ((0, 0), (1, 1))
        assert first.bound_probe == ()
        assert second.bound_probe == ((0, 1),)  # Z already bound
        assert second.writes == ((1, 2),)
        assert kernel.head == ((False, 0), (False, 2))

    def test_constants_become_const_probe(self):
        kernel = _kernel("p(X) :- e(a, X).")
        (scan, _), = kernel.levels
        assert scan.const_probe == ((0, "a"),)
        assert scan.writes == ((1, 0),)

    def test_repeated_variable_becomes_check(self):
        kernel = _kernel("p(X) :- e(X, X).")
        (scan, _), = kernel.levels
        assert scan.writes == ((0, 0),)
        assert scan.checks == ((1, 0),)

    def test_constant_head_argument(self):
        kernel = _kernel("p(a, X) :- e(X).")
        assert kernel.head == ((True, "a"), (False, 0))

    def test_negative_literal_becomes_trailing_test(self):
        kernel = _kernel("p(X) :- e(X), not q(X).")
        (scan, tests), = kernel.levels
        assert scan.predicate == "e"
        (test,) = tests
        assert test.predicate == "q"
        assert not test.positive and not test.builtin
        assert test.values == ((False, 0),)

    def test_builtin_becomes_trailing_test(self):
        kernel = _kernel("p(X, Y) :- e(X, Y), X < Y.")
        (scan, tests), = kernel.levels
        (test,) = tests
        assert test.builtin and test.predicate == "lt"
        assert test.values == ((False, 0), (False, 1))

    def test_unbound_test_variable_is_rejected(self):
        program = parse_program("p(X) :- e(X), not q(X).")
        compiled = compile_rule(program.proper_rules[0], None)
        source = compiled.body[1].source
        broken = CompiledLiteral(
            predicate="q",
            positive=False,
            constants=(),
            binders=((0, Variable("Unbound")),),
            filters=(),
            source=source,
        )
        object.__setattr__(compiled, "body", (compiled.body[0], broken))
        with pytest.raises(SafetyError):
            compile_kernel(compiled)

    def test_obs_counters(self):
        program = parse_program("p(X, Y) :- e(X, Z), e(Z, Y).")
        compiled = compile_rule(program.proper_rules[0], None)
        with collect() as metrics:
            compile_kernel(compiled)
        assert metrics.counters["kernel.rules_compiled"] == 1
        assert metrics.histograms["kernel.slots"].last == 3


class TestExecution:
    SOURCE = """
        e(a, b). e(b, c). e(c, d). q(c).
        p(X, Y) :- e(X, Y).
        p(X, Y) :- e(X, Z), p(Z, Y).
        r(X) :- p(a, X), not q(X).
    """

    def _program(self):
        program = parse_program(self.SOURCE)
        database = Database()
        database.add_atoms(program.facts)
        # Matching probes IDB relations too: make sure they exist.
        database.relation("p", 2)
        database.relation("q", 1)
        return program.without_facts(), database

    def test_kernel_matches_interpreted_rows_and_stats(self):
        program, database = self._program()
        database.add("p", ("b", "c"))
        database.add("p", ("c", "d"))
        for rule in program.proper_rules:
            compiled = compile_rule(rule, None)
            kernel = compile_kernel(compiled)
            kernel_stats = EvaluationStats()
            interp_stats = EvaluationStats()
            kernel_rows = list(
                execute_kernel(kernel, _view(database), kernel_stats)
            )
            interp_rows = [
                compiled.head_tuple(binding)
                for binding in match_body(compiled, _view(database), interp_stats)
            ]
            assert kernel_rows == interp_rows
            assert kernel_stats.as_dict() == interp_stats.as_dict()

    def test_head_rows_dispatches_both_executors(self):
        program, database = self._program()
        compiled = compile_rule(program.proper_rules[0], None)
        kernel = compile_kernel(compiled)
        via_kernel = list(
            head_rows(compiled, kernel, _view(database), EvaluationStats())
        )
        via_matcher = list(
            head_rows(compiled, None, _view(database), EvaluationStats())
        )
        assert via_kernel == via_matcher
        assert set(via_kernel) == {("a", "b"), ("b", "c"), ("c", "d")}

    def test_missing_relation_yields_nothing(self):
        kernel = _kernel("p(X) :- zz(X).")
        rows = list(execute_kernel(kernel, _view(Database()), EvaluationStats()))
        assert rows == []


class TestExecutorKnob:
    def test_default_is_kernel(self):
        assert DEFAULT_EXECUTOR == "kernel"
        assert DEFAULT_EXECUTOR in EXECUTORS

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ValueError):
            resolve_executor("jit")

    def test_compile_executors(self):
        program = parse_program("p(X) :- e(X). q(X) :- p(X).")
        compiled = [compile_rule(rule, None) for rule in program.proper_rules]
        kernels = compile_executors(compiled, "kernel")
        assert all(isinstance(kernel, RuleKernel) for _, kernel in kernels)
        interpreted = compile_executors(compiled, "interpreted")
        assert all(kernel is None for _, kernel in interpreted)
