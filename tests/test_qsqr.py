"""Unit tests for QSQR evaluation."""

import pytest

from repro.datalog.parser import parse_program, parse_query
from repro.topdown.qsqr import QSQREngine, qsqr_query


class TestQSQRBasics:
    def test_bound_query(self, ancestor_program, chain_database):
        answers, _ = qsqr_query(
            ancestor_program, parse_query("anc(a, X)?"), chain_database
        )
        assert {str(a) for a in answers} == {
            "anc(a, b)", "anc(a, c)", "anc(a, d)"
        }

    def test_open_query(self, ancestor_program, chain_database):
        answers, _ = qsqr_query(
            ancestor_program, parse_query("anc(X, Y)?"), chain_database
        )
        assert len(answers) == 6

    def test_fully_bound_query(self, ancestor_program, chain_database):
        answers, _ = qsqr_query(
            ancestor_program, parse_query("anc(a, d)?"), chain_database
        )
        assert len(answers) == 1

    def test_cyclic_data_terminates(self):
        program = parse_program(
            """
            par(a,b). par(b,c). par(c,a).
            anc(X,Y) :- par(X,Y).
            anc(X,Y) :- par(X,Z), anc(Z,Y).
            """
        )
        answers, _ = qsqr_query(program, parse_query("anc(a, X)?"))
        assert len(answers) == 3

    def test_left_recursion_terminates(self, chain_database):
        program = parse_program(
            """
            anc(X,Y) :- anc(X,Z), par(Z,Y).
            anc(X,Y) :- par(X,Y).
            """
        )
        answers, _ = qsqr_query(
            program, parse_query("anc(a, X)?"), chain_database
        )
        assert len(answers) == 3

    def test_edb_query_answered_by_lookup(self, ancestor_program, chain_database):
        answers, stats = qsqr_query(
            ancestor_program, parse_query("par(a, X)?"), chain_database
        )
        assert [str(a) for a in answers] == ["par(a, b)"]
        assert stats.calls == 0

    def test_nonlinear_recursion(self, chain_database):
        program = parse_program(
            """
            anc(X,Y) :- par(X,Y).
            anc(X,Y) :- anc(X,Z), anc(Z,Y).
            """
        )
        answers, _ = qsqr_query(
            program, parse_query("anc(a, X)?"), chain_database
        )
        assert len(answers) == 3


class TestQSQRMemo:
    def test_call_count_counts_distinct_subqueries(
        self, ancestor_program, chain_database
    ):
        engine = QSQREngine(ancestor_program, chain_database)
        engine.query(parse_query("anc(a, X)?"))
        # Subqueries anc(a,_), anc(b,_), anc(c,_), anc(d,_).
        assert engine.call_count() == 4
        assert engine.stats.calls == 4

    def test_answer_table_accumulates(self, ancestor_program, chain_database):
        engine = QSQREngine(ancestor_program, chain_database)
        engine.query(parse_query("anc(a, X)?"))
        assert engine.answer_table("anc") == {
            ("a", "b"), ("a", "c"), ("a", "d"),
            ("b", "c"), ("b", "d"), ("c", "d"),
        }

    def test_iterates_until_stable(self, chain_database):
        # Left recursion needs more than one outer round.
        program = parse_program(
            """
            anc(X,Y) :- anc(X,Z), par(Z,Y).
            anc(X,Y) :- par(X,Y).
            """
        )
        engine = QSQREngine(program, chain_database)
        engine.query(parse_query("anc(a, X)?"))
        assert engine.stats.iterations >= 2


class TestQSQRNegation:
    def test_stratified_negation(self, stratified_source):
        program = parse_program(stratified_source)
        answers, _ = qsqr_query(program, parse_query("unreach(d, X)?"))
        assert len(answers) == 4

    def test_negation_over_edb(self):
        program = parse_program(
            """
            person(ann). person(bob). smoker(bob).
            healthy(X) :- person(X), not smoker(X).
            """
        )
        answers, _ = qsqr_query(program, parse_query("healthy(X)?"))
        assert [str(a) for a in answers] == ["healthy(ann)"]

    def test_unsafe_negation_raises(self):
        program = parse_program("p(X) :- v(X), not q(X, Y). v(a). q(a, b).")
        with pytest.raises(Exception):
            qsqr_query(program, parse_query("p(X)?"))
