"""Tests for the well-founded semantics (alternating fixpoint)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog.parser import parse_program, parse_query
from repro.engine.stratified import stratified_fixpoint
from repro.engine.wellfounded import alternating_fixpoint
from repro.facts.database import Database

WIN = "win(X) :- move(X,Y), not win(Y)."


def win_model(edges):
    database = Database()
    database.relation("move", 2)
    for pair in edges:
        database.add("move", pair)
    return alternating_fixpoint(parse_program(WIN), database)


class TestWinGame:
    def test_chain_positions_alternate(self):
        # 0 -> 1 -> 2: node 2 is lost (no moves), 1 won, 0 lost.
        model = win_model([(0, 1), (1, 2)])
        assert model.value_of(parse_query("win(2)")) == "false"
        assert model.value_of(parse_query("win(1)")) == "true"
        assert model.value_of(parse_query("win(0)")) == "false"
        assert model.is_total()

    def test_longer_chain(self):
        model = win_model([(i, i + 1) for i in range(5)])
        values = [model.value_of(parse_query(f"win({i})")) for i in range(6)]
        # Node 5 is the dead end (lost); odd distance to it wins, so the
        # values alternate true/false from node 0.
        assert values == ["true", "false", "true", "false", "true", "false"]

    def test_two_cycle_is_undefined(self):
        model = win_model([("a", "b"), ("b", "a")])
        assert model.value_of(parse_query("win(a)")) == "undefined"
        assert model.value_of(parse_query("win(b)")) == "undefined"
        assert not model.is_total()
        assert len(model.undefined_atoms()) == 2

    def test_three_cycle_is_undefined(self):
        model = win_model([("a", "b"), ("b", "c"), ("c", "a")])
        assert all(
            model.value_of(parse_query(f"win({n})")) == "undefined"
            for n in "abc"
        )

    def test_cycle_with_escape_to_win(self):
        # a <-> b, plus b -> c (dead end). b can move to the lost c, so b
        # is won; then a's only move is to a won node: a is lost.
        model = win_model([("a", "b"), ("b", "a"), ("b", "c")])
        assert model.value_of(parse_query("win(b)")) == "true"
        assert model.value_of(parse_query("win(a)")) == "false"
        assert model.value_of(parse_query("win(c)")) == "false"
        assert model.is_total()

    def test_unknown_atom_is_false(self):
        model = win_model([(0, 1)])
        assert model.value_of(parse_query("win(99)")) == "false"


class TestAgreementWithStratified:
    SOURCES = [
        """
        e(a,b). e(b,c). node(a). node(b). node(c).
        r(X,Y) :- e(X,Y).
        r(X,Y) :- e(X,Z), r(Z,Y).
        unreach(X,Y) :- node(X), node(Y), not r(X,Y).
        """,
        """
        base(a). base(b). picked(a).
        first(X) :- base(X), picked(X).
        second(X) :- base(X), not first(X).
        third(X) :- base(X), not second(X).
        """,
        """
        par(a,b). par(b,c).
        anc(X,Y) :- par(X,Y).
        anc(X,Y) :- par(X,Z), anc(Z,Y).
        """,
    ]

    @pytest.mark.parametrize("source", SOURCES)
    def test_total_and_equal_on_stratified_programs(self, source):
        program = parse_program(source)
        model = alternating_fixpoint(program)
        reference, _ = stratified_fixpoint(program)
        assert model.is_total()
        for predicate in program.idb_predicates:
            assert model.true.rows(predicate) == reference.rows(predicate)

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 4), st.integers(0, 4)),
            max_size=12,
            unique=True,
        )
    )
    def test_property_stratified_reachability_always_total(self, edges):
        program = parse_program(
            """
            r(X,Y) :- e(X,Y).
            r(X,Y) :- e(X,Z), r(Z,Y).
            iso(X) :- v(X), not hit(X).
            hit(X) :- r(X,Y).
            """
        )
        database = Database()
        database.relation("e", 2)
        for pair in edges:
            database.add("e", pair)
        for node in range(5):
            database.add("v", (node,))
        model = alternating_fixpoint(program, database)
        reference, _ = stratified_fixpoint(program, database)
        assert model.is_total()
        assert model.true.rows("iso") == reference.rows("iso")


class TestUndefinedSets:
    def test_mutual_negation_undefined(self):
        program = parse_program(
            """
            b(x).
            p(X) :- b(X), not q(X).
            q(X) :- b(X), not p(X).
            """
        )
        model = alternating_fixpoint(program)
        assert model.value_of(parse_query("p(x)")) == "undefined"
        assert model.value_of(parse_query("q(x)")) == "undefined"

    def test_true_part_still_derived_alongside_undefined(self):
        program = parse_program(
            """
            move(a,b). move(b,a).
            move(c,d).
            win(X) :- move(X,Y), not win(Y).
            """
        )
        model = alternating_fixpoint(program)
        # The a/b cycle is undefined but the c -> d chain is decided.
        assert model.value_of(parse_query("win(c)")) == "true"
        assert model.value_of(parse_query("win(d)")) == "false"
        assert model.value_of(parse_query("win(a)")) == "undefined"
