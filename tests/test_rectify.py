"""Tests for rule rectification and its effect on the correspondence."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.compare import check_correspondence
from repro.core.strategy import run_strategy
from repro.datalog.parser import parse_program, parse_query, parse_rule
from repro.facts.database import Database
from repro.transform.rectify import (
    equality_facts,
    needs_rectification,
    rectify_program,
    rectify_rule,
)


class TestRectifyRule:
    def test_repeated_variable_split_with_equality(self):
        rule = parse_rule("p0(X, Y) :- p1(Y, Y), e0(X, Y).")
        rectified = rectify_rule(rule)
        assert str(rectified) == (
            "p0(X, Y) :- p1(Y, Y2), eq(Y, Y2), e0(X, Y)."
        )

    def test_clean_rule_unchanged(self):
        rule = parse_rule("anc(X,Y) :- par(X,Z), anc(Z,Y).")
        assert rectify_rule(rule) == rule

    def test_head_left_alone(self):
        rule = parse_rule("p(X, X) :- e(X).")
        assert rectify_rule(rule) == rule

    def test_triple_repeat_gets_two_fresh_variables(self):
        rule = parse_rule("p(X) :- e(X, X, X).")
        rectified = rectify_rule(rule)
        assert str(rectified) == "p(X) :- e(X, X2, X3), eq(X, X2), eq(X, X3)."

    def test_fresh_names_avoid_collisions(self):
        rule = parse_rule("p(X, X2) :- e(X, X), f(X2).")
        rectified = rectify_rule(rule)
        # X2 is taken by the head, so the fresh variable must be X3.
        assert "X3" in {v.name for v in rectified.variables()}

    def test_negative_literal_equalities_come_first(self):
        rule = parse_rule("p(X) :- v(X), not e(X, X).")
        rectified = rectify_rule(rule)
        predicates = [l.predicate for l in rectified.body]
        assert predicates == ["v", "eq", "e"]
        assert rectified.body[2].negative


class TestNeedsRectification:
    def test_detects_repeat(self):
        assert needs_rectification(parse_program("p(X) :- e(X, X)."))

    def test_clean_program(self):
        assert not needs_rectification(
            parse_program("p(X) :- e(X, Y), f(Y, Z).")
        )


class TestEqualityFacts:
    def test_eq_over_active_domain(self):
        database = Database()
        database.add("e", ("a", "b"))
        extended = equality_facts(database)
        assert extended.rows("eq") == {("a", "a"), ("b", "b")}
        # Original relations kept; input not mutated.
        assert extended.rows("e") == {("a", "b")}
        assert "eq" not in database

    def test_program_constants_included(self):
        database = Database()
        database.add("e", (1, 2))
        program = parse_program("p(X) :- e(X, 7).")
        extended = equality_facts(database, program)
        assert (7, 7) in extended.rows("eq")


class TestRectificationRestoresExactness:
    # The fuzzer's real counterexample: p1(Y, Y) induces a call pattern
    # no positional adornment expresses, so the raw correspondence is
    # inexact; after rectification it is exact again.
    SOURCE = """
        p0(X, Y) :- p1(Y, Y), e0(X, Y).
        p1(X, Y) :- e0(X, X), p0(X, Y).
    """

    def build(self):
        program = parse_program(self.SOURCE)
        database = Database()
        database.add("e0", (0, 0))
        database.add("e0", (0, 1))
        database.add("e0", (1, 1))
        return program, database

    def test_raw_program_answers_still_agree(self):
        program, database = self.build()
        query = parse_query("p0(0, Q)?")
        correspondence = check_correspondence(program, query, database)
        assert (
            correspondence.alexander_result.answer_rows
            == correspondence.oldt_result.answer_rows
        )

    def test_rectified_program_is_exact(self):
        program, database = self.build()
        rectified = rectify_program(program)
        extended = equality_facts(database, program)
        query = parse_query("p0(0, Q)?")
        correspondence = check_correspondence(rectified, query, extended)
        assert correspondence.exact, correspondence.summary()

    def test_rectified_answers_match_original(self):
        program, database = self.build()
        rectified = rectify_program(program)
        extended = equality_facts(database, program)
        query = parse_query("p0(0, Q)?")
        original = run_strategy("seminaive", program, query, database)
        after = run_strategy("seminaive", rectified, query, extended)
        assert original.answer_rows == after.answer_rows


constants = st.integers(0, 3)
edge_rows = st.lists(st.tuples(constants, constants), max_size=8, unique=True)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(edge_rows)
def test_property_rectification_preserves_answers(rows):
    program = parse_program(
        """
        p0(X, Y) :- p1(Y, Y), e0(X, Y).
        p1(X, Y) :- e0(X, X), p0(X, Y).
        p0(X, Y) :- e0(X, Y).
        """
    )
    database = Database()
    database.relation("e0", 2)
    for row in rows:
        database.add("e0", row)
    rectified = rectify_program(program)
    extended = equality_facts(database, program)
    query = parse_query("p0(0, Q)?")
    original = run_strategy("seminaive", program, query, database)
    after = run_strategy("alexander", rectified, query, extended)
    assert original.answer_rows == after.answer_rows
    correspondence = check_correspondence(rectified, query, extended)
    assert correspondence.exact, correspondence.summary()
