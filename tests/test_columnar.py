"""Unit tests for the columnar relation backend (repro.engine.columnar).

These pin the backend's own mechanics — columns, postings, round stamps,
the batch protocol, conversion — method for method against the tuple
backend's contract.  End-to-end bit-identity across the engines lives in
``tests/test_storage_differential.py``.
"""

import random

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.terms import Constant
from repro.datalog.intern import ConstantInterner
from repro.engine.columnar import (
    DEFAULT_STORAGE,
    STORAGES,
    ColumnarDatabase,
    ColumnarPrefix,
    ColumnarRelation,
    as_storage,
    relation_types,
    resolve_storage,
)
from repro.facts.database import Database
from repro.facts.relation import Relation
from repro.obs import collect


def _atom(predicate, *values):
    return Atom(predicate, tuple(Constant(value) for value in values))


def _relation(rows=()):
    interner = ConstantInterner()
    relation = ColumnarRelation("r", 2, interner)
    for row in rows:
        relation.add(interner.intern_row(row))
    return relation, interner


def _parallel_pair(rows):
    """The same raw rows loaded into both backends."""
    tuple_rel = Relation("r", 2, rows)
    col_rel, interner = _relation(rows)
    return tuple_rel, col_rel, interner


class TestResolveStorage:
    def test_defaults(self):
        assert DEFAULT_STORAGE == "tuples"
        assert set(STORAGES) == {"tuples", "columnar"}
        assert resolve_storage("columnar") == "columnar"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown storage"):
            resolve_storage("arrow")

    def test_relation_types_cover_both_backends(self):
        assert Relation in relation_types()
        assert ColumnarRelation in relation_types()


class TestColumnarRelation:
    def test_add_is_idempotent_and_ordered(self):
        relation, interner = _relation()
        first = interner.intern_row(("a", "b"))
        second = interner.intern_row(("b", "c"))
        assert relation.add(first)
        assert not relation.add(first)
        assert relation.add(second)
        assert list(relation) == [first, second]
        assert len(relation) == 2 and bool(relation)
        assert relation.rows() == frozenset({first, second})

    def test_arity_mismatch_rejected(self):
        relation, _ = _relation()
        with pytest.raises(ValueError, match="length 3"):
            relation.add((0, 1, 2))

    def test_reinsertion_after_discard_moves_to_the_end(self):
        """Dict-backed insertion order: matches the tuple backend."""
        rows = [("a", "b"), ("b", "c"), ("c", "d")]
        tuple_rel, col_rel, interner = _parallel_pair(rows)
        for rel, key in ((tuple_rel, rows[0]), (col_rel, interner.intern_row(rows[0]))):
            assert rel.discard(key)
            assert not rel.discard(key)
            rel.add(key)
        assert [interner.extern_row(r) for r in col_rel] == list(tuple_rel)

    def test_probe_and_lookup_match_tuple_backend(self):
        rng = random.Random(11)
        rows = [
            (f"c{rng.randint(0, 4)}", f"c{rng.randint(0, 4)}")
            for _ in range(40)
        ]
        tuple_rel, col_rel, interner = _parallel_pair(rows)
        for column in (0, 1):
            for value in {row[column] for row in rows}:
                expected = tuple_rel.probe(column, value)
                got = col_rel.probe(column, interner.intern(value))
                assert [interner.extern_row(r) for r in got] == list(expected)
        for bound in ({}, {0: "c1"}, {0: "c2", 1: "c0"}, {1: "nope"}):
            encoded = {
                column: interner.intern(value)
                for column, value in bound.items()
            }
            expected = list(tuple_rel.lookup(bound))
            got = [
                interner.extern_row(r) for r in col_rel.lookup(encoded)
            ]
            assert got == expected
            assert col_rel.count(encoded) == tuple_rel.count(bound)

    def test_statistics_match_tuple_backend(self):
        rows = [("a", "b"), ("a", "c"), ("b", "c")]
        tuple_rel, col_rel, interner = _parallel_pair(rows)
        assert col_rel.statistics() == tuple_rel.statistics()
        for column in (0, 1):
            assert (
                col_rel.distinct_count(column)
                == tuple_rel.distinct_count(column)
            )
            for value in ("a", "b", "c", "never-seen"):
                assert col_rel.postings_size(
                    column, value
                ) == tuple_rel.postings_size(column, value)
        with pytest.raises(IndexError):
            col_rel.distinct_count(2)

    def test_discard_maintains_postings_and_distinct(self):
        relation, interner = _relation([("a", "b"), ("a", "c")])
        relation.postings(0)  # materialise
        assert relation.distinct_count(0) == 1
        relation.discard(interner.intern_row(("a", "b")))
        assert relation.distinct_count(0) == 1
        assert relation.count({0: interner.intern("a")}) == 1
        relation.discard(interner.intern_row(("a", "c")))
        assert relation.distinct_count(0) == 0
        assert relation.probe(0, interner.intern("a")) == ()

    def test_round_stamps_and_prefix_views(self):
        relation, interner = _relation([("a", "b")])
        relation.mark_round(1)
        late = interner.intern_row(("b", "c"))
        relation.add(late)
        early = interner.intern_row(("a", "b"))
        assert relation.stamp_of(early) == 0
        assert relation.stamp_of(late) == 1
        view = relation.rows_before(1)
        assert isinstance(view, ColumnarPrefix)
        assert early in view and late not in view
        assert list(view) == [early]
        assert len(view) == 1 and bool(view)
        assert view.rows() == frozenset({early})
        assert view.boundary() == relation.stamp_boundary(1) == 1
        assert list(view.lookup({0: interner.intern("a")})) == [early]
        assert list(view.lookup({0: interner.intern("b")})) == []

    def test_batch_protocol_block_reads(self):
        relation, interner = _relation([("a", "b"), ("b", "c"), ("c", "d")])
        live = relation.live_indices()
        assert live == [0, 1, 2]
        # Identity-cached fast path: whole column in one tolist.
        assert relation.column_block(0, live) == [
            interner.intern(v) for v in ("a", "b", "c")
        ]
        # Generic path: arbitrary index subsets.
        assert relation.column_block(1, [2, 0]) == [
            interner.intern("d"), interner.intern("b"),
        ]
        postings = relation.postings(0)
        assert postings[interner.intern("b")] == [1]
        # After a discard the fast path must not resurrect dead cells.
        relation.discard(interner.intern_row(("b", "c")))
        live = relation.live_indices()
        assert live == [0, 2]
        assert relation.column_block(0, live) == [
            interner.intern("a"), interner.intern("c"),
        ]

    def test_copy_resets_stamps_and_keeps_version(self):
        relation, interner = _relation([("a", "b")])
        relation.mark_round(2)
        relation.add(interner.intern_row(("b", "c")))
        clone = relation.copy()
        assert clone == relation
        assert clone.interner is interner
        assert clone.version == relation.version
        for row in clone:
            assert clone.stamp_of(row) == 0
        assert clone.live_indices() == [0, 1]

    def test_clear(self):
        relation, _ = _relation([("a", "b")])
        relation.mark_round(3)
        relation.clear()
        assert len(relation) == 0 and not relation
        assert relation.round == 0
        assert relation.scan() == ()


class TestColumnarDatabase:
    def test_atom_boundary_is_raw(self):
        database = ColumnarDatabase()
        database.add_atom(_atom("e", "a", "b"))
        assert database.has_fact(_atom("e", "a", "b"))
        assert not database.has_fact(_atom("e", "b", "a"))
        assert [
            (atom.predicate, atom.ground_key())
            for atom in database.atoms("e")
        ] == [("e", ("a", "b"))]

    def test_has_fact_on_unseen_constant_does_not_grow_the_interner(self):
        database = ColumnarDatabase()
        database.add_atom(_atom("e", "a", "b"))
        before = len(database.interner)
        assert not database.has_fact(_atom("e", "a", "zzz"))
        assert len(database.interner) == before

    def test_spawn_matches_backend(self):
        database = ColumnarDatabase()
        spawned = database.spawn("delta", 2)
        assert isinstance(spawned, ColumnarRelation)
        assert spawned.interner is database.interner
        assert isinstance(Database().spawn("delta", 2), Relation)

    def test_relation_arity_checks(self):
        database = ColumnarDatabase()
        database.relation("e", 2)
        with pytest.raises(ValueError, match="arity"):
            database.relation("e", 3)
        with pytest.raises(KeyError):
            database.relation("unknown")

    def test_merge_across_interners_translates(self):
        left = ColumnarDatabase()
        left.add_atom(_atom("e", "x", "a"))
        right = ColumnarDatabase()  # different interner, different ids
        right.add_atom(_atom("e", "a", "x"))
        assert left.merge(right) == 1
        assert left.has_fact(_atom("e", "a", "x"))
        assert left.merge(right) == 0
        assert left != right
        same = left.copy()
        assert left.merge(same) == 0  # same interner: fast path
        assert left == same


class TestAsStorage:
    def test_none_yields_empty_backend(self):
        assert isinstance(as_storage(None, "tuples"), Database)
        empty = as_storage(None, "columnar")
        assert isinstance(empty, ColumnarDatabase)
        assert not list(empty.relations())

    def test_round_trip_preserves_order_and_versions(self):
        source = Database()
        relation = source.relation("e", 2)
        relation.add(("b", "c"))
        relation.add(("a", "b"))
        columnar = as_storage(source, "columnar")
        assert isinstance(columnar, ColumnarDatabase)
        assert columnar.relation("e").version == relation.version
        back = as_storage(columnar, "tuples")
        assert list(back.relation("e")) == [("b", "c"), ("a", "b")]
        assert back == source

    def test_same_backend_degenerates_to_copy(self):
        source = ColumnarDatabase()
        source.add_atom(_atom("e", "a", "b"))
        copy = as_storage(source, "columnar")
        assert copy.interner is source.interner
        assert copy == source

    def test_reencoding_against_a_foreign_interner(self):
        source = ColumnarDatabase()
        source.add_atom(_atom("e", "b", "a"))
        target_interner = ConstantInterner()
        target_interner.intern("a")  # force different id assignment
        converted = as_storage(source, "columnar", interner=target_interner)
        assert converted.interner is target_interner
        assert converted.has_fact(_atom("e", "b", "a"))
        assert converted == source  # raw-space equality across interners

    def test_conversion_metrics(self):
        source = Database()
        source.relation("e", 2).add(("a", "b"))
        source.relation("e", 2).add(("b", "c"))
        with collect() as metrics:
            as_storage(source, "columnar")
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["storage.convert"] == 1
        assert snapshot["counters"]["storage.converted_rows"] == 2
