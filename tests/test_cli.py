"""Tests for the command-line interface."""

import pytest

from repro.cli import main

SOURCE = """
par(a,b). par(b,c). par(c,d).
anc(X,Y) :- par(X,Y).
anc(X,Y) :- par(X,Z), anc(Z,Y).
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "program.dl"
    path.write_text(SOURCE)
    return str(path)


class TestQueryCommand:
    def test_query_prints_bindings(self, program_file, capsys):
        code = main(["query", program_file, "anc(a, X)?"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.splitlines() == ["X = b", "X = c", "X = d"]

    def test_query_ground_goal_prints_true(self, program_file, capsys):
        main(["query", program_file, "anc(a, d)?"])
        assert capsys.readouterr().out.strip() == "true"

    def test_query_ground_goal_prints_false(self, program_file, capsys):
        main(["query", program_file, "anc(d, a)?"])
        assert capsys.readouterr().out.strip() == "false"

    def test_query_with_strategy_and_stats(self, program_file, capsys):
        code = main(
            ["query", program_file, "anc(a, X)?", "--strategy", "oldt", "--stats"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "EvaluationStats" in captured.err

    def test_query_limit(self, program_file, capsys):
        main(["query", program_file, "anc(a, X)?", "--limit", "1"])
        out = capsys.readouterr().out
        assert "more" in out

    def test_parse_error_is_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.dl"
        bad.write_text("p(a) q(b).")
        code = main(["query", str(bad), "p(X)?"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestUpdateCommand:
    def test_update_requires_at_least_one_operation(self, capsys):
        code = main(["update", "db"])
        assert code == 2
        err = capsys.readouterr().err
        assert "at least one --add or --remove" in err

    def test_update_unreachable_server_is_a_clean_error(self, capsys):
        # Port 1 is never listening; the client error must surface as a
        # normal CLI error (exit 2), not a traceback.
        code = main(
            [
                "update", "db", "--add", "edge(a,b).",
                "--url", "http://127.0.0.1:1", "--timeout", "0.2",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestExplainCommand:
    def test_table_lists_all_strategies(self, program_file, capsys):
        code = main(["explain", program_file, "anc(a, X)?"])
        out = capsys.readouterr().out
        assert code == 0
        for name in ("seminaive", "magic", "supplementary", "alexander", "oldt", "qsqr"):
            assert name in out


class TestCheckCommand:
    def test_exact_correspondence_exit_zero(self, program_file, capsys):
        code = main(["check", program_file, "anc(a, X)?"])
        out = capsys.readouterr().out
        assert code == 0
        assert "exact: True" in out


class TestTransformCommand:
    def test_alexander_output(self, program_file, capsys):
        code = main(["transform", program_file, "anc(a, X)?"])
        out = capsys.readouterr().out
        assert code == 0
        assert "call__anc__bf(a)." in out
        assert "% goal: ans__anc__bf(a, X)?" in out

    def test_magic_output(self, program_file, capsys):
        main(["transform", program_file, "anc(a, X)?", "--kind", "magic"])
        out = capsys.readouterr().out
        assert "magic__anc__bf(a)." in out


class TestLintCommand:
    def test_clean_program(self, program_file, capsys):
        code = main(["lint", program_file])
        out = capsys.readouterr().out
        assert code == 0
        assert "anc is linear" in out
        assert "ok" in out

    def test_unsafe_program(self, tmp_path, capsys):
        path = tmp_path / "unsafe.dl"
        path.write_text("p(X, Y) :- q(X).")
        code = main(["lint", str(path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "unsafe" in out

    def test_unstratifiable_program(self, tmp_path, capsys):
        path = tmp_path / "win.dl"
        path.write_text("win(X) :- move(X,Y), not win(Y).")
        code = main(["lint", str(path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "not stratifiable" in out


class TestQueryHelpSnapshot:
    """Snapshot of the query subcommand's option surface: adding or
    removing a flag must update this set deliberately."""

    EXPECTED_OPTIONS = {
        "-h",
        "--help",
        "--facts",
        "--strategy",
        "--sips",
        "--planner",
        "--executor",
        "--scheduler",
        "--storage",
        "--workers",
        "--stats",
        "--limit",
        "--timeout",
        "--max-facts",
        "--max-iterations",
        "--max-attempts",
    }

    def test_query_help_lists_exactly_the_known_options(self, capsys):
        import re

        with pytest.raises(SystemExit) as excinfo:
            main(["query", "--help"])
        assert excinfo.value.code == 0
        help_text = capsys.readouterr().out
        options = set(re.findall(r"(?<![\w-])--?[a-z][a-z-]*", help_text))
        assert options == self.EXPECTED_OPTIONS

    def test_scheduler_choices_are_documented(self, capsys):
        with pytest.raises(SystemExit):
            main(["query", "--help"])
        help_text = capsys.readouterr().out
        assert "--scheduler {scc,global,parallel}" in help_text


class TestStorageFlag:
    def test_storage_values_give_identical_answers(self, program_file, capsys):
        outputs = {}
        for storage in ("tuples", "columnar"):
            code = main(
                ["query", program_file, "anc(a, X)?", "--storage", storage]
            )
            assert code == 0
            outputs[storage] = capsys.readouterr().out
        assert outputs["tuples"] == outputs["columnar"]

    def test_unknown_storage_is_rejected_by_argparse(self, program_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["query", program_file, "anc(a, X)?", "--storage", "arrow"])
        assert excinfo.value.code == 2


class TestSchedulerFlag:
    def test_scheduler_values_give_identical_answers(self, program_file, capsys):
        outputs = {}
        for scheduler in ("scc", "global"):
            code = main(
                ["query", program_file, "anc(a, X)?", "--scheduler", scheduler]
            )
            assert code == 0
            outputs[scheduler] = capsys.readouterr().out
        assert outputs["scc"] == outputs["global"]

    def test_unknown_scheduler_is_rejected_by_argparse(self, program_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["query", program_file, "anc(a, X)?", "--scheduler", "zig"])
        assert excinfo.value.code == 2
