"""Unit tests for the predicate dependency graph."""


from repro.analysis.dependency import DependencyGraph, RecursionKind
from repro.datalog.parser import parse_program

LINEAR = parse_program(
    """
    anc(X,Y) :- par(X,Y).
    anc(X,Y) :- par(X,Z), anc(Z,Y).
    """
)

NONLINEAR = parse_program(
    """
    tc(X,Y) :- e(X,Y).
    tc(X,Y) :- tc(X,Z), tc(Z,Y).
    """
)

MUTUAL = parse_program(
    """
    even(X) :- zero(X).
    even(X) :- succ(Y,X), odd(Y).
    odd(X) :- succ(Y,X), even(Y).
    """
)

NEGATION = parse_program(
    """
    reach(X,Y) :- e(X,Y).
    reach(X,Y) :- e(X,Z), reach(Z,Y).
    unreach(X,Y) :- node(X), node(Y), not reach(X,Y).
    """
)


class TestEdges:
    def test_nodes_cover_all_predicates(self):
        graph = DependencyGraph(LINEAR)
        assert graph.nodes == {"anc", "par"}

    def test_successors_and_predecessors(self):
        graph = DependencyGraph(LINEAR)
        assert graph.successors["par"] == {"anc"}
        assert graph.predecessors["anc"] == {"par", "anc"}

    def test_negative_edge_recorded(self):
        graph = DependencyGraph(NEGATION)
        assert graph.depends_negatively("unreach", "reach")
        assert not graph.depends_negatively("reach", "e")


class TestSccs:
    def test_self_loop_is_recursive(self):
        graph = DependencyGraph(LINEAR)
        assert graph.is_recursive_predicate("anc")
        assert not graph.is_recursive_predicate("par")

    def test_mutual_recursion_shares_component(self):
        graph = DependencyGraph(MUTUAL)
        assert graph.scc_of["even"] == graph.scc_of["odd"]
        assert graph.is_recursive_predicate("even")

    def test_condensation_order_is_dependencies_first(self):
        graph = DependencyGraph(NEGATION)
        order = graph.condensation_order()
        position = {pred: i for i, component in enumerate(order) for pred in component}
        assert position["e"] < position["reach"] < position["unreach"]
        assert position["node"] < position["unreach"]

    def test_sccs_partition_nodes(self):
        graph = DependencyGraph(MUTUAL)
        seen = [pred for component in graph.sccs for pred in component]
        assert sorted(seen) == sorted(graph.nodes)


class TestRecursionKind:
    def test_non_recursive(self):
        graph = DependencyGraph(LINEAR)
        assert graph.recursion_kind("par") == RecursionKind.NON_RECURSIVE

    def test_linear(self):
        graph = DependencyGraph(LINEAR)
        assert graph.recursion_kind("anc") == RecursionKind.LINEAR

    def test_nonlinear(self):
        graph = DependencyGraph(NONLINEAR)
        assert graph.recursion_kind("tc") == RecursionKind.NON_LINEAR

    def test_mutual_recursion_is_linear_here(self):
        graph = DependencyGraph(MUTUAL)
        assert graph.recursion_kind("even") == RecursionKind.LINEAR

    def test_unknown_predicate_is_non_recursive(self):
        graph = DependencyGraph(LINEAR)
        assert graph.recursion_kind("ghost") == RecursionKind.NON_RECURSIVE


class TestCondensationOnTransformedPrograms:
    """Pin topological component order on a real Alexander rewriting, not
    just hand-built graphs — the scc scheduler evaluates in this order."""

    @staticmethod
    def _alexander_graph():
        from repro.core.strategy import run_strategy
        from repro.workloads import ancestor

        scenario = ancestor(graph="chain", n=8)
        result = run_strategy(
            "alexander", scenario.program, scenario.query(0), scenario.database
        )
        program = result.transformed.evaluation_program()
        return program, DependencyGraph(program)

    def test_every_edge_respects_condensation_order(self):
        program, graph = self._alexander_graph()
        order = graph.condensation_order()
        position = {
            predicate: index
            for index, component in enumerate(order)
            for predicate in component
        }
        for edge in graph.edges():
            assert position[edge.source] <= position[edge.target], edge

    def test_call_component_precedes_answer_component(self):
        # The seed call feeds the continuation/answer machinery, never
        # the reverse: the call/cont component must come strictly first.
        program, graph = self._alexander_graph()
        order = graph.condensation_order()
        position = {
            predicate: index
            for index, component in enumerate(order)
            for predicate in component
        }
        calls = [p for p in graph.nodes if p.startswith("call__")]
        answers = [p for p in graph.nodes if p.startswith("ans__")]
        assert calls and answers
        assert max(position[p] for p in calls) < min(
            position[p] for p in answers
        )

    def test_sccs_iterator_annotation_regression(self):
        # The Tarjan work stack holds (node, successor-iterator) pairs;
        # this simply pins that deep programs traverse iteratively.
        program, graph = self._alexander_graph()
        assert len(graph.sccs) == len(graph.condensation_order())
        assert {p for scc in graph.sccs for p in scc} == set(graph.nodes)
