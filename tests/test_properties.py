"""Property-based cross-engine tests.

The strongest invariant this library offers: on *any* database, every
strategy computes the same answers, and the Alexander/OLDT correspondence
is exact.  Hypothesis generates the databases; the programs are the
canonical recursion shapes.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.compare import check_correspondence
from repro.core.strategy import run_strategy
from repro.datalog.atoms import Atom
from repro.datalog.parser import parse_program
from repro.datalog.terms import Constant, Variable
from repro.facts.database import Database

RIGHT_LINEAR = parse_program(
    """
    tc(X,Y) :- e(X,Y).
    tc(X,Y) :- e(X,Z), tc(Z,Y).
    """
)

LEFT_LINEAR = parse_program(
    """
    tc(X,Y) :- e(X,Y).
    tc(X,Y) :- tc(X,Z), e(Z,Y).
    """
)

NON_LINEAR = parse_program(
    """
    tc(X,Y) :- e(X,Y).
    tc(X,Y) :- tc(X,Z), tc(Z,Y).
    """
)

SG = parse_program(
    """
    sg(X,Y) :- flat(X,Y).
    sg(X,Y) :- up(X,U), sg(U,V), down(V,Y).
    """
)

STRATIFIED = parse_program(
    """
    r(X,Y) :- e(X,Y).
    r(X,Y) :- e(X,Z), r(Z,Y).
    iso(X) :- v(X), not linked(X).
    linked(X) :- r(X,Y).
    linked(Y) :- r(X,Y).
    """
)

edges = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=18, unique=True
)

PROGRAMS = [RIGHT_LINEAR, LEFT_LINEAR, NON_LINEAR]
STRATEGIES = ("seminaive", "oldt", "qsqr", "magic", "supplementary", "alexander")


def edge_database(pairs, predicate="e"):
    database = Database()
    database.relation(predicate, 2)
    for pair in pairs:
        database.add(predicate, pair)
    return database


def bound_query(source=0):
    return Atom("tc", (Constant(source), Variable("X")))


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(edges, st.integers(0, len(PROGRAMS) - 1), st.integers(0, 5))
def test_all_strategies_agree_on_random_graphs(pairs, program_index, source):
    program = PROGRAMS[program_index]
    database = edge_database(pairs)
    reference = None
    for name in STRATEGIES:
        result = run_strategy(name, program, bound_query(source), database)
        if reference is None:
            reference = result.answer_rows
        else:
            assert result.answer_rows == reference, name


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(edges, st.integers(0, 5))
def test_correspondence_exact_on_random_graphs(pairs, source):
    database = edge_database(pairs)
    correspondence = check_correspondence(
        RIGHT_LINEAR, bound_query(source), database
    )
    assert correspondence.exact, correspondence.summary()


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(edges)
def test_correspondence_exact_for_nonlinear_recursion(pairs):
    database = edge_database(pairs)
    correspondence = check_correspondence(NON_LINEAR, bound_query(0), database)
    assert correspondence.exact, correspondence.summary()


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(edges, st.integers(0, 5))
def test_stratified_negation_agreement(pairs, probe):
    database = edge_database(pairs)
    for node in range(6):
        database.add("v", (node,))
    query = Atom("iso", (Constant(probe),))
    reference = None
    for name in ("seminaive", "oldt", "qsqr", "alexander"):
        result = run_strategy(name, STRATIFIED, query, database)
        if reference is None:
            reference = result.answer_rows
        else:
            assert result.answer_rows == reference, name


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(edges)
def test_transformed_answers_sound_and_complete(pairs):
    """Alexander answers == the query-relevant slice of the full fixpoint."""
    database = edge_database(pairs)
    full = run_strategy("seminaive", RIGHT_LINEAR, bound_query(0), database)
    alexander = run_strategy("alexander", RIGHT_LINEAR, bound_query(0), database)
    assert alexander.answer_rows == full.answer_rows


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=10, unique=True)
)
def test_same_generation_agreement(pairs):
    database = Database()
    for relation in ("up", "down", "flat"):
        database.relation(relation, 2)
    for u, v in pairs:
        database.add("up", (u, v))
        database.add("down", (v, u))
    if pairs:
        database.add("flat", pairs[0])
    query = Atom("sg", (Constant(0), Variable("X")))
    reference = None
    for name in ("seminaive", "oldt", "alexander", "magic"):
        result = run_strategy(name, SG, query, database)
        if reference is None:
            reference = result.answer_rows
        else:
            assert result.answer_rows == reference, name
