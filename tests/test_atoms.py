"""Unit tests for repro.datalog.atoms."""

import pytest

from repro.datalog.atoms import Atom, Literal
from repro.datalog.terms import Constant, Variable

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
a, b = Constant("a"), Constant("b")


class TestAtom:
    def test_arity(self):
        assert Atom("p", (X, a)).arity == 2
        assert Atom("p").arity == 0

    def test_signature(self):
        assert Atom("p", (X, a)).signature == ("p", 2)

    def test_args_normalised_to_tuple(self):
        atom = Atom("p", [X, a])
        assert isinstance(atom.args, tuple)
        assert hash(atom) == hash(Atom("p", (X, a)))

    def test_variables_in_order_with_repeats(self):
        atom = Atom("p", (X, a, Y, X))
        assert list(atom.variables()) == [X, Y, X]

    def test_variable_set(self):
        assert Atom("p", (X, a, Y, X)).variable_set() == {X, Y}

    def test_is_ground(self):
        assert Atom("p", (a, b)).is_ground()
        assert not Atom("p", (a, X)).is_ground()
        assert Atom("p").is_ground()

    def test_substitute_replaces_variables(self):
        atom = Atom("p", (X, Y)).substitute({X: a})
        assert atom == Atom("p", (a, Y))

    def test_substitute_identity_returns_self(self):
        atom = Atom("p", (X, Y))
        assert atom.substitute({Z: a}) is atom

    def test_substitute_empty_returns_self(self):
        atom = Atom("p", (X,))
        assert atom.substitute({}) is atom

    def test_with_predicate(self):
        assert Atom("p", (X,)).with_predicate("q") == Atom("q", (X,))

    def test_ground_key(self):
        assert Atom("p", (a, b)).ground_key() == ("a", "b")

    def test_ground_key_raises_on_variables(self):
        with pytest.raises(ValueError):
            Atom("p", (a, X)).ground_key()

    def test_str_with_args(self):
        assert str(Atom("p", (X, a))) == "p(X, a)"

    def test_str_zero_arity(self):
        assert str(Atom("p")) == "p"


class TestLiteral:
    def test_default_positive(self):
        literal = Literal(Atom("p", (X,)))
        assert literal.positive and not literal.negative

    def test_negated_flips_polarity(self):
        literal = Literal(Atom("p", (X,)))
        assert literal.negated().negative
        assert literal.negated().negated() == literal

    def test_substitute_preserves_polarity(self):
        literal = Literal(Atom("p", (X,)), positive=False)
        assert literal.substitute({X: a}).negative

    def test_substitute_identity_returns_self(self):
        literal = Literal(Atom("p", (X,)))
        assert literal.substitute({Y: a}) is literal

    def test_str_negative(self):
        assert str(Literal(Atom("p", (X,)), positive=False)) == "not p(X)"

    def test_predicate_and_args_delegate(self):
        literal = Literal(Atom("p", (X, a)))
        assert literal.predicate == "p"
        assert literal.args == (X, a)
