"""Tests for the CI smoke runner's baseline-tolerance gate (tools/bench_ci.py)."""

import importlib.util
import json
import pathlib
import sys

import pytest

_TOOL = pathlib.Path(__file__).parent.parent / "tools" / "bench_ci.py"
_spec = importlib.util.spec_from_file_location("bench_ci", _TOOL)
bench_ci = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("bench_ci", bench_ci)
_spec.loader.exec_module(bench_ci)


class TestCompareToBaseline:
    def test_exact_match_passes(self):
        assert bench_ci.compare_to_baseline({"a": 10}, {"a": 10}, 0.0) == []

    def test_deviation_beyond_tolerance_flagged(self):
        deviations = bench_ci.compare_to_baseline({"a": 11}, {"a": 10}, 0.05)
        assert len(deviations) == 1
        assert deviations[0]["kind"] == "regression"
        assert deviations[0]["expected"] == 10
        assert deviations[0]["actual"] == 11

    def test_deviation_within_tolerance_passes(self):
        assert bench_ci.compare_to_baseline({"a": 11}, {"a": 10}, 0.10) == []
        assert bench_ci.compare_to_baseline({"a": 9}, {"a": 10}, 0.10) == []

    def test_improvement_is_still_a_deviation(self):
        deviations = bench_ci.compare_to_baseline({"a": 5}, {"a": 10}, 0.0)
        assert deviations[0]["kind"] == "improvement"

    def test_missing_and_unbaselined_ids_flagged(self):
        deviations = bench_ci.compare_to_baseline({"new": 1}, {"old": 2}, 1.0)
        kinds = {d["id"]: d["kind"] for d in deviations}
        assert kinds == {"new": "unbaselined", "old": "missing"}

    def test_zero_baseline_requires_exact_match(self):
        assert bench_ci.compare_to_baseline({"a": 0}, {"a": 0}, 0.5) == []
        assert bench_ci.compare_to_baseline({"a": 1}, {"a": 0}, 0.5) != []


class TestBaselineIO:
    def test_write_then_load_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        bench_ci.write_baseline(path, {"b": 2, "a": 1}, 0.05)
        payload = bench_ci.load_baseline(path)
        assert payload["schema_version"] == bench_ci.BASELINE_SCHEMA
        assert payload["tolerance"] == 0.05
        assert payload["counts"] == {"a": 1, "b": 2}

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"schema_version": "bogus/1", "counts": {}}))
        with pytest.raises(ValueError):
            bench_ci.load_baseline(path)


class TestRunChecks:
    def test_unknown_group_rejected(self):
        with pytest.raises(ValueError):
            bench_ci.run_checks(["nope"])

    def test_a2_group_entries_and_metrics(self):
        entries, failures, snapshot = bench_ci.run_checks(["a2"])
        assert failures == []
        assert all(entry["id"].startswith("a2/") for entry in entries)
        assert all(entry["seconds"] >= 0.0 for entry in entries)
        assert all(isinstance(entry["inferences"], int) for entry in entries)
        assert "bench_ci.a2" in snapshot["timers"]

    def test_baseline_counts_skips_non_integer_inferences(self):
        counts = bench_ci.baseline_counts(
            [{"id": "a", "inferences": 3}, {"id": "b", "inferences": "diverged"}, {"id": "c"}]
        )
        assert counts == {"a": 3}


class TestMainGate:
    def _run_main(self, tmp_path, baseline_counts=None, tolerance=0.0, extra=()):
        baseline = tmp_path / "baseline.json"
        if baseline_counts is not None:
            bench_ci.write_baseline(baseline, baseline_counts, tolerance)
        return bench_ci.main(
            [
                "--only",
                "a2",
                "--baseline",
                str(baseline),
                "--output-dir",
                str(tmp_path),
                *extra,
            ]
        )

    def test_update_baseline_then_green(self, tmp_path):
        assert self._run_main(tmp_path, extra=["--update-baseline"]) == 0
        baseline = bench_ci.load_baseline(tmp_path / "baseline.json")
        assert baseline["counts"]
        assert self._run_main(tmp_path, baseline_counts=baseline["counts"]) == 0

    def test_injected_regression_exits_nonzero(self, tmp_path):
        assert self._run_main(tmp_path, extra=["--update-baseline"]) == 0
        counts = bench_ci.load_baseline(tmp_path / "baseline.json")["counts"]
        doctored = dict(counts)
        key = sorted(doctored)[0]
        doctored[key] -= 1  # pretend the baseline expected less work
        assert self._run_main(tmp_path, baseline_counts=doctored) == 2

    def test_missing_baseline_exits_nonzero(self, tmp_path):
        assert self._run_main(tmp_path) == 3

    def test_artifact_written_with_schema_and_timings(self, tmp_path):
        from repro.obs import BenchArtifact

        self._run_main(tmp_path, extra=["--update-baseline"])
        artifact = BenchArtifact.read(tmp_path / "BENCH_ci.json")
        assert artifact.schema_version == "repro-bench/1"
        assert artifact.meta["total_seconds"] > 0.0
        assert artifact.meta["metrics"]["timers"]
        assert all("seconds" in entry for entry in artifact.entries)

    def test_unwritable_results_dir_exits_4(self, tmp_path, capsys):
        """A results path that cannot receive the artifact is an
        infrastructure failure (exit 4), not a regression."""
        not_a_dir = tmp_path / "results"
        not_a_dir.write_text("a file where a directory must be")
        baseline = tmp_path / "baseline.json"
        code = bench_ci.main(
            [
                "--only", "a2",
                "--baseline", str(baseline),
                "--output-dir", str(not_a_dir),
                "--update-baseline",
            ]
        )
        assert code == 4
        err = capsys.readouterr().err
        assert "INFRASTRUCTURE" in err
        assert "cannot write the bench artifact" in err

    def test_broken_bench_module_import_exits_4(self, tmp_path, capsys, monkeypatch):
        """A benchmark module that raises at import is an infrastructure
        failure (exit 4) with the offending module named."""
        broken = tmp_path / "benchmarks"
        broken.mkdir()
        (broken / "bench_f4_serving.py").write_text(
            "raise RuntimeError('deliberately broken for the test')\n"
        )
        monkeypatch.setattr(bench_ci, "BENCH_DIR", broken)
        code = bench_ci.main(
            [
                "--only", "f4",
                "--baseline", str(tmp_path / "baseline.json"),
                "--output-dir", str(tmp_path),
            ]
        )
        assert code == 4
        err = capsys.readouterr().err
        assert "INFRASTRUCTURE" in err
        assert "bench_f4_serving" in err
        assert "deliberately broken" in err

    def test_load_bench_module_imports_the_real_f4(self):
        module = bench_ci.load_bench_module("bench_f4_serving")
        assert callable(module.serving_parity_entries)

    def test_f4_group_entries_are_deterministic(self):
        first, failures_a, _ = bench_ci.run_checks(["f4"])
        second, failures_b, _ = bench_ci.run_checks(["f4"])
        assert failures_a == failures_b == []
        assert bench_ci.baseline_counts(first) == bench_ci.baseline_counts(second)

    def test_committed_baseline_matches_current_code(self):
        """The repo's own gate must be green: full run vs committed baseline."""
        entries, failures, _ = bench_ci.run_checks()
        assert failures == []
        committed = bench_ci.load_baseline(bench_ci.DEFAULT_BASELINE)
        deviations = bench_ci.compare_to_baseline(
            bench_ci.baseline_counts(entries),
            committed["counts"],
            committed.get("tolerance", 0.0),
        )
        assert deviations == []
