"""Tests for the observability layer: metrics registry and bench artifacts."""

import json

import pytest

from repro.bench.harness import measure, measurement_record
from repro.obs import (
    NULL_METRICS,
    BenchArtifact,
    HistogramStat,
    Metrics,
    NullMetrics,
    TimerStat,
    artifact_filename,
    collect,
    get_metrics,
    set_metrics,
)
from repro.workloads import ancestor


class TestTimerNesting:
    def test_nested_paths_are_slash_joined(self):
        metrics = Metrics()
        with metrics.timer("outer"):
            with metrics.timer("inner"):
                pass
            with metrics.timer("inner"):
                pass
        assert set(metrics.timers) == {"outer", "outer/inner"}
        assert metrics.timers["outer"].count == 1
        assert metrics.timers["outer/inner"].count == 2

    def test_nested_time_bounded_by_outer(self):
        metrics = Metrics()
        with metrics.timer("outer"):
            with metrics.timer("inner"):
                sum(range(1000))
        assert metrics.timers["outer/inner"].total <= metrics.timers["outer"].total

    def test_stack_restored_after_exception(self):
        metrics = Metrics()
        with pytest.raises(RuntimeError):
            with metrics.timer("outer"):
                raise RuntimeError("boom")
        assert metrics.depth == 0
        # The interrupted span still recorded.
        assert metrics.timers["outer"].count == 1
        with metrics.timer("again"):
            pass
        assert "again" in metrics.timers  # not "outer/again"

    def test_timer_stat_aggregates(self):
        stat = TimerStat()
        stat.record(0.5)
        stat.record(1.5)
        assert stat.count == 2
        assert stat.total == 2.0
        assert stat.mean == 1.0
        assert stat.minimum == 0.5
        assert stat.maximum == 1.5


class TestCountersAndHistograms:
    def test_incr(self):
        metrics = Metrics()
        metrics.incr("runs")
        metrics.incr("runs", 4)
        assert metrics.counters["runs"] == 5

    def test_observe(self):
        metrics = Metrics()
        for value in (3, 1, 2):
            metrics.observe("delta", value)
        stat = metrics.histograms["delta"]
        assert (stat.count, stat.minimum, stat.maximum, stat.last) == (3, 1, 3, 2)
        assert stat.mean == 2.0

    def test_fold_stats(self):
        from repro.engine.counters import EvaluationStats

        metrics = Metrics()
        metrics.fold_stats(EvaluationStats(inferences=7, attempts=9), prefix="eng")
        metrics.fold_stats(EvaluationStats(inferences=1), prefix="eng")
        assert metrics.counters["eng.inferences"] == 8
        assert metrics.counters["eng.attempts"] == 9

    def test_empty_histogram_as_dict_is_finite(self):
        assert HistogramStat().as_dict()["min"] == 0.0
        assert json.dumps(HistogramStat().as_dict())  # JSON-safe

    def test_snapshot_is_json_serialisable(self):
        metrics = Metrics()
        with metrics.timer("t"):
            pass
        metrics.incr("c")
        metrics.observe("h", 1.0)
        round_tripped = json.loads(json.dumps(metrics.snapshot()))
        assert round_tripped["counters"] == {"c": 1}
        assert round_tripped["timers"]["t"]["count"] == 1


class TestDisabledMode:
    def test_default_registry_is_disabled(self):
        assert get_metrics() is NULL_METRICS
        assert not get_metrics().enabled

    def test_null_metrics_records_nothing(self):
        null = NullMetrics()
        with null.timer("x"):
            null.incr("c")
            null.observe("h", 1)
        assert null.snapshot() == {"timers": {}, "counters": {}, "histograms": {}}

    def test_null_timer_is_shared_singleton(self):
        null = NullMetrics()
        assert null.timer("a") is null.timer("b")

    def test_instrumented_run_with_default_registry_collects_nothing(self):
        scenario = ancestor(graph="chain", n=6)
        measure(scenario, "seminaive")
        assert NULL_METRICS.snapshot() == {
            "timers": {},
            "counters": {},
            "histograms": {},
        }


class TestCollect:
    def test_collect_activates_and_restores(self):
        previous = get_metrics()
        with collect() as metrics:
            assert get_metrics() is metrics
            assert metrics.enabled
        assert get_metrics() is previous

    def test_collect_restores_on_error(self):
        previous = get_metrics()
        with pytest.raises(ValueError):
            with collect():
                raise ValueError
        assert get_metrics() is previous

    def test_set_metrics_none_restores_default(self):
        set_metrics(Metrics())
        try:
            assert get_metrics().enabled
        finally:
            set_metrics(None)
        assert get_metrics() is NULL_METRICS

    def test_engines_record_under_collect(self):
        scenario = ancestor(graph="chain", n=8)
        with collect() as metrics:
            measure(scenario, "seminaive")
            measure(scenario, "oldt")
            measure(scenario, "qsqr")
        snapshot = metrics.snapshot()
        timer_paths = set(snapshot["timers"])
        assert any(path.endswith("seminaive") for path in timer_paths)
        assert any(path.startswith("oldt") for path in timer_paths)
        assert any(path.startswith("qsqr") for path in timer_paths)
        assert snapshot["histograms"]["seminaive.delta_rows"]["count"] >= 1

    def test_stratified_records_per_stratum(self, stratified_source):
        from repro.datalog import parse_program
        from repro.engine.stratified import stratified_fixpoint

        program = parse_program(stratified_source)
        with collect() as metrics:
            stratified_fixpoint(program)
        assert "stratified/stratum0" in metrics.timers
        assert metrics.histograms["stratified.strata"].last >= 2

    def test_wellfounded_records_alternations(self):
        from repro.datalog import parse_program
        from repro.engine.wellfounded import alternating_fixpoint

        program = parse_program(
            """
            move(a, b). move(b, a).
            win(X) :- move(X, Y), not win(Y).
            """
        )
        with collect() as metrics:
            alternating_fixpoint(program)
        assert metrics.timers["wellfounded/gamma"].count >= 2
        assert metrics.histograms["wellfounded.alternations"].count == 1


class TestBenchArtifact:
    def test_json_round_trip(self):
        artifact = BenchArtifact(bench_id="demo", created_unix=123.0, meta={"k": "v"})
        artifact.add_entry({"id": "a", "inferences": 10, "seconds": 0.5})
        artifact.add_entry({"id": "b", "inferences": 20, "seconds": 0.25})
        restored = BenchArtifact.from_json(artifact.to_json())
        assert restored.bench_id == "demo"
        assert restored.created_unix == 123.0
        assert restored.meta == {"k": "v"}
        assert restored.entries == artifact.entries
        assert restored.entry("b")["inferences"] == 20

    def test_write_and_read(self, tmp_path):
        artifact = BenchArtifact(bench_id="demo")
        artifact.add_entry({"id": "a", "inferences": 1})
        path = artifact.write(tmp_path)
        assert path.name == artifact_filename("demo") == "BENCH_demo.json"
        assert BenchArtifact.read(path).entries == artifact.entries

    def test_entry_requires_unique_string_id(self):
        artifact = BenchArtifact(bench_id="demo")
        artifact.add_entry({"id": "a"})
        with pytest.raises(ValueError):
            artifact.add_entry({"id": "a"})
        with pytest.raises(ValueError):
            artifact.add_entry({"inferences": 1})

    def test_rejects_foreign_and_future_schema(self):
        with pytest.raises(ValueError):
            BenchArtifact.from_json(json.dumps({"schema_version": "other/1", "bench_id": "x"}))
        with pytest.raises(ValueError):
            BenchArtifact.from_json(
                json.dumps({"schema_version": "repro-bench/999", "bench_id": "x"})
            )

    def test_measurement_record_is_artifact_ready(self):
        scenario = ancestor(graph="chain", n=6)
        record = measurement_record(measure(scenario, "alexander"))
        artifact = BenchArtifact(bench_id="demo")
        artifact.add_entry(record)
        restored = BenchArtifact.from_json(artifact.to_json())
        entry = restored.entries[0]
        assert entry["strategy"] == "alexander"
        assert isinstance(entry["inferences"], int)
        assert entry["seconds"] >= 0.0
