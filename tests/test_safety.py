"""Unit tests for the safety (range restriction) checker."""

import pytest

from repro.analysis.safety import (
    check_program_safety,
    check_rule_safety,
    require_safe,
)
from repro.datalog.parser import parse_program, parse_rule
from repro.errors import SafetyError


class TestRuleSafety:
    def test_safe_rule_has_no_violations(self):
        rule = parse_rule("anc(X,Y) :- par(X,Z), anc(Z,Y).")
        assert check_rule_safety(rule) == []

    def test_unbound_head_variable(self):
        rule = parse_rule("p(X, Y) :- q(X).")
        violations = check_rule_safety(rule)
        assert len(violations) == 1
        assert violations[0].variable.name == "Y"
        assert violations[0].place == "head"

    def test_unbound_negative_variable(self):
        rule = parse_rule("p(X) :- q(X), not r(X, Y).")
        violations = check_rule_safety(rule)
        assert len(violations) == 1
        assert "negative literal" in violations[0].place

    def test_negative_literal_does_not_bind(self):
        rule = parse_rule("p(X) :- not q(X).")
        violations = check_rule_safety(rule)
        # X is unsafe twice: in the head and in the negative literal.
        assert {v.place.split()[0] for v in violations} == {"head", "negative"}

    def test_repeated_unsafe_variable_reported_once_per_place(self):
        rule = parse_rule("p(Y, Y) :- q(X).")
        violations = check_rule_safety(rule)
        assert len(violations) == 1

    def test_constant_only_head_is_safe(self):
        rule = parse_rule("flag(on) :- q(X).")
        assert check_rule_safety(rule) == []


class TestProgramSafety:
    def test_program_collects_all_violations(self):
        program = parse_program(
            """
            p(X, Y) :- q(X).
            r(Z) :- s(Z), not t(W).
            """
        )
        violations = check_program_safety(program)
        assert {v.variable.name for v in violations} == {"Y", "W"}

    def test_require_safe_passes_clean_program(self):
        program = parse_program("anc(X,Y) :- par(X,Y).")
        require_safe(program)  # must not raise

    def test_require_safe_raises_with_summary(self):
        program = parse_program("p(X, Y) :- q(X).")
        with pytest.raises(SafetyError) as excinfo:
            require_safe(program)
        assert "Y" in str(excinfo.value)

    def test_violation_str_mentions_rule(self):
        rule = parse_rule("p(X, Y) :- q(X).")
        violation = check_rule_safety(rule)[0]
        assert "p(X, Y)" in str(violation)
