"""Tests for incremental maintenance under fact insertion."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datalog.parser import parse_program, parse_query
from repro.engine.incremental import IncrementalEngine
from repro.engine.seminaive import seminaive_fixpoint
from repro.errors import ProgramError
from repro.facts.database import Database

ANCESTOR = parse_program(
    """
    anc(X,Y) :- par(X,Y).
    anc(X,Y) :- par(X,Z), anc(Z,Y).
    """
)


class TestInsertion:
    def test_initial_materialisation(self):
        database = Database()
        database.add("par", ("a", "b"))
        engine = IncrementalEngine(ANCESTOR, database)
        assert engine.holds("anc(a, b)")

    def test_single_insertion_propagates(self):
        engine = IncrementalEngine(ANCESTOR)
        engine.add("par(a, b)")
        new = engine.add("par(b, c)")
        assert ("anc", ("a", "c")) in new
        assert ("anc", ("b", "c")) in new
        assert engine.holds("anc(a, c)")

    def test_duplicate_insertion_is_noop(self):
        engine = IncrementalEngine(ANCESTOR)
        engine.add("par(a, b)")
        assert engine.add("par(a, b)") == frozenset()

    def test_new_facts_include_inserted_fact(self):
        engine = IncrementalEngine(ANCESTOR)
        new = engine.add("par(x, y)")
        assert ("par", ("x", "y")) in new
        assert ("anc", ("x", "y")) in new

    def test_bridging_insertion_joins_components(self):
        engine = IncrementalEngine(ANCESTOR)
        engine.add_many(["par(a, b)", "par(c, d)"])
        assert not engine.holds("anc(a, d)")
        new = engine.add("par(b, c)")
        # Joining the two chains creates 1 base + 5 new closure facts.
        closure_new = {fact for fact in new if fact[0] == "anc"}
        assert ("anc", ("a", "d")) in closure_new
        assert ("anc", ("a", "c")) in closure_new
        assert ("anc", ("b", "d")) in closure_new

    def test_query_reads_materialisation(self):
        engine = IncrementalEngine(ANCESTOR)
        engine.add_many(["par(a, b)", "par(b, c)"])
        answers = engine.query("anc(a, X)?")
        assert [str(a) for a in answers] == ["anc(a, b)", "anc(a, c)"]

    def test_idb_fact_insertion_allowed(self):
        engine = IncrementalEngine(ANCESTOR)
        engine.add("par(a, b)")
        # Asserting a derived-predicate fact feeds the recursive rule:
        # par(a,b) + anc(b,c) derives anc(a,c).
        new = engine.add("anc(b, c)")
        assert ("anc", ("a", "c")) in new


class TestRemoval:
    def test_remove_base_fact_recomputes(self):
        engine = IncrementalEngine(ANCESTOR)
        engine.add_many(["par(a, b)", "par(b, c)"])
        assert engine.remove("par(b, c)")
        assert not engine.holds("anc(a, c)")
        assert engine.holds("anc(a, b)")

    def test_remove_missing_fact(self):
        engine = IncrementalEngine(ANCESTOR)
        engine.add("par(a, b)")
        assert not engine.remove("par(z, z)")

    def test_remove_derived_fact_refused(self):
        engine = IncrementalEngine(ANCESTOR)
        engine.add_many(["par(a, b)", "par(b, c)"])
        with pytest.raises(ProgramError):
            engine.remove("anc(a, c)")


class TestRestrictions:
    def test_negation_rejected(self):
        program = parse_program("p(X) :- v(X), not bad(X).")
        with pytest.raises(ProgramError):
            IncrementalEngine(program)


edge_stream = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 4)), min_size=0, max_size=14
)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(edge_stream)
def test_property_incremental_equals_batch(edges):
    """Inserting one edge at a time ends in exactly the batch fixpoint."""
    engine = IncrementalEngine(ANCESTOR)
    for u, v in edges:
        engine.add(parse_query(f"anc({u}, {v})").with_predicate("par"))
    batch_db = Database()
    batch_db.relation("par", 2)
    for pair in edges:
        batch_db.add("par", pair)
    expected, _ = seminaive_fixpoint(ANCESTOR, batch_db)
    assert engine.database.rows("anc") == expected.rows("anc")
    assert engine.database.rows("par") == expected.rows("par")


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(edge_stream)
def test_property_nonlinear_incremental_equals_batch(edges):
    program = parse_program(
        """
        tc(X,Y) :- e(X,Y).
        tc(X,Y) :- tc(X,Z), tc(Z,Y).
        """
    )
    engine = IncrementalEngine(program)
    for u, v in edges:
        engine.add(parse_query(f"tc({u}, {v})").with_predicate("e"))
    batch_db = Database()
    batch_db.relation("e", 2)
    for pair in edges:
        batch_db.add("e", pair)
    expected, _ = seminaive_fixpoint(program, batch_db)
    assert engine.database.rows("tc") == expected.rows("tc")
