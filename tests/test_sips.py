"""Unit tests for sideways information passing strategies."""

import pytest

from repro.datalog.parser import parse_rule
from repro.datalog.terms import Variable
from repro.errors import SafetyError
from repro.transform.sips import left_to_right, most_bound_first, named_sips

X, Y = Variable("X"), Variable("Y")


def body_of(text):
    return parse_rule(text).body


class TestLeftToRight:
    def test_preserves_positive_order(self):
        ordered = left_to_right(
            body_of("p(X,Y) :- c(Y), a(X), b(X,Y)."), frozenset()
        )
        assert [l.predicate for l in ordered] == ["c", "a", "b"]

    def test_delays_negatives(self):
        ordered = left_to_right(
            body_of("p(X) :- not bad(X), v(X)."), frozenset()
        )
        assert [l.predicate for l in ordered] == ["v", "bad"]

    def test_head_bound_variables_enable_early_negatives(self):
        ordered = left_to_right(
            body_of("p(X) :- not bad(X), v(X)."), frozenset({X})
        )
        assert [l.predicate for l in ordered] == ["bad", "v"]

    def test_unbindable_negative_raises(self):
        with pytest.raises(SafetyError):
            left_to_right(body_of("p(X) :- v(X), not bad(W)."), frozenset())


class TestMostBoundFirst:
    def test_picks_bound_literal_first(self):
        ordered = most_bound_first(
            body_of("p(X,Y) :- far(Y), near(X)."), frozenset({X})
        )
        assert [l.predicate for l in ordered] == ["near", "far"]

    def test_binding_cascades(self):
        ordered = most_bound_first(
            body_of("p(X,W) :- c(Z,W), a(X,Y), b(Y,Z)."), frozenset({X})
        )
        assert [l.predicate for l in ordered] == ["a", "b", "c"]

    def test_zero_arity_literal_scores_fully_bound(self):
        ordered = most_bound_first(
            body_of("p(X) :- v(X), go."), frozenset()
        )
        assert ordered[0].predicate == "go"

    def test_tie_broken_by_program_order(self):
        ordered = most_bound_first(
            body_of("p(X,Y) :- a(X), b(Y)."), frozenset()
        )
        assert [l.predicate for l in ordered] == ["a", "b"]

    def test_result_is_permutation(self):
        body = body_of("p(X,Y) :- a(X), b(Y), not c(X,Y), d(X,Y).")
        ordered = most_bound_first(body, frozenset())
        assert sorted(str(l) for l in ordered) == sorted(str(l) for l in body)


class TestNamedSips:
    def test_lookup(self):
        assert named_sips("left_to_right") is left_to_right
        assert named_sips("most_bound_first") is most_bound_first

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            named_sips("nonsense")
