"""Tests for the incremental update path of the serving layer.

Covers maintained prepared shapes (``maintain=`` in ``prepare_query`` /
``Engine.prepare`` / the service config), ``PreparedQuery.apply_update``,
the cache migration primitives (``entries_for`` / ``rekey_dataset``),
``QueryService.update`` end to end (maintained shapes patched in place,
unaffected shapes migrated, affected shapes dropped), the ``/update``
HTTP endpoint, and the ``repro-datalog update`` CLI client.
"""

import threading

import pytest

from repro.cli import main
from repro.core.engine import Engine
from repro.core.prepare import prepare_query, prepared_cache_key
from repro.datalog.parser import parse_program, parse_query
from repro.errors import ReproError
from repro.obs import ThreadSafeMetrics, collect
from repro.serve import PreparedQueryCache, QueryService, ServeClient, create_server
from repro.serve.client import ServeError
from repro.serve.service import _affected_predicates

GRAPH_SOURCE = """
edge(a, b). edge(b, c). edge(c, d).
colour(a, red). colour(b, blue).
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
hue(X) :- colour(X, red).
"""


def rows(payload):
    return payload["answers"]["rows"]


@pytest.fixture
def service():
    service = QueryService()
    service.load("g", GRAPH_SOURCE)
    return service


# --- maintained prepared shapes ----------------------------------------------
class TestMaintainedPreparedQuery:
    def _program(self):
        return parse_program(GRAPH_SOURCE)

    @pytest.mark.parametrize("maintain", ["recompute", "dred"])
    def test_apply_update_matches_fresh_preparation(self, maintain):
        prepared = prepare_query(
            self._program(), "path(a, X)?", strategy="seminaive",
            maintain=maintain,
        )
        assert prepared.mode == "maintained"
        before = prepared.execute("path(a, X)?").answers
        assert [str(a) for a in before] == [
            "path(a, b)", "path(a, c)", "path(a, d)",
        ]
        prepared.apply_update(
            add=[parse_query("edge(d, e)")],
            remove=[parse_query("edge(b, c)")],
        )
        after = prepared.execute("path(a, X)?").answers
        # Fresh preparation over the patched base as the oracle.
        patched = parse_program(
            GRAPH_SOURCE.replace("edge(b, c).", "edge(d, e).")
        )
        oracle = prepare_query(patched, "path(a, X)?", strategy="seminaive")
        assert after == oracle.execute("path(a, X)?").answers
        assert [str(a) for a in after] == ["path(a, b)"]

    def test_apply_update_returns_the_delta(self):
        prepared = prepare_query(
            self._program(), "path(X, Y)?", strategy="seminaive",
            maintain="dred",
        )
        added, removed = prepared.apply_update(
            add=[parse_query("edge(d, e)")],
            remove=[parse_query("edge(c, d)")],
        )
        # Facts are reported as raw (predicate, values) pairs.
        assert ("edge", ("c", "d")) in removed
        assert added >= {("edge", ("d", "e")), ("path", ("d", "e"))}

    def test_non_maintained_shape_refuses_updates(self):
        frozen = prepare_query(
            self._program(), "path(a, X)?", strategy="seminaive"
        )
        with pytest.raises(ReproError, match="not maintained"):
            frozen.apply_update(add=[parse_query("edge(d, e)")])

    def test_maintained_requires_materialised_strategy(self):
        with pytest.raises(ReproError, match="materialised strategy"):
            prepare_query(
                self._program(), "path(a, X)?", strategy="alexander",
                maintain="dred",
            )

    def test_unknown_maintenance_mode_rejected(self):
        with pytest.raises(ReproError, match="unknown maintenance mode"):
            prepare_query(
                self._program(), "path(a, X)?", strategy="seminaive",
                maintain="bogus",
            )

    def test_maintain_is_part_of_the_cache_key(self):
        program = self._program()
        goal = parse_query("path(a, X)?")
        plain = prepared_cache_key(program, goal, "seminaive")
        maintained = prepared_cache_key(
            program, goal, "seminaive", maintain="dred"
        )
        assert plain != maintained

    def test_execute_refuses_poisoned_engine(self):
        prepared = prepare_query(
            self._program(), "path(a, X)?", strategy="seminaive",
            maintain="dred",
        )
        prepared.engine._poisoned = True
        with pytest.raises(ReproError, match="poisoned"):
            prepared.execute("path(a, X)?")

    def test_engine_prepare_threads_maintain(self):
        engine = Engine(self._program())
        prepared = engine.prepare(
            "path(a, X)?", strategy="seminaive", maintain="dred"
        )
        assert prepared.mode == "maintained"
        prepared.apply_update(remove=[parse_query("edge(a, b)")])
        assert prepared.execute("path(a, X)?").answers == ()


# --- cache migration primitives ----------------------------------------------
class TestCacheMigration:
    def _prepared(self):
        program = parse_program("p(a). q(X) :- p(X).")
        return prepare_query(program, "q(X)?", strategy="seminaive")

    def test_entries_for_scopes_by_dataset(self):
        cache = PreparedQueryCache(8)
        cache.get_or_prepare(("g", 1, "a"), self._prepared)
        cache.get_or_prepare(("g", 1, "b"), self._prepared)
        cache.get_or_prepare(("other", 1, "a"), self._prepared)
        keys = [key for key, _ in cache.entries_for("g")]
        assert keys == [("g", 1, "a"), ("g", 1, "b")]

    def test_rekey_keeps_re_keyed_and_drops_the_rest(self):
        cache = PreparedQueryCache(8)
        cache.get_or_prepare(("g", 1, "keep"), self._prepared)
        cache.get_or_prepare(("g", 1, "drop"), self._prepared)
        cache.get_or_prepare(("g", 0, "stale"), self._prepared)
        cache.get_or_prepare(("other", 1, "x"), self._prepared)
        kept, dropped = cache.rekey_dataset(
            "g", 1, 2, lambda key, prepared: key[2] == "keep"
        )
        # The stale version-0 leftover drops too.
        assert (kept, dropped) == (1, 2)
        assert cache.peek(("g", 2, "keep")) is not None
        assert cache.peek(("g", 1, "keep")) is None
        assert cache.peek(("g", 2, "drop")) is None
        assert cache.peek(("other", 1, "x")) is not None

    def test_rekey_preserves_lru_order_and_hit_counts(self):
        cache = PreparedQueryCache(2)
        cache.get_or_prepare(("g", 1, "old"), self._prepared)
        cache.get_or_prepare(("g", 1, "new"), self._prepared)
        cache.get_or_prepare(("g", 1, "old"), self._prepared)  # refresh LRU
        cache.rekey_dataset("g", 1, 2, lambda key, prepared: True)
        # "new" is now least recently used; inserting one more evicts it.
        cache.get_or_prepare(("g", 2, "third"), self._prepared)
        assert cache.peek(("g", 2, "new")) is None
        assert cache.peek(("g", 2, "old")) is not None

    def test_affected_predicates_is_the_dependent_cone(self):
        program = parse_program(GRAPH_SOURCE)
        assert _affected_predicates(program, {"edge"}) == frozenset(
            {"edge", "path"}
        )
        assert _affected_predicates(program, {"colour"}) == frozenset(
            {"colour", "hue"}
        )
        assert _affected_predicates(program, set()) == frozenset()


# --- QueryService.update -----------------------------------------------------
class TestServiceUpdate:
    def test_update_bumps_version_and_future_queries_see_it(self, service):
        before = service.query("g", "path(a, X)?")
        assert rows(before) == [["a", "b"], ["a", "c"], ["a", "d"]]
        info = service.update("g", add=["edge(d, e)"], remove=["edge(b, c)"])
        assert info["version"] == 2
        assert info["added"] == 1 and info["removed"] == 1
        assert info["affected_predicates"] == ["edge", "path"]
        after = service.query("g", "path(a, X)?")
        assert after["version"] == 2
        assert rows(after) == [["a", "b"]]

    def test_maintained_shape_is_patched_and_stays_warm(self, service):
        first = service.query(
            "g", "path(a, X)?", strategy="seminaive", maintain="dred"
        )
        assert not first["cache_hit"]
        info = service.update("g", remove=["edge(b, c)"])
        assert info["cache_entries_patched"] == 1
        second = service.query(
            "g", "path(a, X)?", strategy="seminaive", maintain="dred"
        )
        assert second["cache_hit"], "maintained shape must survive the update"
        assert second["version"] == 2
        assert rows(second) == [["a", "b"]]

    def test_unaffected_shape_migrates_affected_shape_drops(self, service):
        service.query("g", "path(a, X)?")  # affected by edge updates
        service.query("g", "hue(X)?")      # colour cone; unaffected
        info = service.update("g", add=["edge(d, e)"])
        assert info["cache_entries_kept"] == 1
        assert info["cache_entries_dropped"] == 1
        assert service.query("g", "hue(X)?")["cache_hit"]
        assert not service.query("g", "path(a, X)?")["cache_hit"]

    def test_update_drops_maintained_shape_missed_by_patch_loop(
        self, service, monkeypatch
    ):
        """A maintained shape prepared against the pre-update database can
        land in the cache between the patch-loop snapshot and the rekey;
        it was never patched, so migrating it would serve stale answers
        forever.  Simulated by hiding the entry from the snapshot."""
        service.query(
            "g", "path(a, X)?", strategy="seminaive", maintain="dred"
        )
        monkeypatch.setattr(service.cache, "entries_for", lambda name: [])
        info = service.update("g", remove=["edge(b, c)"])
        assert info["cache_entries_patched"] == 0
        assert info["cache_entries_dropped"] == 1
        monkeypatch.undo()
        # The shape re-prepares against the updated dataset — a miss,
        # but a correct one.
        after = service.query(
            "g", "path(a, X)?", strategy="seminaive", maintain="dred"
        )
        assert not after["cache_hit"]
        assert rows(after) == [["a", "b"]]

    def test_update_failure_drops_maintained_shapes(self, service, monkeypatch):
        """A patch failing mid-loop leaves patched shapes ahead of a
        dataset whose version never bumps: every maintained shape must be
        dropped before the error propagates."""
        service.query(
            "g", "path(a, X)?", strategy="seminaive", maintain="dred"
        )
        ((_, prepared),) = service.cache.entries_for("g")

        def boom(add=(), remove=()):
            raise RuntimeError("engine exploded mid-patch")

        monkeypatch.setattr(prepared, "apply_update", boom)
        with pytest.raises(RuntimeError, match="mid-patch"):
            service.update("g", remove=["edge(b, c)"])
        assert service.cache.entries_for("g") == []
        # The dataset was never bumped; the next maintained query
        # re-prepares cleanly against the unchanged version.
        retry = service.query(
            "g", "path(a, X)?", strategy="seminaive", maintain="dred"
        )
        assert retry["version"] == 1
        assert not retry["cache_hit"]
        assert rows(retry) == [["a", "b"], ["a", "c"], ["a", "d"]]

    def test_update_validation(self, service):
        with pytest.raises(ReproError, match="at least one"):
            service.update("g")
        with pytest.raises(ReproError, match="must be ground"):
            service.update("g", add=["edge(a, X)"])
        with pytest.raises(ReproError, match="unknown dataset"):
            service.update("ghost", add=["edge(a, b)"])
        with pytest.raises(ReproError, match="remove base facts only"):
            service.update("g", remove=["path(a, b)"])

    def test_update_counters(self, service):
        with collect() as metrics:
            service.update("g", add=["edge(x, y)", "edge(y, z)"],
                           remove=["edge(a, b)"])
        counters = metrics.counters
        assert counters["serve.updates"] == 1
        assert counters["maintain.update_adds"] == 2
        assert counters["maintain.update_removes"] == 1


# --- HTTP + CLI --------------------------------------------------------------
@pytest.fixture
def live_server():
    with collect(ThreadSafeMetrics()):
        server = create_server(port=0, install_metrics=False)
        thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        thread.start()
        client = ServeClient(f"http://127.0.0.1:{server.port}", timeout=30.0)
        client.wait_healthy(15.0)
        try:
            yield server, client
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5.0)


class TestHttpUpdate:
    def test_update_roundtrip_patches_a_maintained_shape(self, live_server):
        _, client = live_server
        client.load("g", GRAPH_SOURCE)
        first = client.query(
            "g", "path(a, X)?", strategy="seminaive", maintain="dred"
        )
        assert not first["cache_hit"]
        info = client.update("g", add=["edge(d, e)."], remove=["edge(b, c)."])
        assert info["version"] == 2
        assert info["cache_entries_patched"] == 1
        second = client.query(
            "g", "path(a, X)?", strategy="seminaive", maintain="dred"
        )
        assert second["cache_hit"]
        assert rows(second) == [["a", "b"]]

    def test_update_bad_payload_is_400(self, live_server):
        _, client = live_server
        client.load("g", GRAPH_SOURCE)
        with pytest.raises(ServeError) as bad:
            client._request("/update", {"dataset": "g", "add": "edge(a,b)."})
        assert bad.value.status == 400
        assert "list of fact strings" in str(bad.value)
        with pytest.raises(ServeError) as empty:
            client.update("g")
        assert empty.value.status == 400

    def test_cli_update_client(self, live_server, capsys):
        _, client = live_server
        client.load("g", GRAPH_SOURCE)
        code = main(
            [
                "update", "g",
                "--add", "edge(d, e).",
                "--remove", "edge(b, c).",
                "--url", client.base_url,
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "'g' now version 2" in out
        assert "+1 -1 facts" in out
        assert "affected: edge, path" in out
        assert rows(client.query("g", "path(a, X)?")) == [["a", "b"]]
