"""Fuzzing with randomly generated *programs* (not just databases).

Hypothesis builds small, safe, negation-free Datalog programs with random
recursion structure, random databases, and random queries; every strategy
must agree on the answers and the Alexander/OLDT correspondence must hold.
This is the widest net in the suite: it regularly exercises mutual
recursion, multiple adornments, zero-binding queries, and rules whose
bodies mention the same predicate twice.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.compare import check_correspondence
from repro.core.strategy import run_strategy
from repro.datalog.atoms import Atom, Literal
from repro.datalog.rules import Program, Rule
from repro.datalog.terms import Constant, Variable
from repro.facts.database import Database

VARS = [Variable(name) for name in ("X", "Y", "Z")]
IDB = ["p0", "p1"]
EDB = ["e0", "e1"]
CONSTANTS = list(range(4))


DISTINCT_PAIRS = [
    (VARS[0], VARS[1]),
    (VARS[1], VARS[0]),
    (VARS[0], VARS[2]),
    (VARS[2], VARS[0]),
    (VARS[1], VARS[2]),
    (VARS[2], VARS[1]),
]


@st.composite
def rules(draw, rectified=False):
    """One safe rule: head variables are forced into the body.

    Args:
        rectified: restrict body literals to distinct-variable argument
            pairs.  Repeated variables inside a call (``p(Y, Y)``) create
            variant call patterns that positional adornments cannot
            express, so the *exact* Alexander/OLDT call correspondence is
            only claimed for rectified programs (the classical
            rectification condition); answers agree either way.
    """
    head_pred = draw(st.sampled_from(IDB))
    head_vars = (VARS[0], VARS[1])
    body = []
    for _ in range(draw(st.integers(1, 3))):
        predicate = draw(st.sampled_from(IDB + EDB))
        if rectified:
            args = draw(st.sampled_from(DISTINCT_PAIRS))
        else:
            args = tuple(
                draw(st.sampled_from(VARS)) for _ in range(2)
            )
        body.append(Literal(Atom(predicate, args)))
    body_vars = {v for lit in body for v in lit.variables()}
    # Guarantee range restriction: bind any missing head variable via an
    # extra EDB literal.
    missing = [v for v in head_vars if v not in body_vars]
    if missing:
        body.append(Literal(Atom(EDB[0], (head_vars[0], head_vars[1]))))
    return Rule(Atom(head_pred, head_vars), tuple(body))


@st.composite
def programs(draw, rectified=False):
    rule_list = draw(
        st.lists(rules(rectified=rectified), min_size=1, max_size=5)
    )
    # Ensure the query predicate p0 is defined.
    if not any(rule.head.predicate == "p0" for rule in rule_list):
        rule_list.append(
            Rule(
                Atom("p0", (VARS[0], VARS[1])),
                (Literal(Atom(EDB[0], (VARS[0], VARS[1]))),),
            )
        )
    return Program(rule_list)


@st.composite
def databases(draw):
    database = Database()
    for predicate in EDB:
        database.relation(predicate, 2)
        for _ in range(draw(st.integers(0, 6))):
            row = (
                draw(st.sampled_from(CONSTANTS)),
                draw(st.sampled_from(CONSTANTS)),
            )
            database.add(predicate, row)
    return database


@st.composite
def queries(draw):
    shape = draw(st.sampled_from(["bf", "ff", "bb"]))
    first = (
        Constant(draw(st.sampled_from(CONSTANTS)))
        if shape[0] == "b"
        else Variable("Q1")
    )
    second = (
        Constant(draw(st.sampled_from(CONSTANTS)))
        if shape[1] == "b"
        else Variable("Q2")
    )
    return Atom("p0", (first, second))


@settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(programs(), databases(), queries())
def test_all_strategies_agree_on_random_programs(program, database, query):
    reference = None
    for name in ("seminaive", "oldt", "qsqr", "magic", "supplementary", "alexander"):
        result = run_strategy(name, program, query, database)
        if reference is None:
            reference = result.answer_rows
        else:
            assert result.answer_rows == reference, (name, str(program))


@settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(programs(rectified=True), databases(), queries())
def test_exact_correspondence_on_rectified_programs(program, database, query):
    correspondence = check_correspondence(program, query, database)
    assert correspondence.exact, (correspondence.summary(), str(program))


@settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(programs(), databases(), queries())
def test_answers_agree_even_with_repeated_variables(program, database, query):
    # Unrectified programs may contain calls like p(Y, Y); OLDT tables
    # them as a finer variant pattern than any positional adornment, so
    # the call (and per-adornment answer) sets can legitimately differ —
    # but the answers to the query itself never do.
    correspondence = check_correspondence(program, query, database)
    assert (
        correspondence.alexander_result.answer_rows
        == correspondence.oldt_result.answer_rows
    ), (correspondence.summary(), str(program))


@settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(programs(), databases(), queries())
def test_optimizer_preserves_answers_on_random_programs(
    program, database, query
):
    from repro.transform.alexander import alexander_templates
    from repro.transform.optimize import optimize_program
    from repro.engine.seminaive import seminaive_fixpoint

    transformed = alexander_templates(program, query)
    plain_db, _ = seminaive_fixpoint(
        transformed.evaluation_program(), database
    )
    optimized = optimize_program(
        transformed.evaluation_program(), transformed.goal
    )
    optimized_db, _ = seminaive_fixpoint(optimized, database)
    goal = transformed.goal.predicate
    assert plain_db.rows(goal) == optimized_db.rows(goal), str(program)
