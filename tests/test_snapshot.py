"""Snapshot format tests: round-trips, version gating, shared memory.

The serialized-shape format (:mod:`repro.core.snapshot`) backs both the
shared-memory dataset snapshots and the on-disk cross-process shape
registry, so two properties are load-bearing:

* **bit-identity** — a round-tripped database holds exactly the
  original decoded fact set (and, columnar, the exact interner table in
  the exact id order); a round-tripped prepared shape answers exactly
  like the original with identical compiled join plans, doing zero
  transform / planning / fixpoint-compilation work on load;
* **fail-closed versioning** — a bumped format or interner version, a
  corrupt header, or a truncated payload raises
  :class:`~repro.core.snapshot.SnapshotFormatError` with a clear
  message.  Never garbage answers.
"""

from __future__ import annotations

import struct

import pytest

from repro.core.prepare import prepare_query
from repro.core.snapshot import (
    INTERNER_FORMAT_VERSION,
    SNAPSHOT_FORMAT_VERSION,
    SharedSnapshot,
    SnapshotError,
    SnapshotFormatError,
    database_fingerprint,
    dump_database,
    dump_prepared,
    freeze_database,
    load_database,
    load_prepared,
)
from repro.datalog.intern import ConstantInterner
from repro.datalog.parser import parse_program
from repro.engine.columnar import as_storage
from repro.facts.database import Database
from repro.obs import Metrics, collect

from .test_kernel_differential import SEEDS, random_source

TRANSFORMS = ("alexander", "magic", "supplementary")
STORAGES = ("tuples", "columnar")


def _decoded_facts(database) -> dict[str, frozenset]:
    return {
        predicate: frozenset(database.rows(predicate))
        for predicate in database.predicates()
    }


def _database(storage: str, source: str) -> Database:
    program = parse_program(source)
    database = Database()
    database.add_atoms(program.facts)
    return as_storage(database, storage)


def _answers(prepared, goal):
    result = prepared.execute(goal)
    return [str(atom) for atom in result.answers]


# --- database round-trips -----------------------------------------------------

class TestDatabaseRoundTrip:
    @pytest.mark.parametrize("storage", STORAGES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_programs_round_trip(self, seed, storage):
        database = _database(storage, random_source(seed))
        restored, header = load_database(dump_database(database))
        assert header["storage"] == storage
        assert _decoded_facts(restored) == _decoded_facts(database)
        assert database_fingerprint(restored) == database_fingerprint(database)

    def test_columnar_interner_table_preserved(self):
        database = _database("columnar", "e(a, b). e(b, c). f(c, a).")
        restored, header = load_database(dump_database(database))
        assert restored.interner.table() == database.interner.table()

    def test_insertion_order_preserved(self):
        database = _database("columnar", "e(z, y). e(a, b). e(m, n).")
        restored, _ = load_database(dump_database(database))
        assert list(restored.rows("e")) == list(database.rows("e"))

    def test_extra_header_round_trips(self):
        database = _database("tuples", "e(a, b).")
        extra = {"program": "p(X) :- e(X, Y).", "version": 3}
        _, header = load_database(dump_database(database, extra=extra))
        assert header["extra"] == extra

    def test_fingerprint_is_order_independent(self):
        left = _database("tuples", "e(a, b). e(c, d).")
        right = _database("tuples", "e(c, d). e(a, b).")
        assert database_fingerprint(left) == database_fingerprint(right)

    def test_fingerprint_sees_fact_changes(self):
        left = _database("tuples", "e(a, b).")
        right = _database("tuples", "e(a, c).")
        assert database_fingerprint(left) != database_fingerprint(right)


# --- prepared round-trips -----------------------------------------------------

class TestPreparedRoundTrip:
    @pytest.mark.parametrize("strategy", TRANSFORMS + ("seminaive",))
    @pytest.mark.parametrize("storage", STORAGES)
    def test_answers_and_identity(self, strategy, storage):
        program = parse_program(random_source(3))
        prepared = prepare_query(
            program, "p(X, Y)?", strategy=strategy, storage=storage
        )
        restored = load_prepared(dump_prepared(prepared))
        assert restored.strategy == prepared.strategy
        assert restored.mode == prepared.mode
        assert restored.adornment == prepared.adornment
        assert restored.key == prepared.key
        assert restored.prepare_stats.as_dict() == (
            prepared.prepare_stats.as_dict()
        )
        assert _answers(restored, "p(X, Y)?") == _answers(prepared, "p(X, Y)?")

    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_programs_bit_identical(self, seed):
        program = parse_program(random_source(seed))
        prepared = prepare_query(
            program, "q(X, Y)?", strategy="alexander", storage="columnar"
        )
        restored = load_prepared(dump_prepared(prepared))
        assert _answers(restored, "q(X, Y)?") == _answers(prepared, "q(X, Y)?")
        assert _answers(restored, "q(c0, Y)?") == _answers(
            prepared, "q(c0, Y)?"
        )

    def test_compiled_plans_identical(self):
        program = parse_program(
            "e(a, b). e(b, c). e(c, d). f(a, c).\n"
            "p(X, Y) :- e(X, Y).\n"
            "p(X, Z) :- e(X, Y), p(Y, Z), f(X, Z).\n"
        )
        prepared = prepare_query(
            program, "p(a, Y)?", strategy="magic", planner="greedy"
        )
        assert prepared.fixpoint is not None
        restored = load_prepared(dump_prepared(prepared))
        original = {
            id(rule): [cl.source for cl in compiled.body]
            for compiled, _ in _executors(prepared.fixpoint)
            for rule, compiled in ((compiled.rule, compiled),)
        }
        for compiled, _ in _executors(restored.fixpoint):
            sources = [cl.source for cl in compiled.body]
            # Rules re-parsed from text are equal (not identical) objects;
            # match by rule equality, then compare the body permutation.
            matches = [
                body
                for rule_id, body in original.items()
                if _rule_of(prepared.fixpoint, rule_id) == compiled.rule
            ]
            assert any(
                [str(lit) for lit in sources]
                == [str(lit) for lit in body]
                for body in matches
            )

    def test_load_does_zero_prepare_work(self):
        program = parse_program(random_source(2))
        prepared = prepare_query(program, "p(X, Y)?", strategy="alexander")
        data = dump_prepared(prepared)
        with collect(Metrics()) as metrics:
            load_prepared(data)
        counters = metrics.counters
        assert counters.get("prepare.transforms", 0) == 0
        assert counters.get("prepare.compiles", 0) == 0
        assert counters.get("transform.rewritings", 0) == 0
        assert counters.get("planner.rules_planned", 0) == 0
        assert counters.get("snapshot.loads", 0) >= 1

    def test_maintained_shapes_are_not_serializable(self):
        program = parse_program("e(a, b). p(X, Y) :- e(X, Y).")
        prepared = prepare_query(
            program, "p(X, Y)?", strategy="seminaive", maintain="counting"
        )
        with pytest.raises(SnapshotError, match="maintained"):
            dump_prepared(prepared)


def _executors(fixpoint):
    if fixpoint.scheduler != "global":
        return [pair for cc in fixpoint.components for pair in cc.executors]
    return list(fixpoint.executors)


def _rule_of(fixpoint, rule_id):
    for compiled, _ in _executors(fixpoint):
        if id(compiled.rule) == rule_id:
            return compiled.rule
    return None


# --- version gating -----------------------------------------------------------

class TestVersionGating:
    def _dump(self) -> bytes:
        return dump_database(_database("columnar", "e(a, b). e(b, c)."))

    def test_bad_magic_rejected(self):
        data = bytearray(self._dump())
        data[:4] = b"XXXX"
        with pytest.raises(SnapshotFormatError, match="magic"):
            load_database(bytes(data))

    def test_bumped_format_version_rejected(self):
        data = bytearray(self._dump())
        data[4:6] = struct.pack("<H", SNAPSHOT_FORMAT_VERSION + 1)
        with pytest.raises(SnapshotFormatError) as excinfo:
            load_database(bytes(data))
        assert str(SNAPSHOT_FORMAT_VERSION + 1) in str(excinfo.value)

    def test_bumped_interner_version_rejected(self):
        data = bytearray(self._dump())
        data[6:8] = struct.pack("<H", INTERNER_FORMAT_VERSION + 1)
        with pytest.raises(SnapshotFormatError) as excinfo:
            load_database(bytes(data))
        assert str(INTERNER_FORMAT_VERSION + 1) in str(excinfo.value)

    def test_truncated_payload_rejected(self):
        data = self._dump()
        with pytest.raises(SnapshotFormatError, match="truncat"):
            load_database(data[:-5])

    def test_truncated_header_rejected(self):
        data = self._dump()
        with pytest.raises(SnapshotFormatError):
            load_database(data[:10])

    def test_prepared_rejects_database_dump(self):
        with pytest.raises(SnapshotFormatError, match="kind"):
            load_prepared(self._dump())

    def test_interner_table_must_be_bijective(self):
        with pytest.raises(ValueError, match="bijection"):
            ConstantInterner.from_table(["a", 1, "a"])

    def test_prepared_tamper_never_garbage(self):
        program = parse_program("e(a, b). p(X, Y) :- e(X, Y).")
        data = bytearray(dump_prepared(prepare_query(program, "p(X, Y)?")))
        data[4:6] = struct.pack("<H", SNAPSHOT_FORMAT_VERSION + 9)
        with pytest.raises(SnapshotFormatError):
            load_prepared(bytes(data))


# --- shared memory ------------------------------------------------------------

class TestSharedSnapshot:
    def test_freeze_attach_round_trip(self):
        database = _database("columnar", random_source(1))
        snapshot = freeze_database(database, extra={"dataset": "d"})
        try:
            attached = SharedSnapshot.attach(snapshot.name, snapshot.size)
            restored, header = load_database(attached.data)
            assert header["extra"] == {"dataset": "d"}
            assert _decoded_facts(restored) == _decoded_facts(database)
            attached.close()
        finally:
            snapshot.close()
            snapshot.unlink()

    def test_attach_unknown_name_is_clear(self):
        with pytest.raises(SnapshotError, match="no longer exists"):
            SharedSnapshot.attach("repro-does-not-exist", 128)

    def test_attacher_cannot_unlink(self):
        database = _database("tuples", "e(a, b).")
        snapshot = freeze_database(database)
        try:
            attached = SharedSnapshot.attach(snapshot.name, snapshot.size)
            attached.unlink()  # non-owner: must be a no-op
            attached.close()
            again = SharedSnapshot.attach(snapshot.name, snapshot.size)
            again.close()
        finally:
            snapshot.close()
            snapshot.unlink()


# --- registry -----------------------------------------------------------------

class TestShapeRegistry:
    PROGRAM = "e(a, b). e(b, c). p(X, Y) :- e(X, Y). p(X, Z) :- e(X, Y), p(Y, Z)."

    def _prepared(self):
        return prepare_query(parse_program(self.PROGRAM), "p(a, X)?")

    def test_save_then_load_hits(self, tmp_path):
        from repro.serve.registry import ShapeRegistry

        registry = ShapeRegistry(tmp_path)
        prepared = self._prepared()
        assert registry.save(prepared.key, "fp", prepared)
        loaded = registry.load(prepared.key, "fp")
        assert loaded is not None
        assert _answers(loaded, "p(a, X)?") == _answers(prepared, "p(a, X)?")
        assert registry.stats()["entries"] == 1

    def test_miss_on_unknown_key(self, tmp_path):
        from repro.serve.registry import ShapeRegistry

        registry = ShapeRegistry(tmp_path)
        assert registry.load(("nope",), "fp") is None

    def test_data_fingerprint_rekeys(self, tmp_path):
        from repro.serve.registry import ShapeRegistry

        registry = ShapeRegistry(tmp_path)
        prepared = self._prepared()
        registry.save(prepared.key, "fp-1", prepared)
        assert registry.load(prepared.key, "fp-2") is None

    def test_corrupt_entry_falls_back_to_miss(self, tmp_path):
        from repro.serve.registry import ShapeRegistry, shape_digest

        registry = ShapeRegistry(tmp_path)
        prepared = self._prepared()
        registry.save(prepared.key, "fp", prepared)
        path = registry.path(shape_digest(prepared.key, "fp"))
        path.write_bytes(b"RPQS garbage")
        assert registry.load(prepared.key, "fp") is None

    def test_version_bumped_entry_rejected_not_garbage(self, tmp_path):
        from repro.serve.registry import ShapeRegistry, shape_digest

        registry = ShapeRegistry(tmp_path)
        prepared = self._prepared()
        registry.save(prepared.key, "fp", prepared)
        path = registry.path(shape_digest(prepared.key, "fp"))
        data = bytearray(path.read_bytes())
        data[4:6] = struct.pack("<H", SNAPSHOT_FORMAT_VERSION + 1)
        path.write_bytes(bytes(data))
        # An incompatible serialized shape is *rejected* (a miss), never
        # deserialized into wrong answers.
        assert registry.load(prepared.key, "fp") is None

    def test_maintained_shapes_are_skipped(self, tmp_path):
        from repro.serve.registry import ShapeRegistry

        registry = ShapeRegistry(tmp_path)
        prepared = prepare_query(
            parse_program(self.PROGRAM), "p(a, X)?", strategy="seminaive",
            maintain="dred",
        )
        assert not registry.save(prepared.key, "fp", prepared)
        assert registry.stats()["entries"] == 0
